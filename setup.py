"""Setup shim for environments whose setuptools lacks PEP 517 wheel support.

All real metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e .`` code path.
"""

from setuptools import setup

setup()
