"""Quickstart: build a Grafite range filter and query it.

Run with::

    python examples/quickstart.py

Demonstrates the two construction knobs of the paper (eps + max range
size, or a plain bits-per-key budget), range emptiness queries, the
approximate-counting extension, and the automatic exact mode.
"""

from repro import Grafite
from repro.workloads.datasets import uniform

UNIVERSE = 2**48


def main() -> None:
    keys = uniform(100_000, universe=UNIVERSE, seed=1)
    print(f"dataset: {keys.size:,} uniform keys in [0, 2^48)")

    # --- Knob 1: target FPR eps for ranges up to L -----------------------
    filt = Grafite(keys, UNIVERSE, eps=0.01, max_range_size=64, seed=42)
    print(
        f"\nGrafite(eps=0.01, L=64): {filt.bits_per_key:.2f} bits/key, "
        f"reduced universe r = {filt.reduced_universe:,}"
    )
    a_key = int(keys[1234])
    print(f"query around a stored key {a_key}: "
          f"{filt.may_contain_range(a_key - 3, a_key + 3)}  (never a false negative)")
    print(f"FPR bound for 64-ranges (Thm 3.4): {filt.fpr_bound(64):.4f}")

    # --- Knob 2: a space budget ------------------------------------------
    budget = Grafite(keys, UNIVERSE, bits_per_key=16, max_range_size=64, seed=42)
    print(
        f"\nGrafite(bits_per_key=16): eps = {budget.eps:.2e}, "
        f"actual {budget.bits_per_key:.2f} bits/key"
    )
    print(f"Corollary 3.5 bound for a range of 32: {budget.fpr_bound(32):.2e}")

    # --- Approximate range counting (end of paper §3) ---------------------
    # Counting is meaningful for ranges up to ~L; here a window around a
    # stored key holds exactly one key and the estimate reflects it.
    lo, hi = a_key - 30, a_key + 30
    estimate = filt.count_range(lo, hi)
    print(f"\napproximate count of keys in [{lo}, {hi}]: {estimate} (true: 1)")

    # --- Exact mode --------------------------------------------------------
    small = Grafite(range(0, 2**20, 10_000), 2**20, eps=1e-9, max_range_size=64, seed=0)
    print(
        f"\ntiny universe + tiny eps => exact mode: is_exact={small.is_exact} "
        f"(stores the keys losslessly, FPR = 0)"
    )


if __name__ == "__main__":
    main()
