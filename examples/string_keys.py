"""String-keyed Grafite (paper §7's future-work extension, engineered).

Run with::

    python examples/string_keys.py

Filters a keyspace of fixed-format user-id paths: strings are encoded as
fixed-width big-endian integers, the reduced universe is a power of two
so equation (1) becomes shifts and masks, and string range queries map to
integer ranges.

One caveat the paper's L-bounded guarantee implies: a *short prefix*
query covers every possible extension — an integer range astronomically
larger than ``max_range_size`` — so Grafite answers those conservatively
("maybe"). Range and point queries between same-length keys stay tight
and filter at the designed eps.
"""

from repro import StringGrafite


def main() -> None:
    # Fixed-format keys: every stored id has the same length, so string
    # ranges between ids map to small integer ranges.
    paths = [f"/api/v2/users/{uid:06d}" for uid in range(0, 40_000, 4)]
    filt = StringGrafite(paths, eps=0.01, max_range_size=2**10, seed=13)
    print(
        f"{filt.key_count:,} fixed-format URL paths, width "
        f"{filt.key_width_bytes} bytes, {filt.bits_per_key:.1f} bits/key\n"
    )

    print("point queries:")
    for uid, expected in ((400, "stored -> True"), (401, "absent -> False w.h.p.")):
        path = f"/api/v2/users/{uid:06d}"
        print(f"  may_contain({path!r}) = {str(filt.may_contain(path)):5}   [{expected}]")

    print("\nrange queries between same-length keys:")
    cases = [
        ("/api/v2/users/000100", "/api/v2/users/000200", "covers stored ids -> True"),
        ("/api/v2/users/000401", "/api/v2/users/000403", "gap between ids -> False w.h.p."),
        ("/api/v2/users/039998", "/api/v2/users/039999", "past the last id -> False w.h.p."),
    ]
    for lo, hi, expected in cases:
        print(f"  [{lo!r}, {hi!r}] = {str(filt.may_contain_range(lo, hi)):5}   [{expected}]")

    print("\nshort-prefix queries cover ranges far beyond L -> conservative:")
    for prefix in ("/api/v2/users/0001", "/api/v3/"):
        print(f"  may_contain_prefix({prefix!r}) = {filt.may_contain_prefix(prefix)}")
    print(
        "\n(For unbounded prefix workloads a trie filter like SuRF fits "
        "better; Grafite's guarantee is per bounded range — §7.)"
    )


if __name__ == "__main__":
    main()
