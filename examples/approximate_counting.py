"""Approximate range counting with Grafite (end of paper §3).

Run with::

    python examples/approximate_counting.py

Grafite can return an approximate count of the keys intersecting a range
at no extra space or time cost: the rank difference of the hashed
endpoints on the Elias-Fano sequence. This example measures the estimate
quality against ground truth and shows the collision-adjusted variant.
"""

import numpy as np

from repro import Grafite
from repro.workloads.datasets import uniform

UNIVERSE = 2**35
N_KEYS = 100_000
RANGE = 2**22  # dense enough that ranges hold ~12 keys on average


def main() -> None:
    keys = uniform(N_KEYS, universe=UNIVERSE, seed=2)
    filt = Grafite(keys, UNIVERSE, eps=0.05, max_range_size=RANGE, seed=9)
    print(
        f"{N_KEYS:,} keys, Grafite at {filt.bits_per_key:.1f} bits/key, "
        f"counting ranges of {RANGE:,}\n"
    )
    rng = np.random.default_rng(3)
    sorted_keys = np.sort(keys)
    raw_errors, adj_errors, truths = [], [], []
    for _ in range(300):
        lo = int(rng.integers(0, UNIVERSE - RANGE))
        hi = lo + RANGE - 1
        truth = int(
            np.searchsorted(sorted_keys, hi, "right")
            - np.searchsorted(sorted_keys, lo, "left")
        )
        raw = filt.count_range(lo, hi)
        adjusted = filt.count_range(lo, hi, adjusted=True)
        truths.append(truth)
        raw_errors.append(raw - truth)
        adj_errors.append(adjusted - truth)
    print(f"mean true count per range:     {np.mean(truths):8.2f}")
    print(f"raw estimate bias (mean err):  {np.mean(raw_errors):8.2f}  "
          "(collisions only ever add)")
    print(f"adjusted estimate bias:        {np.mean(adj_errors):8.2f}")
    print(f"mean |error| (adjusted):       {np.mean(np.abs(adj_errors)):8.2f}")
    expected_collisions = RANGE * filt.key_count / filt.reduced_universe
    print(f"\nexpected collisions per range (n*ell/r): {expected_collisions:.2f} — "
          "exactly the correction the adjusted variant subtracts.")


if __name__ == "__main__":
    main()
