"""LSM key-value store guarded by range filters — the paper's motivation.

Run with::

    python examples/lsm_store.py

Builds the same store three times (no filter / SuRF / Grafite), drives it
with an *adversarially correlated* empty-range workload (endpoints right
next to stored keys, §6.2's threat model), and prints the simulated-disk
ledger. SuRF collapses under correlation — nearly every probe reads the
run anyway — while Grafite keeps its distribution-free FPR, so almost
every empty probe is answered from memory.
"""

import numpy as np

from repro import Grafite, SuRF
from repro.lsm import LSMStore
from repro.workloads.datasets import uniform
from repro.workloads.queries import correlated_queries

UNIVERSE = 2**48
N_KEYS = 20_000
N_PROBES = 2_000
RANGE = 32


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=14, max_range_size=RANGE, seed=7)


def surf_factory(keys, universe):
    return SuRF(keys, universe, suffix_mode="real", suffix_bits=4, seed=7)


def drive(filter_factory, label: str, keys: np.ndarray, queries) -> None:
    store = LSMStore(
        UNIVERSE, memtable_limit=4096, compaction_fanout=4,
        filter_factory=filter_factory,
    )
    rng = np.random.default_rng(0)
    for key in keys:
        store.put(int(key), rng.integers(0, 2**31))
    store.flush()
    for lo, hi in queries:
        store.range_scan(lo, hi)
    s = store.stats
    print(
        f"{label:>10}: runs={store.run_count} "
        f"filter_mem={store.filter_bits_total / 8 / 1024:,.1f} KiB | "
        f"disk reads={s.reads_performed:>6,} avoided={s.reads_avoided:>6,} "
        f"wasted={s.wasted_reads:>6,} (waste ratio {s.waste_ratio:.1%})"
    )


def main() -> None:
    keys = uniform(N_KEYS, universe=UNIVERSE, seed=3)
    queries = correlated_queries(
        keys, N_PROBES, RANGE, UNIVERSE, correlation_degree=1.0, seed=4
    )
    print(
        f"{N_KEYS:,} keys, {N_PROBES:,} adversarial empty range probes "
        f"(endpoints hugging keys, D=1.0):\n"
    )
    drive(None, "no filter", keys, queries)
    drive(surf_factory, "SuRF", keys, queries)
    drive(grafite_factory, "Grafite", keys, queries)
    print(
        "\nEvery 'wasted' read is a disk access the filter was deployed to "
        "prevent; under correlated probes only Grafite still prevents them."
    )


if __name__ == "__main__":
    main()
