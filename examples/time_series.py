"""Time-series monitoring: "did any event occur in this window?"

Run with::

    python examples/time_series.py

The paper's §1 names time-series applications as the canonical source of
*correlated* range queries: operators ask about windows near the events
themselves ("anything right after the deploy at 14:02?"). This example
stores event timestamps, issues window-emptiness checks anchored at
event times, and compares filter effectiveness: the heuristics
(Bucketing, SNARF) answer "maybe" almost always — useless — while
Grafite's FPR matches its analytic bound.
"""

import numpy as np

from repro import Bucketing, Grafite, SnarfFilter
from repro.analysis.fpr import measure_fpr
from repro.workloads.queries import correlated_queries

#: One year of microsecond timestamps.
UNIVERSE = 365 * 24 * 3600 * 10**6
N_EVENTS = 50_000
WINDOW = 1000  # 1 ms emptiness windows
BITS_PER_KEY = 18


def bursty_events(n: int, seed: int) -> np.ndarray:
    """Event timestamps arriving in bursts (incidents cause clusters)."""
    rng = np.random.default_rng(seed)
    burst_starts = rng.integers(0, UNIVERSE, n // 50, dtype=np.uint64)
    offsets = rng.exponential(scale=50_000.0, size=(n // 50, 50)).cumsum(axis=1)
    stamps = (burst_starts[:, None] + offsets.astype(np.uint64)).ravel()
    return np.unique(np.minimum(stamps, np.uint64(UNIVERSE - 1)))


def main() -> None:
    events = bursty_events(N_EVENTS, seed=11)
    print(f"{events.size:,} bursty event timestamps over one year (us resolution)")

    # Operators probe windows right next to known events: D = 1 correlation.
    probes = correlated_queries(
        events, 3000, WINDOW, UNIVERSE, correlation_degree=1.0, seed=12
    )
    print(f"{len(probes):,} empty 1ms windows anchored next to events\n")

    filters = {
        "Grafite": Grafite(
            events, UNIVERSE, bits_per_key=BITS_PER_KEY, max_range_size=WINDOW, seed=5
        ),
        "Bucketing": Bucketing(events, UNIVERSE, bits_per_key=BITS_PER_KEY),
        "SNARF": SnarfFilter(events, UNIVERSE, bits_per_key=BITS_PER_KEY),
    }
    print(f"{'filter':>10} | {'bits/key':>8} | {'FPR on correlated windows':>26}")
    print("-" * 52)
    for name, filt in filters.items():
        fpr = measure_fpr(filt, probes).fpr
        print(f"{name:>10} | {filt.bits_per_key:8.2f} | {fpr:26.4f}")
    bound = filters["Grafite"].fpr_bound(WINDOW)
    print(f"\nGrafite's analytic bound for {WINDOW}-wide windows: {bound:.4f}")
    print("A 'maybe' here means scanning cold storage for the raw events;")
    print("heuristic filters make that happen on (almost) every probe.")


if __name__ == "__main__":
    main()
