"""Dynamic Grafite: the paper's §7 insertions open problem, engineered.

Run with::

    python examples/dynamic_inserts.py

A streaming ingest scenario: keys arrive one by one, the filter answers
range-emptiness queries throughout, and space/FPR stay near the static
filter's. The logarithmic method keeps O(log n) Elias-Fano runs; a final
``compact()`` collapses them to one.
"""

import numpy as np

from repro import Grafite
from repro.core.dynamic import DynamicGrafite
from repro.workloads.datasets import uniform
from repro.workloads.queries import uncorrelated_queries

UNIVERSE = 2**44
CAPACITY = 50_000
L = 64


def measured_fpr(filt, queries) -> float:
    return sum(filt.may_contain_range(lo, hi) for lo, hi in queries) / len(queries)


def main() -> None:
    keys = uniform(CAPACITY, universe=UNIVERSE, seed=17)
    dynamic = DynamicGrafite(
        CAPACITY, UNIVERSE, eps=0.01, max_range_size=L, buffer_size=1024, seed=3
    )
    queries = uncorrelated_queries(1000, L, UNIVERSE, keys=keys, seed=18)

    print(f"streaming {CAPACITY:,} keys into a DynamicGrafite (capacity {CAPACITY:,})\n")
    print(f"{'inserted':>10} | {'runs':>4} | {'bits/key':>8} | {'FPR':>9} | {'bound':>9}")
    print("-" * 55)
    checkpoints = {CAPACITY // 8, CAPACITY // 2, CAPACITY}
    for i, key in enumerate(keys, start=1):
        dynamic.insert(int(key))
        if i in checkpoints:
            fpr = measured_fpr(dynamic, queries[:300])
            print(
                f"{i:>10,} | {dynamic.run_count:>4} | {dynamic.bits_per_key:8.2f} "
                f"| {fpr:9.4f} | {dynamic.fpr_bound(L):9.4f}"
            )

    dynamic.compact()
    static = Grafite(keys, UNIVERSE, eps=0.01, max_range_size=L, seed=3)
    print(
        f"\nafter compact(): {dynamic.run_count} run, "
        f"{dynamic.bits_per_key:.2f} bits/key "
        f"(static filter on the same keys: {static.bits_per_key:.2f})"
    )
    print(
        f"dynamic FPR {measured_fpr(dynamic, queries):.4f} vs "
        f"static {measured_fpr(static, queries):.4f} — same guarantee, "
        "now with inserts."
    )


if __name__ == "__main__":
    main()
