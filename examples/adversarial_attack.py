"""An adaptive adversary attacking range filters (§1, §6.2, §6.7).

Run with::

    python examples/adversarial_attack.py

A malicious client that knows a fraction of the stored keys crafts empty
ranges hugging them and re-issues whatever came back "not empty". The
per-round false-positive rate is the fraction of client probes that turn
into backend reads — i.e. the amplification of the denial-of-service the
filter was deployed to prevent. Heuristic filters lock in at FPR ~1;
Grafite's per-query bound leaves the adversary with nothing to adapt to.
"""

from repro import Bucketing, Grafite, SnarfFilter, SuRF
from repro.workloads.adversary import AdaptiveAdversary
from repro.workloads.datasets import uniform

UNIVERSE = 2**48
N_KEYS = 20_000
BITS_PER_KEY = 18
RANGE = 16
ROUNDS = 4
PER_ROUND = 500


def main() -> None:
    keys = uniform(N_KEYS, universe=UNIVERSE, seed=21)
    targets = {
        "Grafite": Grafite(
            keys, UNIVERSE, bits_per_key=BITS_PER_KEY, max_range_size=RANGE, seed=1
        ),
        "Bucketing": Bucketing(keys, UNIVERSE, bits_per_key=BITS_PER_KEY),
        "SNARF": SnarfFilter(keys, UNIVERSE, bits_per_key=BITS_PER_KEY),
        "SuRF": SuRF(keys, UNIVERSE, suffix_mode="real", suffix_bits=8, seed=1),
    }
    print(
        f"adversary knows 10% of {N_KEYS:,} keys; {ROUNDS} rounds x "
        f"{PER_ROUND} crafted empty probes of size {RANGE}\n"
    )
    print(f"{'filter':>10} | FPR per round (backend reads per probe)")
    print("-" * 60)
    for name, filt in targets.items():
        adversary = AdaptiveAdversary(keys, leaked_fraction=0.1, seed=33)
        report = adversary.attack(
            filt, rounds=ROUNDS, queries_per_round=PER_ROUND, range_size=RANGE
        )
        rounds = "  ".join(f"{r:.3f}" for r in report.per_round_fpr)
        print(f"{name:>10} | {rounds}")
    bound = targets["Grafite"].fpr_bound(RANGE)
    print(f"\nGrafite's bound min(1, ell/2^(B-2)) = {bound:.4f} holds per query,")
    print("for any adversary — adaptivity buys nothing (Corollary 3.5).")


if __name__ == "__main__":
    main()
