"""repro.faults — deterministic, seeded fault injection for the whole stack.

The paper's claim is robustness against *adversarial queries*; this
module supplies the adversarial *environment*: disks that tear writes,
flip bits and return ``EIO``, and networks that reset, stall and
fragment. Every fault is drawn from a seeded :class:`FaultPlan`, so a
chaos run that fails names a seed that replays it exactly.

Three layers plug into it:

* **filesystem seam** — :mod:`repro.engine.persist` and
  :mod:`repro.engine.wal` route their file I/O through
  :func:`read_bytes` / :func:`write_bytes` / :func:`fsync_file` /
  :func:`fsync_dir` and wrap long-lived handles in :class:`FaultyFile`.
  With no plan installed these are straight passthroughs (one global
  ``None`` check); under :func:`inject` they tear writes at a random
  prefix, flip single bits on reads, raise ``OSError(EIO)`` and add
  latency spikes;
* **at-rest corruption** — :class:`FaultyDir` deterministically damages
  files already on disk (bit flips, truncations), the crash-fuzz way of
  modelling storage rot between a crash and the reopen;
* **transport seam** — :class:`FaultyTransport` is a seeded TCP chaos
  proxy: put it between a client and :class:`~repro.net.server.NetServer`
  and it injects connection resets, stalls and partial frames without
  touching either endpoint.

The hardening this subsystem forced — and the tests that hold it — are
catalogued in ``docs/robustness.md``: crc32-checksummed run blobs and
manifests (:class:`~repro.errors.CorruptionError`, never a wrong
answer), checkpoint-epoch retention with automatic rollback, fsync
before the manifest-rename commit point, and client retry/backoff
(:class:`~repro.net.client.RetryPolicy`) with per-request deadlines.

Installation is process-global and **not** thread-scoped: every thread
that crosses a seam sees the active plan (that is the point — the
background compaction thread and the serving pool must feel the same
bad disk). Install around the region under test::

    from repro import faults

    plan = faults.FaultPlan(seed=7, torn_write=0.2, io_error=0.05)
    with faults.inject(plan):
        engine.checkpoint()        # may tear or EIO — old epoch stays intact
    print(plan.injected)           # {'torn_write': 1, ...}
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "FaultPlan",
    "FaultyDir",
    "FaultyFile",
    "FaultyTransport",
    "fsync_dir",
    "fsync_file",
    "get_plan",
    "inject",
    "install",
    "read_bytes",
    "uninstall",
    "wrap_file",
    "write_bytes",
]

_PROBABILITIES = (
    "torn_write", "bit_flip", "io_error", "latency",
    "reset", "stall", "partial",
)


@dataclass
class FaultPlan:
    """A seeded schedule of faults.

    Each field in ``torn_write`` / ``bit_flip`` / ``io_error`` /
    ``latency`` (filesystem seam) and ``reset`` / ``stall`` / ``partial``
    (transport seam) is an independent per-operation probability in
    ``[0, 1]``. Decisions come from one :class:`random.Random` seeded
    with ``seed``, so the same plan driving the same operation sequence
    injects the same faults — chaos tests stay reproducible and CI
    failures replayable.

    ``match`` restricts filesystem faults to paths whose name contains
    the substring (e.g. ``".sst"`` to corrupt only run blobs and leave
    the WAL alone); ``None`` matches everything. The transport seam
    ignores ``match``.

    ``injected`` tallies every fault actually fired, keyed by kind —
    chaos tests assert on it so a sweep that silently injected nothing
    cannot pass vacuously.
    """

    seed: int = 0
    torn_write: float = 0.0
    bit_flip: float = 0.0
    io_error: float = 0.0
    latency: float = 0.0
    latency_s: float = 0.002
    reset: float = 0.0
    stall: float = 0.0
    stall_s: float = 0.05
    partial: float = 0.0
    match: Optional[str] = None
    injected: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in _PROBABILITIES:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        self._rng = random.Random(self.seed)
        # One lock serialises rng draws: the plan is consulted from the
        # serving threads, the proxy's event-loop thread and the test
        # thread at once, and a torn rng state would break determinism.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _roll(self, kind: str, p: float) -> bool:
        with self._lock:
            hit = p > 0.0 and self._rng.random() < p
            if hit:
                self.injected[kind] = self.injected.get(kind, 0) + 1
            return hit

    def _randrange(self, n: int) -> int:
        with self._lock:
            return self._rng.randrange(n)

    def applies_to(self, path: os.PathLike | str) -> bool:
        """Whether filesystem faults target this path (``match`` filter)."""
        return self.match is None or self.match in os.fspath(path)

    def total_injected(self) -> int:
        """Sum of every fault fired so far."""
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # Filesystem-seam faults
    # ------------------------------------------------------------------
    def maybe_latency(self) -> None:
        """Sleep ``latency_s`` with probability ``latency`` (a slow disk)."""
        if self._roll("latency", self.latency):
            time.sleep(self.latency_s)

    def maybe_io_error(self, path: os.PathLike | str, op: str) -> None:
        """Raise ``OSError(EIO)`` with probability ``io_error``."""
        if self._roll("io_error", self.io_error):
            raise OSError(
                errno.EIO, f"injected EIO during {op}", os.fspath(path)
            )

    def torn_prefix(self, data: bytes) -> Optional[bytes]:
        """A strict prefix to tear a write at, or ``None`` (no tear)."""
        if not data or not self._roll("torn_write", self.torn_write):
            return None
        return data[: self._randrange(len(data))]

    def flipped(self, data: bytes) -> Optional[bytes]:
        """``data`` with one random bit flipped, or ``None`` (no flip)."""
        if not data or not self._roll("bit_flip", self.bit_flip):
            return None
        out = bytearray(data)
        bit = self._randrange(len(out) * 8)
        out[bit // 8] ^= 1 << (bit % 8)
        return bytes(out)

    # ------------------------------------------------------------------
    # Transport-seam faults
    # ------------------------------------------------------------------
    def transport_action(self) -> str:
        """Fate of one forwarded chunk: reset | stall | partial | pass."""
        if self._roll("reset", self.reset):
            return "reset"
        if self._roll("stall", self.stall):
            return "stall"
        if self._roll("partial", self.partial):
            return "partial"
        return "pass"


# ----------------------------------------------------------------------
# Global installation
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the active plan for every seam in this process."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Remove the active plan (all seams become passthroughs again)."""
    global _PLAN
    _PLAN = None


def get_plan() -> Optional[FaultPlan]:
    """The active plan, or ``None`` when nothing is injecting."""
    return _PLAN


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan``, uninstall on exit (always)."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def _active_for(path: os.PathLike | str) -> Optional[FaultPlan]:
    plan = _PLAN
    if plan is not None and plan.applies_to(path):
        return plan
    return None


# ----------------------------------------------------------------------
# Filesystem seam
# ----------------------------------------------------------------------
def read_bytes(path: os.PathLike | str) -> bytes:
    """``Path.read_bytes`` through the fault seam (EIO, bit flips)."""
    data = Path(path).read_bytes()
    plan = _active_for(path)
    if plan is None:
        return data
    plan.maybe_latency()
    plan.maybe_io_error(path, "read")
    flipped = plan.flipped(data)
    return data if flipped is None else flipped


def write_bytes(
    path: os.PathLike | str, data: bytes, *, fsync: bool = False
) -> None:
    """``Path.write_bytes`` through the fault seam.

    A torn write persists a strict prefix of ``data`` and then raises
    ``OSError(EIO)`` — the caller observes a failed write, the disk
    holds garbage, exactly the state a crash mid-write leaves behind.
    ``fsync=True`` flushes the file to stable storage after a clean
    write (the fsync itself can also draw an injected EIO).
    """
    path = Path(path)
    plan = _active_for(path)
    if plan is not None:
        plan.maybe_latency()
        plan.maybe_io_error(path, "write")
        prefix = plan.torn_prefix(data)
        if prefix is not None:
            path.write_bytes(prefix)
            raise OSError(
                errno.EIO,
                f"injected torn write ({len(prefix)}/{len(data)} bytes)",
                os.fspath(path),
            )
    path.write_bytes(data)
    if fsync:
        fsync_file(path)


def fsync_file(path: os.PathLike | str) -> None:
    """fsync one file by path (through the fault seam)."""
    plan = _active_for(path)
    if plan is not None:
        plan.maybe_io_error(path, "fsync")
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: os.PathLike | str) -> None:
    """fsync a directory so renames/creates within it are durable.

    Required on POSIX for the manifest-rename commit point to survive
    power loss: the rename itself lives in the directory's metadata.
    Silently skipped on platforms whose directories cannot be opened
    for fsync (Windows); the rename is still atomic there.
    """
    plan = _active_for(path)
    if plan is not None:
        plan.maybe_io_error(path, "fsync-dir")
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


class FaultyFile:
    """A write-handle proxy that consults the active plan per operation.

    Wraps a binary file object (the WAL's append handle) and injects at
    call time, so a plan installed *after* the file was opened still
    applies. ``write`` may raise an injected EIO, or tear: the prefix is
    written for real and ``OSError(EIO)`` raised — matching what the
    kernel leaves after a mid-write crash. Everything else delegates.
    """

    def __init__(self, fh) -> None:
        self._fh = fh

    def _plan(self) -> Optional[FaultPlan]:
        return _active_for(getattr(self._fh, "name", ""))

    def write(self, data: bytes) -> int:
        plan = self._plan()
        if plan is not None:
            plan.maybe_latency()
            plan.maybe_io_error(getattr(self._fh, "name", "?"), "write")
            prefix = plan.torn_prefix(data)
            if prefix is not None:
                self._fh.write(prefix)
                self._fh.flush()
                raise OSError(
                    errno.EIO,
                    f"injected torn write ({len(prefix)}/{len(data)} bytes)",
                    getattr(self._fh, "name", "?"),
                )
        return self._fh.write(data)

    def fsync(self) -> None:
        """flush + fsync through the seam (used by the WAL's sync mode)."""
        plan = self._plan()
        if plan is not None:
            plan.maybe_io_error(getattr(self._fh, "name", "?"), "fsync")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def __getattr__(self, name: str):
        return getattr(self._fh, name)

    @property
    def closed(self) -> bool:
        return self._fh.closed


def wrap_file(fh) -> FaultyFile:
    """Wrap an open binary file in the per-operation fault seam."""
    return FaultyFile(fh)


class FaultyDir:
    """Deterministic at-rest corruption of files under a directory.

    Models storage rot discovered at reopen time (the state between a
    crash and the recovery): the plan's rng picks *which* file and
    *where*, so a crash-fuzz sweep over seeds covers blobs, manifests
    and offsets without enumerating them by hand.
    """

    def __init__(self, root: os.PathLike | str, plan: FaultPlan) -> None:
        self.root = Path(root)
        self.plan = plan

    def files(self, pattern: str = "**/*") -> List[Path]:
        """Matching files under the root, sorted for determinism."""
        return sorted(p for p in self.root.glob(pattern) if p.is_file())

    def pick(self, pattern: str = "**/*") -> Path:
        """One deterministic victim file matching ``pattern``."""
        candidates = self.files(pattern)
        if not candidates:
            raise InvalidParameterError(
                f"no files matching {pattern!r} under {self.root}"
            )
        return candidates[self.plan._randrange(len(candidates))]

    def flip_bit(
        self, pattern: str = "**/*", *, path: Optional[Path] = None
    ) -> Tuple[Path, int]:
        """Flip one plan-chosen bit in one file; returns (path, bit)."""
        victim = path if path is not None else self.pick(pattern)
        data = bytearray(victim.read_bytes())
        if not data:
            raise InvalidParameterError(f"{victim} is empty; nothing to flip")
        bit = self.plan._randrange(len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        victim.write_bytes(bytes(data))
        self.plan.injected["at_rest_bit_flip"] = (
            self.plan.injected.get("at_rest_bit_flip", 0) + 1
        )
        return victim, bit

    def truncate(
        self, pattern: str = "**/*", *, path: Optional[Path] = None
    ) -> Tuple[Path, int]:
        """Truncate one file at a plan-chosen offset; returns (path, len)."""
        victim = path if path is not None else self.pick(pattern)
        data = victim.read_bytes()
        if not data:
            raise InvalidParameterError(f"{victim} is empty; cannot truncate")
        cut = self.plan._randrange(len(data))
        victim.write_bytes(data[:cut])
        self.plan.injected["at_rest_truncation"] = (
            self.plan.injected.get("at_rest_truncation", 0) + 1
        )
        return victim, cut


# ----------------------------------------------------------------------
# Transport seam
# ----------------------------------------------------------------------
class FaultyTransport:
    """A seeded TCP chaos proxy between a client and a server.

    Runs its own asyncio loop on a daemon thread (like
    :func:`repro.net.server.serve_in_thread`). Every forwarded chunk in
    either direction asks the plan for a fate:

    * ``reset`` — both sides are aborted immediately (the client sees a
      connection reset mid-request, the server a vanished peer);
    * ``stall`` — the chunk is delayed ``stall_s`` seconds before
      forwarding (what per-request deadlines exist to bound);
    * ``partial`` — the chunk is split and the halves delivered with a
      gap, exercising the frame decoder's re-assembly under fragmented
      delivery.

    ``counters`` tallies forwards and injections so chaos tests can
    assert the storm actually happened.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: FaultPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self._requested = (host, port)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "connections": 0,
            "chunks_forwarded": 0,
            "bytes_forwarded": 0,
            "resets_injected": 0,
            "stalls_injected": 0,
            "partial_chunks": 0,
        }
        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._stop_event = None

    # -- asyncio side ---------------------------------------------------
    async def _pump(self, reader, writer, peer_writer) -> None:
        import asyncio

        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                action = self.plan.transport_action()
                if action == "reset":
                    self.counters["resets_injected"] += 1
                    for w in (writer, peer_writer):
                        transport = w.transport
                        if transport is not None:
                            transport.abort()
                    return
                if action == "stall":
                    self.counters["stalls_injected"] += 1
                    await asyncio.sleep(self.plan.stall_s)
                if action == "partial" and len(data) > 1:
                    self.counters["partial_chunks"] += 1
                    cut = 1 + self.plan._randrange(len(data) - 1)
                    writer.write(data[:cut])
                    await writer.drain()
                    await asyncio.sleep(0.001)
                    writer.write(data[cut:])
                else:
                    writer.write(data)
                await writer.drain()
                self.counters["chunks_forwarded"] += 1
                self.counters["bytes_forwarded"] += len(data)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop shutting down
                pass

    async def _handle(self, client_reader, client_writer) -> None:
        import asyncio

        self.counters["connections"] += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            client_writer.close()
            return
        await asyncio.gather(
            self._pump(client_reader, up_writer, client_writer),
            self._pump(up_reader, client_writer, up_writer),
        )

    # -- thread lifecycle ----------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns the proxy address."""
        import asyncio

        started = threading.Event()
        box: dict = {}

        def runner() -> None:
            async def main() -> None:
                server = await asyncio.start_server(
                    self._handle, *self._requested
                )
                self.host, self.port = server.sockets[0].getsockname()[:2]
                self._loop = asyncio.get_running_loop()
                self._stop_event = asyncio.Event()
                started.set()
                await self._stop_event.wait()
                server.close()
                await server.wait_closed()

            try:
                asyncio.run(main())
            except Exception as exc:  # pragma: no cover - surfaced below
                box["error"] = exc
                started.set()

        self._thread = threading.Thread(
            target=runner, name="repro-fault-proxy", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30.0) or "error" in box:
            raise InvalidParameterError(
                f"fault proxy failed to start: {box.get('error')}"
            )
        assert self.host is not None and self.port is not None
        return self.host, self.port

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting and join the proxy thread."""
        if self._thread is not None and self._thread.is_alive():
            assert self._loop is not None and self._stop_event is not None
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "FaultyTransport":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
