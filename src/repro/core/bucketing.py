"""Bucketing — the paper's deliberately simple heuristic range filter (§4).

The universe is split into buckets of size ``s``; a bit marks each bucket
containing at least one key; the (sparse) set of marked bucket indices is
Elias-Fano encoded. A range ``[a, b]`` is non-empty iff some marked bucket
index lies in ``[a // s, b // s]`` — one predecessor query.

With ``t`` marked buckets the space is ``t * (log2(u / (t s)) + 2)`` bits
and queries take ``O(log(u / (t s)))`` time (Table 1). Like every heuristic
filter, Bucketing gives **no** distribution-free FPR guarantee and degrades
to no filtering under correlated workloads — which is exactly the role it
plays in the paper's experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError
from repro.filters.base import RangeFilter, as_key_array
from repro.succinct.elias_fano import EliasFano


class Bucketing(RangeFilter):
    """The Bucketing heuristic filter.

    Parameters
    ----------
    keys:
        Input keys in ``[0, universe)``.
    universe:
        Exclusive universe bound ``u``.
    bucket_size:
        The coarseness knob ``s >= 1``: ``s = 1`` encodes the key set
        losslessly, larger ``s`` trades space for false positives.
        Mutually exclusive with ``bits_per_key``.
    bits_per_key:
        Space budget; the constructor searches for the smallest ``s``
        whose encoding fits the budget (doubling then refining).
    """

    name = "Bucketing"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int = 2**64,
        *,
        bucket_size: Optional[int] = None,
        bits_per_key: Optional[float] = None,
    ) -> None:
        super().__init__(universe)
        if (bucket_size is None) == (bits_per_key is None):
            raise InvalidParameterError("pass exactly one of bucket_size or bits_per_key")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        if bucket_size is not None:
            if bucket_size < 1:
                raise InvalidParameterError(f"bucket_size must be >= 1, got {bucket_size}")
            self._s = int(bucket_size)
            self._ef = self._encode(arr)
        else:
            if bits_per_key <= 0:
                raise InvalidParameterError(f"bits_per_key must be positive, got {bits_per_key}")
            self._s, self._ef = self._fit_budget(arr, bits_per_key)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _encode(self, arr: np.ndarray) -> EliasFano:
        """Elias-Fano encode the deduplicated marked-bucket indices."""
        bucket_universe = (self._universe - 1) // self._s + 1
        if arr.size == 0:
            return EliasFano([], universe=bucket_universe)
        if self._s == 1:
            marked = arr
        else:
            # Keys fit in uint64 and s >= 1, so integer division is exact.
            marked = np.unique(arr // np.uint64(self._s))
        return EliasFano(marked, universe=bucket_universe)

    def _fit_budget(self, arr: np.ndarray, bits_per_key: float) -> tuple[int, EliasFano]:
        """Find the smallest power-of-two ``s`` whose encoding fits the budget.

        The paper leaves the choice of ``s`` to the user; for the space-axis
        sweeps of Figures 4 and 6 we auto-fit: double ``s`` until the
        Elias-Fano size formula fits ``bits_per_key * n`` bits, then build
        the encoding once. The formula is exact (``t*l`` low bits plus the
        ``t + (u_s - 1 >> l) + 1`` high bits), so no trial encodings are
        needed.
        """
        budget_bits = bits_per_key * max(1, arr.size)

        def fits(s: int) -> bool:
            if s >= self._universe:
                return True
            bucket_universe = (self._universe - 1) // s + 1
            t = int(np.unique(arr // np.uint64(s)).size) if arr.size else 0
            if t == 0:
                return True
            ratio = bucket_universe // t
            low_bits = ratio.bit_length() - 1 if ratio >= 1 else 0
            size = t * low_bits + t + ((bucket_universe - 1) >> low_bits) + 1
            return size <= budget_bits

        # Binary search the power-of-two exponent (the size formula is
        # monotone in s for all practical inputs): O(log log u) uniques.
        lo_exp, hi_exp = 0, max(1, (self._universe - 1).bit_length())
        if fits(1):
            hi_exp = 0
        while lo_exp < hi_exp:
            mid = (lo_exp + hi_exp) // 2
            if fits(1 << mid):
                hi_exp = mid
            else:
                lo_exp = mid + 1
        self._s = 1 << hi_exp
        return self._s, self._encode(arr)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def bucket_size(self) -> int:
        """The coarseness parameter ``s``."""
        return self._s

    @property
    def marked_buckets(self) -> int:
        """``t``, the number of non-empty buckets (Table 1's data term)."""
        return len(self._ef)

    @property
    def size_in_bits(self) -> int:
        return self._ef.size_in_bits

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        return self._ef.contains_in_range(lo // self._s, hi // self._s)

    def may_contain_range_batch(self, los, his) -> np.ndarray:
        """Vectorised probe: bucket the bounds, one batch EF predecessor.

        Rides directly on the succinct bulk kernels — the bucketed bound
        columns go through :meth:`EliasFano.contains_in_range_batch`,
        i.e. one batched ``select0`` bucket isolation plus a lock-step
        low-part binary search, with no decode and no per-query Python.
        """
        los_arr = np.asarray(los, dtype=np.uint64)
        his_arr = np.asarray(his, dtype=np.uint64)
        if los_arr.shape != his_arr.shape or los_arr.ndim != 1:
            raise InvalidQueryError(
                "batch queries need equal-length one-dimensional lo/hi arrays"
            )
        if los_arr.size == 0:
            return np.zeros(0, dtype=bool)
        if bool((los_arr > his_arr).any()):
            raise InvalidQueryError("batch query with lo > hi")
        if int(his_arr.max()) >= self._universe:
            raise InvalidQueryError("batch query outside the universe")
        if self._n == 0:
            return np.zeros(los_arr.size, dtype=bool)
        s = np.uint64(self._s)
        return self._ef.contains_in_range_batch(los_arr // s, his_arr // s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bucketing(n={self._n}, s={self._s}, t={self.marked_buckets})"
