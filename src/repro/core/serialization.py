"""Versioned binary serialisation for every engine filter backend.

Filters live next to the data they guard (an SSTable footer, a network
share); a stable byte format matters more for adoption than pickle's
convenience. The format is deliberately simple:

``header | params | payload blocks``

* header: a four-byte magic per filter type, format version (u16);
* params: the construction parameters needed to re-derive derived state
  deterministically (no re-hashing of keys on load);
* payload: raw little-endian word arrays of the filter's bit structures
  (Elias-Fano vectors, Bloom arrays, LOUDS tries, Rice streams, ...).

Every backend the engine can mount is covered — the paper's own filters
(Grafite, Bucketing) *and* the heuristic baselines (SuRF, Rosetta,
Proteus, SNARF, REncoder). This is what lets
:mod:`repro.engine.persist` checkpoint a run's filter as an opaque blob
and restore it byte-for-byte on reopen (same hash constants, same false
positives), and what lets the process-mode snapshot workers of
:mod:`repro.engine.workers` open any shard without a filter factory.

Pickle keeps working too (the classes are plain objects); this module is
for cross-process, cross-version artifacts with an explicit layout.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.filters.bloom import BloomFilter
from repro.filters.fst import FastSuccinctTrie
from repro.filters.proteus import Proteus
from repro.filters.rencoder import REncoder
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF, _SUFFIX_MODES
from repro.succinct.bitvector import BitVector
from repro.succinct.elias_fano import EliasFano
from repro.succinct.golomb import GolombSequence
from repro.succinct.packed import PackedIntVector
from repro.succinct.rank_select import RankSelect

_GRAFITE_MAGIC = b"GRFT"
_BUCKETING_MAGIC = b"BCKT"
_SURF_MAGIC = b"SURF"
_ROSETTA_MAGIC = b"ROSE"
_PROTEUS_MAGIC = b"PRTS"
_SNARF_MAGIC = b"SNRF"
_RENCODER_MAGIC = b"RENC"
_VERSION = 1


def _pack_int(value: int) -> bytes:
    """Length-prefixed big-int encoding (universes may exceed 64 bits)."""
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "little")
    return struct.pack("<I", len(raw)) + raw


def _unpack_int(buf: bytes, offset: int) -> Tuple[int, int]:
    (length,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    value = int.from_bytes(buf[offset:offset + length], "little")
    return value, offset + length


def _pack_words(words: np.ndarray) -> bytes:
    raw = words.astype("<u8").tobytes()
    return struct.pack("<Q", words.size) + raw


def _unpack_words(buf: bytes, offset: int) -> Tuple[np.ndarray, int]:
    (count,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    words = np.frombuffer(buf, dtype="<u8", count=count, offset=offset).astype(np.uint64)
    return words, offset + count * 8


def _pack_elias_fano(ef: EliasFano) -> bytes:
    parts = [
        struct.pack("<QQB", len(ef), 0, ef.low_bits),
        _pack_int(ef.universe),
        _pack_words(ef._low._words if len(ef) else np.zeros(0, dtype=np.uint64)),
        struct.pack("<Q", len(ef._high.bitvector)),
        _pack_words(ef._high.bitvector.words),
    ]
    return b"".join(parts)


def _unpack_elias_fano(buf: bytes, offset: int) -> Tuple[EliasFano, int]:
    n, _reserved, low_bits = struct.unpack_from("<QQB", buf, offset)
    offset += 17
    universe, offset = _unpack_int(buf, offset)
    low_words, offset = _unpack_words(buf, offset)
    (high_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    high_words, offset = _unpack_words(buf, offset)

    # Reassemble the structure without re-encoding: rebuild the packed
    # vector and bit vector from their raw words, then recompute the
    # (derived) rank/select index and first/last caches.
    ef = EliasFano.__new__(EliasFano)
    ef._n = int(n)
    ef._u = int(universe)
    ef._l = int(low_bits)
    ef._decoded = None
    low = PackedIntVector.__new__(PackedIntVector)
    low._width = int(low_bits)
    low._n = int(n)
    low._words = low_words
    ef._low = low
    high_bits = BitVector(int(high_len))
    if high_words.size:
        high_bits.words[: high_words.size] = high_words
    ef._high = RankSelect(high_bits)
    if n:
        ef._first = ef.access(0)
        ef._last = ef.access(int(n) - 1)
    else:
        ef._first = None
        ef._last = None
    return ef, offset


# ----------------------------------------------------------------------
# Shared component blocks (bit vectors, Blooms, tries, Rice streams)
# ----------------------------------------------------------------------
def _pack_bytes(raw: bytes) -> bytes:
    return struct.pack("<Q", len(raw)) + raw


def _unpack_bytes(buf: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    return bytes(buf[offset:offset + length]), offset + length


def _pack_f64(arr: np.ndarray) -> bytes:
    raw = np.asarray(arr, dtype="<f8").tobytes()
    return struct.pack("<Q", arr.size) + raw


def _unpack_f64(buf: bytes, offset: int) -> Tuple[np.ndarray, int]:
    (count,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    arr = np.frombuffer(buf, dtype="<f8", count=count, offset=offset).astype(np.float64)
    return arr, offset + count * 8


def _pack_bitvector(bv: BitVector) -> bytes:
    return struct.pack("<Q", len(bv)) + _pack_words(bv.words)


def _unpack_bitvector(buf: bytes, offset: int) -> Tuple[BitVector, int]:
    (length,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    words, offset = _unpack_words(buf, offset)
    bv = BitVector(int(length))
    if words.size:
        bv.words[: words.size] = words
    return bv, offset


def _pack_packed(pv: PackedIntVector) -> bytes:
    return struct.pack("<BQ", pv.width, len(pv)) + _pack_words(pv._words)


def _unpack_packed(buf: bytes, offset: int) -> Tuple[PackedIntVector, int]:
    width, n = struct.unpack_from("<BQ", buf, offset)
    offset += 9
    words, offset = _unpack_words(buf, offset)
    pv = PackedIntVector.__new__(PackedIntVector)
    pv._width = int(width)
    pv._n = int(n)
    pv._words = words
    return pv, offset


def _pack_bloom(bloom: BloomFilter) -> bytes:
    parts = [
        struct.pack(
            "<QHQQQ",
            bloom.num_bits,
            bloom.num_hashes,
            bloom._seed1,
            bloom._seed2,
            bloom.item_count,
        ),
        _pack_bitvector(bloom._bits),
    ]
    return b"".join(parts)


def _unpack_bloom(buf: bytes, offset: int) -> Tuple[BloomFilter, int]:
    m, k, seed1, seed2, count = struct.unpack_from("<QHQQQ", buf, offset)
    offset += 34
    bits, offset = _unpack_bitvector(buf, offset)
    bloom = BloomFilter.__new__(BloomFilter)
    bloom._m = int(m)
    bloom._k = int(k)
    bloom._seed1 = int(seed1)
    bloom._seed2 = int(seed2)
    bloom._count = int(count)
    bloom._bits = bits
    return bloom, offset


def _pack_trie(trie: FastSuccinctTrie) -> bytes:
    parts = [
        struct.pack("<Q", trie.num_leaves),
        _pack_bytes(trie._labels.tobytes()),
        _pack_bitvector(trie._has_child.bitvector),
        _pack_bitvector(trie._louds.bitvector),
        _pack_words(trie._leaf_order.astype(np.uint64)),
    ]
    return b"".join(parts)


def _unpack_trie(buf: bytes, offset: int) -> Tuple[FastSuccinctTrie, int]:
    (num_leaves,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    labels_raw, offset = _unpack_bytes(buf, offset)
    has_child_bv, offset = _unpack_bitvector(buf, offset)
    louds_bv, offset = _unpack_bitvector(buf, offset)
    leaf_words, offset = _unpack_words(buf, offset)
    # The rank/select indexes are derived state: rebuilding them from the
    # bit vectors is deterministic, so only the vectors travel.
    trie = FastSuccinctTrie.__new__(FastSuccinctTrie)
    trie._num_leaves = int(num_leaves)
    trie._labels = np.frombuffer(labels_raw, dtype=np.uint8).copy()
    trie._has_child = RankSelect(has_child_bv)
    trie._louds = RankSelect(louds_bv)
    trie._leaf_order = leaf_words.astype(np.int64)
    trie._num_edges = int(trie._labels.size)
    trie._num_nodes = trie._louds.num_ones
    return trie, offset


def _pack_golomb(seq: GolombSequence) -> bytes:
    parts = [
        struct.pack("<QBIQ", len(seq), seq._b, seq._stride, seq._bits),
        _pack_int(seq._universe),
        _pack_words(seq._words),
        _pack_words(seq._dir_values),
        _pack_words(seq._dir_offsets.astype(np.uint64)),
    ]
    return b"".join(parts)


def _unpack_golomb(buf: bytes, offset: int) -> Tuple[GolombSequence, int]:
    t, b, stride, bits = struct.unpack_from("<QBIQ", buf, offset)
    offset += 21
    universe, offset = _unpack_int(buf, offset)
    words, offset = _unpack_words(buf, offset)
    dir_values, offset = _unpack_words(buf, offset)
    dir_offsets, offset = _unpack_words(buf, offset)
    seq = GolombSequence.__new__(GolombSequence)
    seq._t = int(t)
    seq._universe = int(universe)
    seq._b = int(b)
    seq._stride = int(stride)
    seq._bits = int(bits)
    seq._words = words
    seq._dir_values = dir_values
    seq._dir_offsets = dir_offsets.astype(np.int64)
    return seq, offset


def _check_header(buf: bytes, magic: bytes, kind: str) -> None:
    if bytes(buf[:4]) != magic:
        raise InvalidParameterError(f"not a serialised {kind} filter")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version != _VERSION:
        raise InvalidParameterError(f"unsupported {kind} format version {version}")


# ----------------------------------------------------------------------
# Grafite
# ----------------------------------------------------------------------
def grafite_to_bytes(filt: Grafite) -> bytes:
    """Serialise a static Grafite filter (exact mode included)."""
    if filt._hash is not None:
        p, c1, c2 = filt._hash.block_hash.parameters
    else:
        p = c1 = c2 = 0
    parts = [
        _GRAFITE_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<B", 1 if filt.is_exact else 0),
        struct.pack("<Qd", filt.max_range_size, filt.eps),
        struct.pack("<Q", filt.key_count),
        _pack_int(filt.universe),
        _pack_int(filt.reduced_universe),
        _pack_int(p),
        _pack_int(c1),
        _pack_int(c2),
        _pack_elias_fano(filt._ef),
    ]
    return b"".join(parts)


def grafite_from_bytes(buf: bytes) -> Grafite:
    """Load a Grafite filter serialised by :func:`grafite_to_bytes`."""
    _check_header(buf, _GRAFITE_MAGIC, "Grafite")
    offset = 6
    (exact,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    max_range, eps = struct.unpack_from("<Qd", buf, offset)
    offset += 16
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = _unpack_int(buf, offset)
    reduced, offset = _unpack_int(buf, offset)
    p, offset = _unpack_int(buf, offset)
    c1, offset = _unpack_int(buf, offset)
    c2, offset = _unpack_int(buf, offset)
    ef, offset = _unpack_elias_fano(buf, offset)

    filt = Grafite.__new__(Grafite)
    filt._universe = int(universe)
    filt._L = int(max_range)
    filt._eps = float(eps)
    filt._n = int(n)
    filt._r = int(reduced)
    filt._exact = bool(exact)
    filt._ef = ef
    if exact or n == 0:
        filt._hash = None
    else:
        from repro.core.hashing import LocalityPreservingHash

        hasher = LocalityPreservingHash(int(reduced), domain=int(universe), seed=0)
        hasher._q._p, hasher._q._c1, hasher._q._c2 = int(p), int(c1), int(c2)
        filt._hash = hasher
    return filt


# ----------------------------------------------------------------------
# Bucketing
# ----------------------------------------------------------------------
def bucketing_to_bytes(filt: Bucketing) -> bytes:
    """Serialise a Bucketing filter."""
    parts = [
        _BUCKETING_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<Q", filt.key_count),
        _pack_int(filt.universe),
        _pack_int(filt.bucket_size),
        _pack_elias_fano(filt._ef),
    ]
    return b"".join(parts)


def bucketing_from_bytes(buf: bytes) -> Bucketing:
    """Load a Bucketing filter serialised by :func:`bucketing_to_bytes`."""
    _check_header(buf, _BUCKETING_MAGIC, "Bucketing")
    offset = 6
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = _unpack_int(buf, offset)
    bucket_size, offset = _unpack_int(buf, offset)
    ef, offset = _unpack_elias_fano(buf, offset)
    filt = Bucketing.__new__(Bucketing)
    filt._universe = int(universe)
    filt._n = int(n)
    filt._s = int(bucket_size)
    filt._ef = ef
    return filt


# ----------------------------------------------------------------------
# SuRF
# ----------------------------------------------------------------------
def surf_to_bytes(filt: SuRF) -> bytes:
    """Serialise a SuRF filter (trie, suffix vector, mode, seed)."""
    parts = [
        _SURF_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack(
            "<QBHBq",
            filt.key_count,
            _SUFFIX_MODES.index(filt._mode),
            filt._m,
            filt._width_bytes,
            filt._seed,
        ),
        _pack_int(filt.universe),
        _pack_trie(filt._trie),
        _pack_packed(filt._suffixes),
    ]
    return b"".join(parts)


def surf_from_bytes(buf: bytes) -> SuRF:
    """Load a SuRF filter serialised by :func:`surf_to_bytes`."""
    _check_header(buf, _SURF_MAGIC, "SuRF")
    offset = 6
    n, mode_idx, m, width_bytes, seed = struct.unpack_from("<QBHBq", buf, offset)
    offset += 20
    universe, offset = _unpack_int(buf, offset)
    trie, offset = _unpack_trie(buf, offset)
    suffixes, offset = _unpack_packed(buf, offset)
    filt = SuRF.__new__(SuRF)
    filt._universe = int(universe)
    filt._mode = _SUFFIX_MODES[int(mode_idx)]
    filt._m = int(m)
    filt._seed = int(seed)
    filt._n = int(n)
    filt._width_bytes = int(width_bytes)
    filt._width_bits = int(width_bytes) * 8
    filt._trie = trie
    filt._suffixes = suffixes
    return filt


# ----------------------------------------------------------------------
# Rosetta
# ----------------------------------------------------------------------
def rosetta_to_bytes(filt: Rosetta) -> bytes:
    """Serialise a Rosetta filter (one Bloom filter per stored level)."""
    parts = [
        _ROSETTA_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<QHQI", filt.key_count, filt._W, filt._L, filt._max_probes),
        _pack_int(filt.universe),
        struct.pack("<H", len(filt._blooms)),
    ]
    for level in sorted(filt._blooms):
        parts.append(struct.pack("<H", level))
        parts.append(_pack_bloom(filt._blooms[level]))
    return b"".join(parts)


def rosetta_from_bytes(buf: bytes) -> Rosetta:
    """Load a Rosetta filter serialised by :func:`rosetta_to_bytes`."""
    _check_header(buf, _ROSETTA_MAGIC, "Rosetta")
    offset = 6
    n, W, L, max_probes = struct.unpack_from("<QHQI", buf, offset)
    offset += 22
    universe, offset = _unpack_int(buf, offset)
    (bloom_count,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    blooms = {}
    for _ in range(bloom_count):
        (level,) = struct.unpack_from("<H", buf, offset)
        offset += 2
        bloom, offset = _unpack_bloom(buf, offset)
        blooms[int(level)] = bloom
    filt = Rosetta.__new__(Rosetta)
    filt._universe = int(universe)
    filt._n = int(n)
    filt._W = int(W)
    filt._L = int(L)
    filt._max_probes = int(max_probes)
    depth_span = min(filt._W, filt._L.bit_length())
    filt._levels = list(range(filt._W - depth_span + 1, filt._W + 1))
    filt._blooms = blooms
    return filt


# ----------------------------------------------------------------------
# Proteus
# ----------------------------------------------------------------------
def proteus_to_bytes(filt: Proteus) -> bytes:
    """Serialise a Proteus filter (design pair, trie, prefix Bloom)."""
    parts = [
        _PROTEUS_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack(
            "<QHHHIq",
            filt.key_count,
            filt._W,
            filt._l1,
            filt._l2,
            filt._max_probes,
            filt._seed,
        ),
        _pack_int(filt.universe),
        _pack_words(np.asarray(filt._prefixes1, dtype=np.uint64)),
        _pack_trie(filt._trie),
        _pack_bloom(filt._bloom),
    ]
    return b"".join(parts)


def proteus_from_bytes(buf: bytes) -> Proteus:
    """Load a Proteus filter serialised by :func:`proteus_to_bytes`."""
    _check_header(buf, _PROTEUS_MAGIC, "Proteus")
    offset = 6
    n, W, l1, l2, max_probes, seed = struct.unpack_from("<QHHHIq", buf, offset)
    offset += 26
    universe, offset = _unpack_int(buf, offset)
    prefixes1, offset = _unpack_words(buf, offset)
    trie, offset = _unpack_trie(buf, offset)
    bloom, offset = _unpack_bloom(buf, offset)
    filt = Proteus.__new__(Proteus)
    filt._universe = int(universe)
    filt._n = int(n)
    filt._W = int(W)
    filt._max_probes = int(max_probes)
    filt._seed = int(seed)
    filt._l1 = int(l1)
    filt._l2 = int(l2)
    filt._prefix_cache = {}
    filt._prefixes1 = prefixes1
    filt._trie = trie
    filt._bloom = bloom
    return filt


# ----------------------------------------------------------------------
# SNARF
# ----------------------------------------------------------------------
def snarf_to_bytes(filt: SnarfFilter) -> bytes:
    """Serialise a SNARF filter (spline knots + Rice-coded bit array)."""
    parts = [
        _SNARF_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<QdBQ", filt.key_count, filt._K, int(filt._float32), filt._slots),
        _pack_int(filt.universe),
        _pack_int(filt._min_key),
        _pack_int(filt._max_key),
        _pack_f64(filt._knot_keys),
        _pack_f64(filt._knot_ranks),
        _pack_golomb(filt._bits),
    ]
    return b"".join(parts)


def snarf_from_bytes(buf: bytes) -> SnarfFilter:
    """Load a SNARF filter serialised by :func:`snarf_to_bytes`."""
    _check_header(buf, _SNARF_MAGIC, "SNARF")
    offset = 6
    n, K, float32, slots = struct.unpack_from("<QdBQ", buf, offset)
    offset += 25
    universe, offset = _unpack_int(buf, offset)
    min_key, offset = _unpack_int(buf, offset)
    max_key, offset = _unpack_int(buf, offset)
    knot_keys, offset = _unpack_f64(buf, offset)
    knot_ranks, offset = _unpack_f64(buf, offset)
    bits, offset = _unpack_golomb(buf, offset)
    filt = SnarfFilter.__new__(SnarfFilter)
    filt._universe = int(universe)
    filt._K = float(K)
    filt._float32 = bool(float32)
    filt._n = int(n)
    filt._slots = int(slots)
    filt._min_key = int(min_key)
    filt._max_key = int(max_key)
    if filt._float32:
        # float32 -> float64 widening is exact, so the narrowing here
        # restores the defect-emulation knots bit for bit.
        knot_keys = knot_keys.astype(np.float32)
        knot_ranks = knot_ranks.astype(np.float32)
    filt._knot_keys = knot_keys
    filt._knot_ranks = knot_ranks
    filt._bits = bits
    return filt


# ----------------------------------------------------------------------
# REncoder
# ----------------------------------------------------------------------
def rencoder_to_bytes(filt: REncoder) -> bytes:
    """Serialise an REncoder (any variant: base, SS, SE)."""
    name_raw = filt.name.encode("utf-8")
    parts = [
        _RENCODER_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack(
            "<QHHHIqQ",
            filt.key_count,
            filt._W,
            filt._stored,
            filt._k,
            filt._max_probes,
            filt._seed,
            filt._m,
        ),
        _pack_int(filt.universe),
        _pack_bytes(name_raw),
        _pack_words(filt._words),
    ]
    return b"".join(parts)


def rencoder_from_bytes(buf: bytes) -> REncoder:
    """Load an REncoder serialised by :func:`rencoder_to_bytes`."""
    _check_header(buf, _RENCODER_MAGIC, "REncoder")
    offset = 6
    n, W, stored, k, max_probes, seed, m = struct.unpack_from("<QHHHIqQ", buf, offset)
    offset += 34
    universe, offset = _unpack_int(buf, offset)
    name_raw, offset = _unpack_bytes(buf, offset)
    words, offset = _unpack_words(buf, offset)
    filt = REncoder.__new__(REncoder)
    filt._universe = int(universe)
    filt._n = int(n)
    filt._W = int(W)
    filt._chunks = int(W) // 4
    filt._stored = int(stored)
    filt._k = int(k)
    filt._max_probes = int(max_probes)
    filt._seed = int(seed)
    filt._m = int(m)
    filt._words = words
    name = name_raw.decode("utf-8")
    if name != REncoder.name:  # SS/SE variants carry an instance name
        filt.name = name
    return filt


# ----------------------------------------------------------------------
# Generic dispatch (engine snapshots)
# ----------------------------------------------------------------------
#: magic -> loader, the single place a new format gets registered.
_LOADERS = {
    _GRAFITE_MAGIC: grafite_from_bytes,
    _BUCKETING_MAGIC: bucketing_from_bytes,
    _SURF_MAGIC: surf_from_bytes,
    _ROSETTA_MAGIC: rosetta_from_bytes,
    _PROTEUS_MAGIC: proteus_from_bytes,
    _SNARF_MAGIC: snarf_from_bytes,
    _RENCODER_MAGIC: rencoder_from_bytes,
}

#: concrete type -> serialiser (checked in order; REncoder covers SS/SE).
_SAVERS = (
    (Grafite, grafite_to_bytes),
    (Bucketing, bucketing_to_bytes),
    (SuRF, surf_to_bytes),
    (Rosetta, rosetta_to_bytes),
    (Proteus, proteus_to_bytes),
    (SnarfFilter, snarf_to_bytes),
    (REncoder, rencoder_to_bytes),
)


def filter_to_bytes(filt) -> bytes:
    """Serialise any filter this module has a format for.

    The engine snapshot (:mod:`repro.engine.persist`) stores each run's
    filter next to the run so a reopened store false-positives on exactly
    the same probes as before the restart; rebuilding from keys would
    draw fresh hash constants. Every backend of
    :mod:`repro.filters.registry` is covered; raises for filter types
    without a stable format (the engine then rebuilds those from the
    run's keys via the filter factory).
    """
    for cls, saver in _SAVERS:
        if isinstance(filt, cls):
            return saver(filt)
    raise InvalidParameterError(
        f"no stable byte format for filter type {type(filt).__name__}"
    )


def filter_from_bytes(buf: bytes):
    """Load a filter serialised by :func:`filter_to_bytes` (magic dispatch)."""
    loader = _LOADERS.get(bytes(buf[:4]))
    if loader is None:
        raise InvalidParameterError(f"unknown filter magic {bytes(buf[:4])!r}")
    return loader(buf)


#: Public aliases for the primitive packers, reused by the engine's run
#: and WAL formats so every on-disk artifact shares one int/word layout.
pack_int = _pack_int
unpack_int = _unpack_int
pack_words = _pack_words
unpack_words = _unpack_words
