"""Versioned binary serialisation for Grafite and Bucketing.

Filters live next to the data they guard (an SSTable footer, a network
share); a stable byte format matters more for adoption than pickle's
convenience. The format is deliberately simple:

``header | params | elias-fano block``

* header: magic ``b"GRFT"`` / ``b"BCKT"``, format version (u16);
* params: the construction parameters needed to re-derive the hash
  function deterministically (no re-hashing of keys on load);
* Elias-Fano block: low-part width, counts, raw little-endian word
  arrays of the low vector and the high bit vector.

Pickle keeps working too (the classes are plain objects); this module is
for cross-process, cross-version artifacts with an explicit layout.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector
from repro.succinct.elias_fano import EliasFano
from repro.succinct.packed import PackedIntVector
from repro.succinct.rank_select import RankSelect

_GRAFITE_MAGIC = b"GRFT"
_BUCKETING_MAGIC = b"BCKT"
_VERSION = 1


def _pack_int(value: int) -> bytes:
    """Length-prefixed big-int encoding (universes may exceed 64 bits)."""
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "little")
    return struct.pack("<I", len(raw)) + raw


def _unpack_int(buf: bytes, offset: int) -> Tuple[int, int]:
    (length,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    value = int.from_bytes(buf[offset:offset + length], "little")
    return value, offset + length


def _pack_words(words: np.ndarray) -> bytes:
    raw = words.astype("<u8").tobytes()
    return struct.pack("<Q", words.size) + raw


def _unpack_words(buf: bytes, offset: int) -> Tuple[np.ndarray, int]:
    (count,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    words = np.frombuffer(buf, dtype="<u8", count=count, offset=offset).astype(np.uint64)
    return words, offset + count * 8


def _pack_elias_fano(ef: EliasFano) -> bytes:
    parts = [
        struct.pack("<QQB", len(ef), 0, ef.low_bits),
        _pack_int(ef.universe),
        _pack_words(ef._low._words if len(ef) else np.zeros(0, dtype=np.uint64)),
        struct.pack("<Q", len(ef._high.bitvector)),
        _pack_words(ef._high.bitvector.words),
    ]
    return b"".join(parts)


def _unpack_elias_fano(buf: bytes, offset: int) -> Tuple[EliasFano, int]:
    n, _reserved, low_bits = struct.unpack_from("<QQB", buf, offset)
    offset += 17
    universe, offset = _unpack_int(buf, offset)
    low_words, offset = _unpack_words(buf, offset)
    (high_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    high_words, offset = _unpack_words(buf, offset)

    # Reassemble the structure without re-encoding: rebuild the packed
    # vector and bit vector from their raw words, then recompute the
    # (derived) rank/select index and first/last caches.
    ef = EliasFano.__new__(EliasFano)
    ef._n = int(n)
    ef._u = int(universe)
    ef._l = int(low_bits)
    ef._decoded = None
    low = PackedIntVector.__new__(PackedIntVector)
    low._width = int(low_bits)
    low._n = int(n)
    low._words = low_words
    ef._low = low
    high_bits = BitVector(int(high_len))
    if high_words.size:
        high_bits.words[: high_words.size] = high_words
    ef._high = RankSelect(high_bits)
    if n:
        ef._first = ef.access(0)
        ef._last = ef.access(int(n) - 1)
    else:
        ef._first = None
        ef._last = None
    return ef, offset


# ----------------------------------------------------------------------
# Grafite
# ----------------------------------------------------------------------
def grafite_to_bytes(filt: Grafite) -> bytes:
    """Serialise a static Grafite filter (exact mode included)."""
    if filt._hash is not None:
        p, c1, c2 = filt._hash.block_hash.parameters
    else:
        p = c1 = c2 = 0
    parts = [
        _GRAFITE_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<B", 1 if filt.is_exact else 0),
        struct.pack("<Qd", filt.max_range_size, filt.eps),
        struct.pack("<Q", filt.key_count),
        _pack_int(filt.universe),
        _pack_int(filt.reduced_universe),
        _pack_int(p),
        _pack_int(c1),
        _pack_int(c2),
        _pack_elias_fano(filt._ef),
    ]
    return b"".join(parts)


def grafite_from_bytes(buf: bytes) -> Grafite:
    """Load a Grafite filter serialised by :func:`grafite_to_bytes`."""
    if buf[:4] != _GRAFITE_MAGIC:
        raise InvalidParameterError("not a serialised Grafite filter")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version != _VERSION:
        raise InvalidParameterError(f"unsupported Grafite format version {version}")
    offset = 6
    (exact,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    max_range, eps = struct.unpack_from("<Qd", buf, offset)
    offset += 16
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = _unpack_int(buf, offset)
    reduced, offset = _unpack_int(buf, offset)
    p, offset = _unpack_int(buf, offset)
    c1, offset = _unpack_int(buf, offset)
    c2, offset = _unpack_int(buf, offset)
    ef, offset = _unpack_elias_fano(buf, offset)

    filt = Grafite.__new__(Grafite)
    filt._universe = int(universe)
    filt._L = int(max_range)
    filt._eps = float(eps)
    filt._n = int(n)
    filt._r = int(reduced)
    filt._exact = bool(exact)
    filt._ef = ef
    if exact or n == 0:
        filt._hash = None
    else:
        from repro.core.hashing import LocalityPreservingHash

        hasher = LocalityPreservingHash(int(reduced), domain=int(universe), seed=0)
        hasher._q._p, hasher._q._c1, hasher._q._c2 = int(p), int(c1), int(c2)
        filt._hash = hasher
    return filt


# ----------------------------------------------------------------------
# Bucketing
# ----------------------------------------------------------------------
def bucketing_to_bytes(filt: Bucketing) -> bytes:
    """Serialise a Bucketing filter."""
    parts = [
        _BUCKETING_MAGIC,
        struct.pack("<H", _VERSION),
        struct.pack("<Q", filt.key_count),
        _pack_int(filt.universe),
        _pack_int(filt.bucket_size),
        _pack_elias_fano(filt._ef),
    ]
    return b"".join(parts)


def bucketing_from_bytes(buf: bytes) -> Bucketing:
    """Load a Bucketing filter serialised by :func:`bucketing_to_bytes`."""
    if buf[:4] != _BUCKETING_MAGIC:
        raise InvalidParameterError("not a serialised Bucketing filter")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version != _VERSION:
        raise InvalidParameterError(f"unsupported Bucketing format version {version}")
    offset = 6
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = _unpack_int(buf, offset)
    bucket_size, offset = _unpack_int(buf, offset)
    ef, offset = _unpack_elias_fano(buf, offset)
    filt = Bucketing.__new__(Bucketing)
    filt._universe = int(universe)
    filt._n = int(n)
    filt._s = int(bucket_size)
    filt._ef = ef
    return filt


# ----------------------------------------------------------------------
# Generic dispatch (engine snapshots)
# ----------------------------------------------------------------------
def filter_to_bytes(filt) -> bytes:
    """Serialise any filter this module has a format for.

    The engine snapshot (:mod:`repro.engine.persist`) stores each run's
    filter next to the run so a reopened store false-positives on exactly
    the same probes as before the restart; rebuilding from keys would
    draw fresh hash constants. Raises for filter types without a stable
    format (the engine then rebuilds those from the run's keys).
    """
    if isinstance(filt, Grafite):
        return grafite_to_bytes(filt)
    if isinstance(filt, Bucketing):
        return bucketing_to_bytes(filt)
    raise InvalidParameterError(
        f"no stable byte format for filter type {type(filt).__name__}"
    )


def filter_from_bytes(buf: bytes):
    """Load a filter serialised by :func:`filter_to_bytes` (magic dispatch)."""
    magic = bytes(buf[:4])
    if magic == _GRAFITE_MAGIC:
        return grafite_from_bytes(buf)
    if magic == _BUCKETING_MAGIC:
        return bucketing_from_bytes(buf)
    raise InvalidParameterError(f"unknown filter magic {magic!r}")


#: Public aliases for the primitive packers, reused by the engine's run
#: and WAL formats so every on-disk artifact shares one int/word layout.
pack_int = _pack_int
unpack_int = _unpack_int
pack_words = _pack_words
unpack_words = _unpack_words
