"""String-key extension of Grafite (paper §7, "future work", engineered here).

The paper suggests treating strings as integers and choosing the reduced
universe as a power of two ``r = 2^k`` so equation (1) becomes
``h(x) = (q(x >> k) + x) & (r - 1)`` — pure shifts and masks. This module
implements that: keys are fixed-width big-endian integer encodings of the
input strings (zero-padded on the right, which preserves lexicographic
order), and the integer Grafite runs with ``power_of_two_universe=True``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.grafite import Grafite
from repro.errors import InvalidKeyError, InvalidParameterError, InvalidQueryError


def encode_string(key: str | bytes, width: int) -> int:
    """Encode a string as a big-endian integer over ``width`` bytes.

    Zero-padding on the right preserves lexicographic order among all
    strings of length up to ``width`` (a string and itself plus trailing
    NUL bytes coincide, which only ever *adds* matches — no false
    negatives can arise).
    """
    raw = key.encode("utf-8") if isinstance(key, str) else bytes(key)
    if len(raw) > width:
        raise InvalidKeyError(
            f"key of {len(raw)} bytes exceeds the configured width {width}"
        )
    return int.from_bytes(raw.ljust(width, b"\x00"), "big")


class StringGrafite:
    """Grafite over string keys.

    Parameters
    ----------
    keys:
        Iterable of ``str`` or ``bytes`` keys.
    max_key_bytes:
        Fixed encoding width in bytes. Defaults to the longest input key.
        Longer *query* endpoints are truncated to this width (truncation
        keeps queries conservative: it can only widen the range).
    eps / max_range_size / bits_per_key / seed:
        Forwarded to :class:`~repro.core.grafite.Grafite`; the range size
        ``L`` is measured in the integer-encoded space.
    """

    name = "Grafite-strings"

    def __init__(
        self,
        keys: Iterable[str | bytes],
        *,
        max_key_bytes: Optional[int] = None,
        eps: Optional[float] = None,
        max_range_size: int = 2**16,
        bits_per_key: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        raw_keys = [k.encode("utf-8") if isinstance(k, str) else bytes(k) for k in keys]
        if max_key_bytes is None:
            max_key_bytes = max((len(k) for k in raw_keys), default=1)
        if max_key_bytes < 1:
            raise InvalidParameterError(f"max_key_bytes must be >= 1, got {max_key_bytes}")
        self._width = int(max_key_bytes)
        universe = 1 << (8 * self._width)
        encoded = [encode_string(k, self._width) for k in raw_keys]
        self._inner = Grafite(
            encoded,
            universe,
            eps=eps,
            max_range_size=max_range_size,
            bits_per_key=bits_per_key,
            seed=seed,
            power_of_two_universe=True,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key_width_bytes(self) -> int:
        return self._width

    @property
    def inner(self) -> Grafite:
        """The underlying integer Grafite (power-of-two universe)."""
        return self._inner

    @property
    def key_count(self) -> int:
        return self._inner.key_count

    @property
    def size_in_bits(self) -> int:
        return self._inner.size_in_bits

    @property
    def bits_per_key(self) -> float:
        return self._inner.bits_per_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _encode_endpoint(self, key: str | bytes, *, round_up: bool) -> int:
        """Encode a query endpoint, truncating over-long strings safely.

        A truncated low endpoint rounds *down* and a truncated high
        endpoint rounds *up*, so the queried integer range always covers
        the original string range (conservative, never a false negative).
        """
        raw = key.encode("utf-8") if isinstance(key, str) else bytes(key)
        if len(raw) > self._width:
            raw = raw[: self._width]  # truncation widens the range either way
        value = encode_string(raw, self._width)
        if round_up and len(raw) < self._width:
            # Strings extending `raw` sort up to raw + 0xFF... padding.
            value |= (1 << (8 * (self._width - len(raw)))) - 1
        return value

    def may_contain_range(self, lo: str | bytes, hi: str | bytes) -> bool:
        """Return False only if no stored key is in the string range ``[lo, hi]``.

        The high endpoint is *inclusive of extensions*: querying
        ``("app", "apz")`` matches any stored key with a prefix between
        the two, mirroring how trie-based filters (SuRF) treat string
        ranges.
        """
        lo_int = self._encode_endpoint(lo, round_up=False)
        hi_int = self._encode_endpoint(hi, round_up=True)
        if lo_int > hi_int:
            raise InvalidQueryError("string query range is inverted")
        return self._inner.may_contain_range(lo_int, hi_int)

    def may_contain(self, key: str | bytes) -> bool:
        """Point query for one string key."""
        value = self._encode_endpoint(key, round_up=False)
        return self._inner.may_contain_range(value, value)

    def may_contain_prefix(self, prefix: str | bytes) -> bool:
        """Return False only if no stored key starts with ``prefix``."""
        raw = prefix.encode("utf-8") if isinstance(prefix, str) else bytes(prefix)
        lo = self._encode_endpoint(raw, round_up=False)
        hi = self._encode_endpoint(raw, round_up=True)
        return self._inner.may_contain_range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringGrafite(n={self.key_count}, width={self._width})"
