"""String-key extension of Grafite (paper §7, "future work", engineered here).

The paper suggests treating strings as integers and choosing the reduced
universe as a power of two ``r = 2^k`` so equation (1) becomes
``h(x) = (q(x >> k) + x) & (r - 1)`` — pure shifts and masks. This module
implements that: keys are fixed-width big-endian integer encodings of the
input strings (zero-padded on the right, which preserves lexicographic
order), and the integer Grafite runs with ``power_of_two_universe=True``.

Two consumers share the encoding:

* :class:`StringGrafite` — a standalone *filter* over string keys, where
  over-long query endpoints are rounded conservatively (a widened range
  can only add false positives, never a false negative);
* :class:`StringKeyCodec` — the *exact* bridge that threads string keys
  through the integer engine (:class:`~repro.engine.ShardedEngine` and
  its serving tiers). Stored keys are capped at the codec width, and
  under that cap the integer image of every string range and prefix is
  exact, so engine verdicts through the codec stay bit-exact.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.core.grafite import Grafite
from repro.errors import InvalidKeyError, InvalidParameterError, InvalidQueryError


def _as_bytes(key: str | bytes) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


def encode_string(key: str | bytes, width: int) -> int:
    """Encode a string as a big-endian integer over ``width`` bytes.

    Zero-padding on the right preserves lexicographic order among all
    strings of length up to ``width`` (a string and itself plus trailing
    NUL bytes coincide, which only ever *adds* matches — no false
    negatives can arise).
    """
    raw = _as_bytes(key)
    if len(raw) > width:
        raise InvalidKeyError(
            f"key of {len(raw)} bytes exceeds the configured width {width}"
        )
    return int.from_bytes(raw.ljust(width, b"\x00"), "big")


def decode_string(value: int, width: int) -> bytes:
    """Invert :func:`encode_string` to the canonical stored key.

    "Canonical" strips trailing NUL bytes — the one deliberate collision
    of the encoding (a key and itself plus trailing NULs coincide).
    """
    value = int(value)
    if not 0 <= value < (1 << (8 * width)):
        raise InvalidKeyError(
            f"{value} is outside the {width}-byte key universe"
        )
    return value.to_bytes(width, "big").rstrip(b"\x00")


def encode_endpoint(key: str | bytes, width: int, *, round_up: bool) -> int:
    """Conservatively encode a *query endpoint*, which may exceed ``width``.

    A truncated low endpoint rounds *down* and a truncated high endpoint
    rounds *up*, so the queried integer range always covers the original
    string range — conservative, never a false negative. Rounding up a
    truncated endpoint means covering everything that sorts at or below
    the original string, i.e. one past the truncation (the original
    extends it, so it sorts above the truncation's whole storable
    block); when the truncation is already all ``0xFF`` bytes that
    increment would overflow the key width, so it saturates at the
    universe top instead of producing an out-of-range endpoint.
    """
    raw = _as_bytes(key)
    if len(raw) > width:
        value = encode_string(raw[:width], width)
        if round_up:
            value = min(value + 1, (1 << (8 * width)) - 1)
        return value
    value = encode_string(raw, width)
    if round_up and len(raw) < width:
        # Strings extending `raw` sort up to raw + 0xFF... padding.
        value |= (1 << (8 * (width - len(raw)))) - 1
    return value


class StringGrafite:
    """Grafite over string keys.

    Parameters
    ----------
    keys:
        Iterable of ``str`` or ``bytes`` keys.
    max_key_bytes:
        Fixed encoding width in bytes. Defaults to the longest input key.
        Longer *query* endpoints are truncated to this width (truncation
        keeps queries conservative: it can only widen the range).
    eps / max_range_size / bits_per_key / seed:
        Forwarded to :class:`~repro.core.grafite.Grafite`; the range size
        ``L`` is measured in the integer-encoded space.
    """

    name = "Grafite-strings"

    def __init__(
        self,
        keys: Iterable[str | bytes],
        *,
        max_key_bytes: Optional[int] = None,
        eps: Optional[float] = None,
        max_range_size: int = 2**16,
        bits_per_key: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        raw_keys = [k.encode("utf-8") if isinstance(k, str) else bytes(k) for k in keys]
        if max_key_bytes is None:
            max_key_bytes = max((len(k) for k in raw_keys), default=1)
        if max_key_bytes < 1:
            raise InvalidParameterError(f"max_key_bytes must be >= 1, got {max_key_bytes}")
        self._width = int(max_key_bytes)
        universe = 1 << (8 * self._width)
        encoded = [encode_string(k, self._width) for k in raw_keys]
        self._inner = Grafite(
            encoded,
            universe,
            eps=eps,
            max_range_size=max_range_size,
            bits_per_key=bits_per_key,
            seed=seed,
            power_of_two_universe=True,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key_width_bytes(self) -> int:
        return self._width

    @property
    def inner(self) -> Grafite:
        """The underlying integer Grafite (power-of-two universe)."""
        return self._inner

    @property
    def key_count(self) -> int:
        return self._inner.key_count

    @property
    def size_in_bits(self) -> int:
        return self._inner.size_in_bits

    @property
    def bits_per_key(self) -> float:
        return self._inner.bits_per_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _encode_endpoint(self, key: str | bytes, *, round_up: bool) -> int:
        """Encode a query endpoint via :func:`encode_endpoint`.

        Over-long endpoints truncate with the correct rounding for their
        side of the range (down for ``lo``, saturating-up for ``hi``),
        so the queried integer range always covers the original string
        range — conservative, never a false negative, and never an
        endpoint outside the filter's universe.
        """
        return encode_endpoint(key, self._width, round_up=round_up)

    def may_contain_range(self, lo: str | bytes, hi: str | bytes) -> bool:
        """Return False only if no stored key is in the string range ``[lo, hi]``.

        The high endpoint is *inclusive of extensions*: querying
        ``("app", "apz")`` matches any stored key with a prefix between
        the two, mirroring how trie-based filters (SuRF) treat string
        ranges.
        """
        lo_int = self._encode_endpoint(lo, round_up=False)
        hi_int = self._encode_endpoint(hi, round_up=True)
        if lo_int > hi_int:
            raise InvalidQueryError("string query range is inverted")
        return self._inner.may_contain_range(lo_int, hi_int)

    def may_contain(self, key: str | bytes) -> bool:
        """Point query for one string key."""
        value = self._encode_endpoint(key, round_up=False)
        return self._inner.may_contain_range(value, value)

    def may_contain_prefix(self, prefix: str | bytes) -> bool:
        """Return False only if no stored key starts with ``prefix``."""
        raw = prefix.encode("utf-8") if isinstance(prefix, str) else bytes(prefix)
        lo = self._encode_endpoint(raw, round_up=False)
        hi = self._encode_endpoint(raw, round_up=True)
        return self._inner.may_contain_range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringGrafite(n={self.key_count}, width={self._width})"


class StringKeyCodec:
    """Order-preserving codec between string keys and the engine's u64 space.

    Stored keys are capped at ``width`` bytes (:meth:`encode_key` raises
    :class:`~repro.errors.InvalidKeyError` beyond it) and a key is
    identified with itself plus trailing NUL bytes — the encoding's one
    collision. Under that cap the integer images produced by
    :meth:`encode_range` and :meth:`encode_prefix` are *exact*: every
    storable key inside the string range maps into the integer range and
    nothing else does. Query endpoints (unlike stored keys) may be
    arbitrarily long; an over-long endpoint resolves to the exact
    boundary of the storable keys it admits, which is how a range like
    ``("app", "applesauce!")`` keeps an exact image in a 5-byte space.

    The codec is recorded in the engine manifest (:meth:`to_params` /
    :meth:`from_params`), so a reopened engine decodes its keys without
    the caller re-supplying the width.
    """

    def __init__(self, width: int = 8) -> None:
        width = int(width)
        if not 1 <= width <= 8:
            raise InvalidParameterError(
                f"codec width must be 1..8 bytes (engine keys are u64), got {width}"
            )
        self._width = width
        self._universe = 1 << (8 * width)

    @property
    def width(self) -> int:
        """Maximum stored-key length in bytes."""
        return self._width

    @property
    def universe(self) -> int:
        """Exclusive bound of the integer key space: ``2^(8*width)``."""
        return self._universe

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def encode_key(self, key: str | bytes) -> int:
        """Integer image of a storable key (raises if over-width)."""
        return encode_string(key, self._width)

    def decode_key(self, value: int) -> bytes:
        """Canonical (trailing-NUL-stripped) key for an integer image."""
        return decode_string(value, self._width)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def encode_range(
        self, lo: str | bytes, hi: str | bytes
    ) -> Optional[Tuple[int, int]]:
        """Exact integer image of the string range ``[lo, hi]``.

        Returns ``None`` when no storable key can lie in the range (it
        collapsed under the width cap), and raises
        :class:`~repro.errors.InvalidQueryError` when the string range
        itself is inverted — mirroring the integer API's contract.
        """
        lo_raw, hi_raw = _as_bytes(lo), _as_bytes(hi)
        if lo_raw > hi_raw:
            raise InvalidQueryError("string query range is inverted")
        if len(lo_raw) > self._width:
            # No storable key equals an over-width endpoint, and a
            # storable key exceeds it iff it encodes strictly above the
            # endpoint's truncation.
            lo_int = encode_string(lo_raw[: self._width], self._width) + 1
            if lo_int >= self._universe:
                return None
        else:
            lo_int = encode_string(lo_raw, self._width)
            if lo_raw.rstrip(b"\x00") != lo_raw:
                # ``lo`` has trailing NULs: its integer image is shared
                # with the stripped *canonical* key, which sorts strictly
                # below ``lo`` in bytes order and must stay excluded.
                lo_int += 1
                if lo_int >= self._universe:
                    return None
        if len(hi_raw) > self._width:
            # Storable keys at or below an over-width endpoint are
            # exactly those encoding at or below its truncation.
            hi_int = encode_string(hi_raw[: self._width], self._width)
        else:
            hi_int = encode_string(hi_raw, self._width)
        if lo_int > hi_int:
            return None
        return lo_int, hi_int

    def encode_prefix(self, prefix: str | bytes) -> Optional[Tuple[int, int]]:
        """Exact integer image of "every storable key starting with
        ``prefix``", or ``None`` when the prefix itself is over-width
        (no storable key can extend it)."""
        raw = _as_bytes(prefix)
        if len(raw) > self._width:
            return None
        lo = encode_string(raw, self._width)
        hi = lo | ((1 << (8 * (self._width - len(raw)))) - 1)
        return lo, hi

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------
    def to_params(self) -> dict:
        return {"width": self._width}

    @classmethod
    def from_params(cls, params: dict) -> "StringKeyCodec":
        return cls(width=int(params["width"]))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringKeyCodec) and other._width == self._width

    def __hash__(self) -> int:
        return hash((StringKeyCodec, self._width))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringKeyCodec(width={self._width})"
