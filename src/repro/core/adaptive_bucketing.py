"""Workload-aware Bucketing (paper §7, future work — engineered here).

The paper closes by suggesting that Bucketing "could be made
workload-aware (e.g. by creating larger buckets for key ranges that are
queried less frequently)". This module implements that idea:

* the universe is split into a fixed number of coarse *regions*;
* a sample of the query workload is histogrammed over the regions;
* the per-key space budget is distributed across regions proportionally
  to their sampled query frequency (hot regions get finer buckets, cold
  regions coarser ones, with a floor so no region is unfiltered);
* each region keeps its own Elias-Fano-encoded bucket occupancy, and a
  query checks exactly the regions it overlaps.

Like plain Bucketing this is a heuristic — no distribution-free FPR
bound — but on skewed workloads it converts the same space into a lower
observed FPR (see ``bench_ablation.py``'s workload-aware study).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bucketing import Bucketing
from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array

Query = Tuple[int, int]


class WorkloadAwareBucketing(RangeFilter):
    """Bucketing with per-region bucket sizes driven by a query sample.

    Parameters
    ----------
    keys / universe:
        Key set and universe.
    bits_per_key:
        Global space budget, redistributed over regions.
    sample_queries:
        Sample of ``(lo, hi)`` ranges; regions overlapping more sampled
        queries receive a larger share of the budget.
    num_regions:
        Number of equal-width universe regions (a power of two keeps the
        region arithmetic shift-based).
    cold_floor:
        Minimum budget share (relative to a uniform split) a region with
        zero sampled queries still receives.
    """

    name = "Bucketing-WA"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        bits_per_key: float,
        sample_queries: Iterable[Query],
        num_regions: int = 64,
        cold_floor: float = 0.25,
    ) -> None:
        super().__init__(universe)
        if bits_per_key <= 0:
            raise InvalidParameterError("bits_per_key must be positive")
        if num_regions < 1:
            raise InvalidParameterError("num_regions must be >= 1")
        if not 0 < cold_floor <= 1:
            raise InvalidParameterError("cold_floor must be in (0, 1]")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        self._num_regions = int(num_regions)
        self._region_width = (universe + num_regions - 1) // num_regions
        weights = self._sample_weights(list(sample_queries), cold_floor)
        self._regions: List[Optional[Bucketing]] = []
        total_budget = bits_per_key * max(1, self._n)
        for region in range(self._num_regions):
            lo = region * self._region_width
            hi = min(universe, lo + self._region_width)
            mask = (arr >= lo) & (arr < hi)
            region_keys = (arr[mask] - np.uint64(lo)) if self._n else arr
            if region_keys.size == 0:
                self._regions.append(None)
                continue
            region_budget = total_budget * weights[region]
            region_bpk = max(1.0, region_budget / region_keys.size)
            self._regions.append(
                Bucketing(region_keys, self._region_width, bits_per_key=region_bpk)
            )

    def _sample_weights(self, sample: List[Query], cold_floor: float) -> np.ndarray:
        """Per-region budget shares from the query histogram."""
        counts = np.zeros(self._num_regions, dtype=np.float64)
        for lo, hi in sample:
            first = min(self._num_regions - 1, lo // self._region_width)
            last = min(self._num_regions - 1, hi // self._region_width)
            counts[first:last + 1] += 1.0
        uniform_share = 1.0 / self._num_regions
        if counts.sum() == 0:
            return np.full(self._num_regions, uniform_share)
        weights = counts / counts.sum()
        weights = np.maximum(weights, cold_floor * uniform_share)
        return weights / weights.sum()

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def num_regions(self) -> int:
        return self._num_regions

    @property
    def size_in_bits(self) -> int:
        return sum(r.size_in_bits for r in self._regions if r is not None)

    def region_bucket_sizes(self) -> List[Optional[int]]:
        """Per-region coarseness (None for key-free regions) — for tests
        and for inspecting what the workload adaptation chose."""
        return [r.bucket_size if r is not None else None for r in self._regions]

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        first = min(self._num_regions - 1, lo // self._region_width)
        last = min(self._num_regions - 1, hi // self._region_width)
        for region in range(first, last + 1):
            filt = self._regions[region]
            if filt is None:
                continue
            base = region * self._region_width
            region_lo = max(lo - base, 0)
            region_hi = min(hi - base, self._region_width - 1)
            if region_lo <= region_hi and filt.may_contain_range(region_lo, region_hi):
                return True
        return False
