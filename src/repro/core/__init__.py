"""The paper's contributions: Grafite (§3) and Bucketing (§4).

This subpackage also hosts the hash-function layer both share and the
string-key extension sketched in the paper's §7.
"""

from repro.core.adaptive_bucketing import WorkloadAwareBucketing
from repro.core.bucketing import Bucketing
from repro.core.dynamic import DynamicGrafite
from repro.core.grafite import Grafite, eps_from_bits_per_key, hashed_query_intervals
from repro.core.hybrid import HybridGrafiteBucketing
from repro.core.hashing import (
    LocalityPreservingHash,
    PairwiseIndependentHash,
    PowerOfTwoLocalityHash,
)
from repro.core.serialization import (
    bucketing_from_bytes,
    bucketing_to_bytes,
    grafite_from_bytes,
    grafite_to_bytes,
)
from repro.core.strings import (
    StringGrafite,
    StringKeyCodec,
    decode_string,
    encode_endpoint,
    encode_string,
)

__all__ = [
    "Bucketing",
    "DynamicGrafite",
    "Grafite",
    "HybridGrafiteBucketing",
    "LocalityPreservingHash",
    "PairwiseIndependentHash",
    "PowerOfTwoLocalityHash",
    "StringGrafite",
    "StringKeyCodec",
    "WorkloadAwareBucketing",
    "bucketing_from_bytes",
    "bucketing_to_bytes",
    "decode_string",
    "encode_endpoint",
    "encode_string",
    "eps_from_bits_per_key",
    "grafite_from_bytes",
    "grafite_to_bytes",
    "hashed_query_intervals",
]
