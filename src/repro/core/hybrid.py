"""Bucketing–Grafite hybrid (paper §7: Bucketing "combined with Grafite").

The combination the paper sketches as future work: a coarse Bucketing
stage answers the easy negatives in one cheap predecessor query, and only
its "maybe" answers fall through to a Grafite stage whose
distribution-free bound caps the damage on hard (correlated or
adversarial) queries.

Both stages are conservative (no false negatives), so intersecting their
positives is sound: the hybrid answers "not empty" only when *both*
agree. Its FPR is therefore at most ``min`` of the stages' FPRs on any
workload — uncorrelated workloads enjoy Bucketing-grade filtering below
Grafite's eps, while correlated ones keep Corollary 3.5 intact.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array


class HybridGrafiteBucketing(RangeFilter):
    """Two-stage filter: Bucketing front, Grafite back.

    Parameters
    ----------
    keys / universe:
        Key set and universe.
    bits_per_key:
        Total budget, split between the stages by ``bucketing_share``.
    max_range_size / seed:
        Forwarded to the Grafite stage.
    bucketing_share:
        Fraction of the budget spent on the Bucketing stage (the rest
        funds Grafite). The default quarter keeps Grafite's bound within
        ~0.4 bits/key of a pure Grafite at the same total budget.
    """

    name = "Grafite+Bucketing"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int = 2**64,
        *,
        bits_per_key: float,
        max_range_size: int = 32,
        bucketing_share: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(universe)
        if bits_per_key <= 2:
            raise InvalidParameterError("bits_per_key must exceed 2")
        if not 0 < bucketing_share < 1:
            raise InvalidParameterError("bucketing_share must be in (0, 1)")
        arr = as_key_array(keys, universe)
        self._n = len(arr)
        bucket_budget = bits_per_key * bucketing_share
        grafite_budget = bits_per_key - bucket_budget
        self._bucketing = Bucketing(arr, universe, bits_per_key=max(0.5, bucket_budget))
        self._grafite = Grafite(
            arr, universe,
            bits_per_key=max(2.5, grafite_budget),
            max_range_size=max_range_size, seed=seed,
        )

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._bucketing.size_in_bits + self._grafite.size_in_bits

    @property
    def stages(self) -> tuple[Bucketing, Grafite]:
        """The underlying (bucketing, grafite) pair, for inspection."""
        return self._bucketing, self._grafite

    def fpr_bound(self, range_size: int) -> float:
        """The distribution-free bound inherited from the Grafite stage."""
        return self._grafite.fpr_bound(range_size)

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        # Short-circuit: most empty uncorrelated queries die here.
        if not self._bucketing.may_contain_range(lo, hi):
            return False
        return self._grafite.may_contain_range(lo, hi)
