"""Dynamic Grafite: insert support via the logarithmic method (paper §7).

Supporting insertions is one of the open problems the paper leaves
("dynamic Elias-Fano representations could help [33]"). This module
engineers the classic *logarithmic method* answer on top of the static
structure:

* the locality-preserving hash — and therefore the reduced universe
  ``r`` — is fixed up front from a declared ``capacity`` (the FPR bound
  ``n * ell / r`` then holds for the *actual* number of keys ``n``, so
  it is better than the design eps until capacity is reached and
  degrades gracefully, linearly in ``n``, beyond it);
* incoming hash codes accumulate in a small sorted buffer;
* on overflow the buffer is flushed into level 0; level ``i`` holds
  either nothing or a static Elias-Fano run of ``~2^i * buffer`` codes,
  and equal-size runs merge upward like an LSM tree — O(log(n)/buffer)
  Elias-Fano runs at any time, amortised O(log n) work per insert;
* a query maps the range to hashed intervals once (shared helper with
  the static filter) and probes every run, plus the buffer.

Because all runs share one hash function, merging is a plain sorted
merge of code sequences — no access to the original keys is ever needed,
so the dynamic filter keeps the same per-key space as the static one up
to the (geometrically vanishing) duplication across levels.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

import numpy as np

from repro.core.grafite import eps_from_bits_per_key, hashed_query_intervals
from repro.core.hashing import LocalityPreservingHash
from repro.errors import InvalidKeyError, InvalidParameterError
from repro.succinct.elias_fano import EliasFano


class DynamicGrafite:
    """A Grafite range filter that supports insertions.

    Parameters
    ----------
    capacity:
        The number of distinct keys the filter is provisioned for; fixes
        ``r = capacity * L / eps``. Inserting beyond capacity keeps
        working but the FPR bound scales as ``n/capacity * eps``.
    universe / eps / max_range_size / bits_per_key / seed:
        As in :class:`~repro.core.grafite.Grafite`.
    buffer_size:
        Number of codes held unsorted-cost-free before a flush; also the
        size unit of level 0.
    """

    name = "DynamicGrafite"

    def __init__(
        self,
        capacity: int,
        universe: int = 2**64,
        *,
        eps: Optional[float] = None,
        max_range_size: int = 32,
        bits_per_key: Optional[float] = None,
        buffer_size: int = 256,
        seed: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        if universe <= 1:
            raise InvalidParameterError(f"universe must be > 1, got {universe}")
        if buffer_size < 1:
            raise InvalidParameterError(f"buffer_size must be >= 1, got {buffer_size}")
        if max_range_size < 1:
            raise InvalidParameterError(f"max_range_size must be >= 1, got {max_range_size}")
        if (eps is None) == (bits_per_key is None):
            raise InvalidParameterError("pass exactly one of eps or bits_per_key")
        if bits_per_key is not None:
            eps = eps_from_bits_per_key(bits_per_key, max_range_size)
        if eps <= 0:
            raise InvalidParameterError(f"eps must be positive, got {eps}")
        self._universe = int(universe)
        self._capacity = int(capacity)
        self._L = int(max_range_size)
        self._eps = float(eps)
        r = max(2, int(self._capacity * self._L / self._eps))
        self._r = min(r, self._universe)
        self._hash = LocalityPreservingHash(self._r, domain=self._universe, seed=seed)
        self._buffer: List[int] = []  # sorted hash codes
        self._buffer_limit = int(buffer_size)
        self._runs: List[Optional[EliasFano]] = []  # level i: run of ~2^i units
        self._n = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        return self._universe

    @property
    def key_count(self) -> int:
        """Number of inserted keys (duplicates counted once per insert)."""
        return self._n

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def reduced_universe(self) -> int:
        return self._r

    @property
    def run_count(self) -> int:
        """Live Elias-Fano runs (bounded by log2(n / buffer_size) + 1)."""
        return sum(1 for run in self._runs if run is not None)

    @property
    def size_in_bits(self) -> int:
        total = sum(run.size_in_bits for run in self._runs if run is not None)
        return total + len(self._buffer) * 64  # buffer counted at word width

    @property
    def bits_per_key(self) -> float:
        return self.size_in_bits / self._n if self._n else 0.0

    def fpr_bound(self, range_size: int) -> float:
        """``min(1, n * ell / r)`` — exact for the current fill level."""
        if self._n == 0 or self._r >= self._universe:
            return 0.0
        return min(1.0, self._n * range_size / self._r)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Insert one key (amortised O(log n) code-merge work)."""
        key = int(key)
        if not 0 <= key < self._universe:
            raise InvalidKeyError(f"key {key} outside universe [0, {self._universe})")
        bisect.insort(self._buffer, self._hash(key))
        self._n += 1
        if len(self._buffer) >= self._buffer_limit:
            self._flush_buffer()

    def insert_many(self, keys: Sequence[int] | np.ndarray) -> None:
        """Bulk insert (hashes vectorised, then one flush per buffer fill)."""
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size == 0:
            return
        if arr.size and int(arr.max()) >= self._universe:
            raise InvalidKeyError("key outside the declared universe")
        codes = np.sort(self._hash.hash_many(arr))
        merged = np.union1d(np.asarray(self._buffer, dtype=np.uint64), codes)
        self._buffer = [int(c) for c in merged]
        self._n += int(arr.size)
        if len(self._buffer) >= self._buffer_limit:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        codes = np.asarray(self._buffer, dtype=np.uint64)
        self._buffer = []
        self._push_run(codes, level=0)

    def _push_run(self, codes: np.ndarray, level: int) -> None:
        """LSM-style carry: merge equal-level runs until a slot is free."""
        while True:
            if level >= len(self._runs):
                self._runs.extend([None] * (level + 1 - len(self._runs)))
            slot = self._runs[level]
            if slot is None:
                self._runs[level] = EliasFano(codes, universe=self._r)
                return
            existing = np.fromiter(iter(slot), dtype=np.uint64, count=len(slot))
            codes = np.union1d(existing, codes)
            self._runs[level] = None
            level += 1

    def compact(self) -> None:
        """Merge everything (buffer included) into one run — FPR-neutral,
        removes the per-run query overhead after a burst of inserts."""
        pieces = [np.asarray(self._buffer, dtype=np.uint64)]
        for run in self._runs:
            if run is not None:
                pieces.append(np.fromiter(iter(run), dtype=np.uint64, count=len(run)))
        self._buffer = []
        self._runs = []
        merged = np.unique(np.concatenate(pieces)) if pieces else np.zeros(0, np.uint64)
        if merged.size:
            self._runs = [None] * max(1, (int(merged.size).bit_length()))
            self._runs[-1] = EliasFano(merged, universe=self._r)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def may_contain_range(self, lo: int, hi: int) -> bool:
        """No false negatives; FPR at most ``n * (hi-lo+1) / r``."""
        if lo > hi:
            raise InvalidKeyError(f"query range has lo={lo} > hi={hi}")
        if lo < 0 or hi >= self._universe:
            raise InvalidKeyError(
                f"query range [{lo}, {hi}] outside universe [0, {self._universe})"
            )
        if self._n == 0:
            return False
        if hi - lo + 1 >= self._r:
            return True
        for c, d in hashed_query_intervals(self._hash, self._r, lo, hi):
            idx = bisect.bisect_left(self._buffer, c)
            if idx < len(self._buffer) and self._buffer[idx] <= d:
                return True
            for run in self._runs:
                if run is not None and run.contains_in_range(c, d):
                    return True
        return False

    def may_contain(self, key: int) -> bool:
        return self.may_contain_range(key, key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGrafite(n={self._n}, capacity={self._capacity}, "
            f"runs={self.run_count}, r={self._r})"
        )
