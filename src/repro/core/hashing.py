"""Hash functions used by Grafite (paper §3 and §7).

Two layers:

* :class:`PairwiseIndependentHash` — the classic Wegman-Carter family
  ``q(x) = ((c1 * x + c2) mod p) mod r`` with a prime ``p`` larger than
  both the domain and the codomain, giving (almost) pairwise independence;
* :class:`LocalityPreservingHash` — equation (1) of the paper,
  ``h(x) = (q(floor(x / r)) + x) mod r``, which hashes the *block* of a
  key and then shifts by the key itself, so keys in the same block of
  size ``r`` keep their relative distances. This is the property that
  makes range emptiness reducible to predecessor search on hash codes,
  with collision probability ``<= 1/r`` for distinct points (Lemma 3.1).

Scalar evaluation uses unbounded Python integers: the universe is up to
``2^64`` and ``c1 * x`` routinely exceeds 64 bits, which would silently
wrap in numpy. Batch evaluation (:meth:`PairwiseIndependentHash.hash_many`)
is vectorised wherever the modulus allows exact 64-bit arithmetic — plain
``uint64`` math when ``p = 2^31 - 1`` and a limb-split Mersenne reduction
when ``p = 2^61 - 1``, which together cover every block hash arising from
a 64-bit universe at practical filter parameters. Only the huge-prime
cases (string universes beyond ``2^64``) fall back to the per-element
Python loop. This matters because the columnar batch pipeline evaluates
one block hash per *distinct query block*: under uniform workloads that
is one evaluation per query, so a Python fallback there would put a
per-query interpreter loop back into the hot path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError

#: Candidate Mersenne primes for the modulus, in increasing order. The
#: family needs ``p`` greater than the domain size; 2^127 - 1 covers any
#: block index arising from a 64-bit universe (and 128-bit string spaces).
_MERSENNE_PRIMES = (
    2**31 - 1,
    2**61 - 1,
    2**89 - 1,
    2**107 - 1,
    2**127 - 1,
    2**521 - 1,
)


def choose_prime(minimum: int) -> int:
    """Return the smallest candidate Mersenne prime strictly above ``minimum``."""
    for p in _MERSENNE_PRIMES:
        if p > minimum:
            return p
    raise InvalidParameterError(f"no candidate prime above {minimum}")


_M61 = np.uint64((1 << 61) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)


def _mulmod_m61(a: int, b: np.ndarray) -> np.ndarray:
    """Vectorised ``(a * b) mod (2^61 - 1)`` for ``a, b < 2^61``.

    Splits both operands into 32-bit limbs so every partial product fits
    a ``uint64``, then folds the power-of-two weights through the
    Mersenne identity ``2^61 ≡ 1``:

    ``a*b = hh*2^64 + mid*2^32 + ll`` with ``hh < 2^58``, ``mid < 2^62``,
    ``ll < 2^64``; ``2^64 ≡ 8`` and ``mid*2^32 ≡ (mid >> 29) +
    ((mid & (2^29-1)) << 32)``, each term below ``2^61``-ish, so the sum
    stays below ``2^63`` and one exact ``% p`` finishes the reduction.
    """
    a_hi = np.uint64(a >> 32)
    a_lo = np.uint64(a & 0xFFFFFFFF)
    b_hi = b >> np.uint64(32)
    b_lo = b & _MASK32
    hh = a_hi * b_hi
    mid = a_hi * b_lo + a_lo * b_hi
    ll = b_lo * a_lo
    term_hh = hh * np.uint64(8)  # hh < 2^58, so the product stays below 2^61
    term_mid = (mid >> np.uint64(29)) + ((mid & _MASK29) << np.uint64(32))
    term_ll = (ll & _M61) + (ll >> np.uint64(61))
    return (term_hh + term_mid + term_ll) % _M61


class PairwiseIndependentHash:
    """``q(x) = ((c1 * x + c2) mod p) mod r`` with random ``c1 != 0, c2``.

    Parameters
    ----------
    codomain:
        The size ``r`` of the output range ``[0, r)``.
    domain:
        Exclusive upper bound of inputs; used only to pick ``p`` large
        enough for the pairwise-independence argument.
    seed:
        Seeds the draw of ``(c1, c2)``; constructions are reproducible.
    """

    __slots__ = ("_r", "_p", "_c1", "_c2")

    def __init__(self, codomain: int, domain: int = 2**64, seed: Optional[int] = None) -> None:
        if codomain <= 0:
            raise InvalidParameterError(f"codomain must be positive, got {codomain}")
        if domain <= 0:
            raise InvalidParameterError(f"domain must be positive, got {domain}")
        self._r = int(codomain)
        self._p = choose_prime(max(self._r, domain))
        rng = np.random.default_rng(seed)
        # Draw below 2^63 chunks and join, so c1/c2 span the whole [0, p).
        def draw_mod_p() -> int:
            value = 0
            for _ in range(0, self._p.bit_length(), 63):
                value = (value << 63) | int(rng.integers(0, 2**63))
            return value % self._p

        self._c1 = 1 + draw_mod_p() % (self._p - 1)  # never 0
        self._c2 = draw_mod_p()

    @property
    def codomain(self) -> int:
        return self._r

    @property
    def parameters(self) -> tuple[int, int, int]:
        """``(p, c1, c2)`` — exposed for tests and serialisation."""
        return self._p, self._c1, self._c2

    def __call__(self, x: int) -> int:
        return ((self._c1 * int(x) + self._c2) % self._p) % self._r

    def hash_many(self, xs: np.ndarray | Sequence[int]) -> np.ndarray:
        """Vectorised ``q`` over a column of inputs (< domain each).

        Exact for every modulus: ``p = 2^31 - 1`` fits plain ``uint64``
        arithmetic (``c1 * x + c2 < 2^62``), ``p = 2^61 - 1`` goes through
        the limb-split Mersenne reduction, and larger primes (only
        reachable from beyond-64-bit string universes) fall back to the
        per-element Python evaluation.
        """
        xs = np.asarray(xs, dtype=np.uint64)
        if xs.size == 0:
            return np.zeros(0, dtype=np.uint64)
        r = np.uint64(self._r)
        if self._p <= 2**31 - 1:
            out = (np.uint64(self._c1) * xs + np.uint64(self._c2)) % np.uint64(self._p)
            return out % r
        if self._p == 2**61 - 1:
            out = (_mulmod_m61(self._c1, xs) + np.uint64(self._c2)) % _M61
            return out % r
        return np.fromiter(
            (self(int(x)) for x in xs), dtype=np.uint64, count=xs.size
        )


class LocalityPreservingHash:
    """Equation (1): ``h(x) = (q(floor(x / r)) + x) mod r``.

    Within a block of ``r`` consecutive universe values, ``h`` is a cyclic
    shift — it preserves distances modulo ``r``. Distinct points collide
    with probability at most ``1/r`` over the draw of ``q`` ([18, Lemma
    3.1]), which is what drives Grafite's FPR bound.
    """

    __slots__ = ("_r", "_q")

    def __init__(self, reduced_universe: int, domain: int = 2**64, seed: Optional[int] = None) -> None:
        if reduced_universe <= 0:
            raise InvalidParameterError(
                f"reduced universe must be positive, got {reduced_universe}"
            )
        self._r = int(reduced_universe)
        block_count = domain // self._r + 1
        self._q = PairwiseIndependentHash(self._r, domain=block_count, seed=seed)

    @property
    def reduced_universe(self) -> int:
        return self._r

    @property
    def block_hash(self) -> PairwiseIndependentHash:
        return self._q

    def __call__(self, x: int) -> int:
        x = int(x)
        return (self._q(x // self._r) + x) % self._r

    def hash_block(self, block: int) -> int:
        """The per-block offset ``q(block)`` (each block is a cyclic shift)."""
        return self._q(block)

    def hash_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hash_block` over a column of block indices."""
        return self._q.hash_many(blocks)

    def hash_many(self, keys: Sequence[int] | np.ndarray | Iterable[int]) -> np.ndarray:
        """Hash a batch of keys; returns an (unsorted) ``uint64`` array.

        Keys in the same block share one evaluation of ``q``, so the batch
        cost is one modular multiply per *distinct block* plus O(1) per key.
        """
        r = self._r
        if isinstance(keys, np.ndarray) and keys.dtype == np.uint64 and keys.size:
            # Vectorised path: valid whenever offset + key cannot wrap the
            # 64-bit modulus (offsets are < r). q() itself is vectorised,
            # once per distinct block; everything else is numpy arithmetic.
            if r < 2**63 and int(keys.max()) <= 2**64 - 1 - r:
                blocks, inverse = np.unique(keys // np.uint64(r), return_inverse=True)
                offsets = self._q.hash_many(blocks)
                return (offsets[inverse] + keys) % np.uint64(r)
        values = keys.tolist() if isinstance(keys, np.ndarray) else [int(x) for x in keys]
        if not values:
            return np.zeros(0, dtype=np.uint64)
        blocks = [x // r for x in values]
        offsets = {b: self._q(b) for b in set(blocks)}
        codes = [(offsets[b] + x) % r for b, x in zip(blocks, values)]
        return np.asarray(codes, dtype=np.uint64)


class PowerOfTwoLocalityHash:
    """The §7 string-friendly variant: ``h(x) = (q(x >> k) + x) & (r - 1)``.

    Requires ``r = 2^k``; the floor-division and modulo of equation (1)
    become a shift and a mask, which is the form the paper suggests for
    extending Grafite to string keys.
    """

    __slots__ = ("_r", "_k", "_q")

    def __init__(self, log2_reduced_universe: int, domain: int = 2**64, seed: Optional[int] = None) -> None:
        if log2_reduced_universe < 0:
            raise InvalidParameterError("log2 of the reduced universe must be >= 0")
        self._k = int(log2_reduced_universe)
        self._r = 1 << self._k
        block_count = (domain >> self._k) + 1
        self._q = PairwiseIndependentHash(self._r, domain=block_count, seed=seed)

    @property
    def reduced_universe(self) -> int:
        return self._r

    def __call__(self, x: int) -> int:
        x = int(x)
        return (self._q(x >> self._k) + x) & (self._r - 1)

    def hash_block(self, block: int) -> int:
        return self._q(block)

    def hash_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hash_block` over a column of block indices."""
        return self._q.hash_many(blocks)

    def hash_many(self, keys: Sequence[int] | Iterable[int]) -> np.ndarray:
        keys = [int(x) for x in keys]
        offsets = {b: self._q(b) for b in {x >> self._k for x in keys}}
        mask = self._r - 1
        return np.asarray(
            [(offsets[x >> self._k] + x) & mask for x in keys], dtype=np.uint64
        )
