"""Grafite — the paper's optimal range filter (§3).

Construction (Algorithm 1):

1. pick the reduced universe ``r = n * L / eps`` and the
   locality-preserving hash ``h`` of equation (1);
2. hash every key, sort and deduplicate the codes;
3. store the codes in an Elias-Fano sequence.

Query (Algorithm 2 plus Footnote 2): a range ``[a, b]`` maps to one or two
hashed intervals; each is checked with a single ``predecessor`` on the
Elias-Fano sequence (conditions (2) of the paper).

Guarantees reproduced here (Theorem 3.4 / Corollary 3.5):

* no false negatives, for any data and any query;
* false positive probability ``<= eps`` for ranges of size ``L`` and
  ``<= ell * eps / L`` for ranges of size ``ell <= L``, *regardless of the
  input and query distribution*;
* space ``n log2(L/eps) + 2n + o(n)`` bits;
* query time ``O(log(L/eps))`` — independent of ``n`` and ``u``.

When the requested ``r`` reaches the original universe size the filter
silently switches to *exact mode*: it Elias-Fano-encodes the keys
themselves and never errs (the paper's remark after Theorem 2.1 — beyond
that point one should just store ``S`` in ``log2(u/n) + 2`` bits per key).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.hashing import LocalityPreservingHash, PowerOfTwoLocalityHash
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.filters.base import RangeFilter, as_key_array
from repro.succinct.elias_fano import EliasFano


def hashed_query_intervals(
    hasher, r: int, lo: int, hi: int
) -> Tuple[Tuple[int, int], ...]:
    """Map a universe range ``[lo, hi]`` (with ``hi - lo + 1 < r``) to the
    hashed intervals of the reduced universe ``[r]`` it occupies.

    Combines the block-boundary split of Footnote 2 with the wrap-around
    case of conditions (2): the result is one to four plain intervals
    ``(c, d)`` with ``c <= d``; the range is non-empty iff some stored
    code falls in one of them. Shared by the static filter
    (:class:`Grafite`) and the dynamic one
    (:class:`~repro.core.dynamic.DynamicGrafite`).
    """
    if lo // r == hi // r:
        segments = ((lo, hi),)
    else:
        boundary = hi - (hi % r)
        segments = ((lo, boundary - 1), (boundary, hi))
    intervals = []
    for seg_lo, seg_hi in segments:
        offset = hasher.hash_block(seg_lo // r)
        h_lo = (offset + seg_lo) % r
        h_hi = (offset + seg_hi) % r
        if h_lo <= h_hi:
            intervals.append((h_lo, h_hi))
        else:  # hashed image wraps around the reduced universe
            intervals.append((h_lo, r - 1))
            intervals.append((0, h_hi))
    return tuple(intervals)


def eps_from_bits_per_key(bits_per_key: float, max_range_size: int) -> float:
    """Invert the space bound: a budget of ``B`` bits/key buys ``eps = L / 2^(B-2)``.

    This is the derivation right before Corollary 3.5.
    """
    if bits_per_key <= 2:
        raise InvalidParameterError(
            f"Grafite needs more than 2 bits per key, got {bits_per_key}"
        )
    return max_range_size / 2.0 ** (bits_per_key - 2)


class Grafite(RangeFilter):
    """The Grafite range filter.

    Parameters
    ----------
    keys:
        Input keys (any order, duplicates allowed) in ``[0, universe)``.
    universe:
        Exclusive key-universe bound ``u``; defaults to ``2^64``.
    eps:
        Target false positive probability for ranges of size
        ``max_range_size``. Mutually exclusive with ``bits_per_key``.
    max_range_size:
        The design range size ``L``. Queries of any size remain valid;
        sizes ``ell <= L`` enjoy FPR ``<= ell*eps/L``, larger sizes degrade
        proportionally (see the discussion after Theorem 3.4).
    bits_per_key:
        Space budget ``B``; sets ``eps = L / 2^(B-2)``. Mutually exclusive
        with ``eps``.
    seed:
        Seeds the hash draw; constructions are reproducible.
    power_of_two_universe:
        Round ``r`` up to a power of two and use the shift/mask hash of §7
        (the string-key extension builds on this).
    """

    name = "Grafite"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int = 2**64,
        *,
        eps: Optional[float] = None,
        max_range_size: int = 32,
        bits_per_key: Optional[float] = None,
        seed: Optional[int] = None,
        power_of_two_universe: bool = False,
    ) -> None:
        super().__init__(universe)
        if max_range_size < 1:
            raise InvalidParameterError(f"max_range_size must be >= 1, got {max_range_size}")
        if (eps is None) == (bits_per_key is None):
            raise InvalidParameterError("pass exactly one of eps or bits_per_key")
        if bits_per_key is not None:
            eps = eps_from_bits_per_key(bits_per_key, max_range_size)
        assert eps is not None
        if not 0 < eps:
            raise InvalidParameterError(f"eps must be positive, got {eps}")
        self._L = int(max_range_size)
        self._eps = float(eps)

        arr = as_key_array(keys, universe)
        self._n = len(arr)
        if self._n == 0:
            self._r = 1
            self._exact = False
            self._hash = None
            self._ef = EliasFano([], universe=1)
            return

        r = math.ceil(self._n * self._L / self._eps)
        if power_of_two_universe and r > 1:
            r = 1 << (r - 1).bit_length()
        if r >= universe:
            if universe > 2**64:
                raise InvalidParameterError(
                    "eps too small for a big-integer universe: the exact-mode "
                    "fallback requires a universe of at most 2^64"
                )
            # Exact mode: EF on the raw keys solves the problem with eps=0.
            self._r = universe
            self._exact = True
            self._hash = None
            self._ef = EliasFano(arr, universe=universe)
            return

        self._r = r
        self._exact = False
        if power_of_two_universe:
            self._hash = PowerOfTwoLocalityHash(
                (r - 1).bit_length() if r > 1 else 0, domain=universe, seed=seed
            )
        else:
            self._hash = LocalityPreservingHash(r, domain=universe, seed=seed)
        codes = np.unique(self._hash.hash_many(arr))
        self._ef = EliasFano(codes, universe=r)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def reduced_universe(self) -> int:
        """The hashed universe size ``r = n*L/eps`` (``u`` in exact mode)."""
        return self._r

    @property
    def is_exact(self) -> bool:
        """True when the filter stores the key set losslessly (FPR 0)."""
        return self._exact

    @property
    def eps(self) -> float:
        """The design false-positive probability for ranges of size ``L``."""
        return self._eps

    @property
    def max_range_size(self) -> int:
        return self._L

    @property
    def size_in_bits(self) -> int:
        return self._ef.size_in_bits

    def fpr_bound(self, range_size: int) -> float:
        """Theorem 3.4's bound for a query range of ``range_size`` points."""
        if self._exact or self._n == 0:
            return 0.0
        return min(1.0, self._n * range_size / self._r)

    # ------------------------------------------------------------------
    # Query (Algorithm 2 + Footnote 2)
    # ------------------------------------------------------------------
    def _segments(self, lo: int, hi: int) -> Tuple[Tuple[int, int], ...]:
        """Split ``[lo, hi]`` at the block boundary it may cross.

        With ``hi - lo + 1 < r`` the range spans at most two blocks of the
        reduced universe; Footnote 2 splits it into ``[lo, b'-1]`` and
        ``[b', hi]`` with ``b' = hi - (hi mod r)``.
        """
        r = self._r
        if lo // r == hi // r:
            return ((lo, hi),)
        boundary = hi - (hi % r)
        return ((lo, boundary - 1), (boundary, hi))

    def _segment_not_empty(self, lo: int, hi: int) -> bool:
        """Conditions (2) for a segment that lies inside one block."""
        assert self._hash is not None
        offset = self._hash.hash_block(lo // self._r)
        h_lo = (offset + lo) % self._r
        h_hi = (offset + hi) % self._r
        if h_lo <= h_hi:
            return self._ef.contains_in_range(h_lo, h_hi)
        # The hashed interval wraps around the reduced universe.
        first, last = self._ef.first, self._ef.last
        assert first is not None and last is not None
        return first <= h_hi or last >= h_lo

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        if self._exact:
            return self._ef.contains_in_range(lo, hi)
        if hi - lo + 1 >= self._r:
            # The hashed image of the range covers all of [r]; any stored
            # code is a hit. (FPR bound is 1 here anyway.)
            return True
        return any(self._segment_not_empty(s, e) for s, e in self._segments(lo, hi))

    def may_contain_range_batch(
        self, los: Sequence[int] | np.ndarray, his: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorised Algorithm 2 over a batch of query ranges.

        The whole pipeline runs in numpy: the block-boundary split of
        Footnote 2 produces up to two segments per query, segments are
        hashed with one modular evaluation of ``q`` per *distinct block*
        (as in :meth:`LocalityPreservingHash.hash_many`), wrap-arounds
        become two plain intervals, and all resulting intervals go
        through one vectorised Elias-Fano predecessor
        (:meth:`EliasFano.contains_in_range_batch`). Results are OR-ed
        back per query, so the output matches the scalar
        :meth:`may_contain_range` bit for bit.
        """
        # Big-integer universes (string extension) exceed uint64: take the
        # scalar loop, which handles unbounded Python ints.
        if self._universe > 2**64:
            return super().may_contain_range_batch(los, his)
        los_arr = np.asarray(los, dtype=np.uint64)
        his_arr = np.asarray(his, dtype=np.uint64)
        if los_arr.shape != his_arr.shape or los_arr.ndim != 1:
            raise InvalidQueryError(
                "batch queries need equal-length one-dimensional lo/hi arrays"
            )
        if los_arr.size == 0:
            return np.zeros(0, dtype=bool)
        if bool((los_arr > his_arr).any()):
            raise InvalidQueryError("batch query with lo > hi")
        if int(his_arr.max()) >= self._universe:
            raise InvalidQueryError("batch query outside the universe")
        if self._n == 0:
            return np.zeros(los_arr.size, dtype=bool)
        if self._exact:
            return self._ef.contains_in_range_batch(los_arr, his_arr)
        # uint64 arithmetic below needs headroom: offsets are < r, so
        # (lo % r) + offset must not wrap. r >= 2^63 cannot happen for a
        # sane eps, but fall back to the scalar loop rather than be wrong.
        if self._r >= 2**63:
            return super().may_contain_range_batch(los_arr, his_arr)
        r = np.uint64(self._r)
        result = np.zeros(los_arr.size, dtype=bool)
        # Ranges covering >= r points hash onto all of [r]: always "maybe".
        full = (his_arr - los_arr) >= np.uint64(self._r - 1)
        result[full] = True
        qid = np.flatnonzero(~full)
        if qid.size == 0:
            return result
        q_lo, q_hi = los_arr[qid], his_arr[qid]
        # Footnote 2: split each range at the block boundary it may cross.
        lo_block = q_lo // r
        hi_block = q_hi // r
        split = lo_block != hi_block
        boundary = q_hi - (q_hi % r)
        seg_lo = np.concatenate([q_lo, boundary[split]])
        seg_hi = np.concatenate(
            [np.where(split, boundary - np.uint64(1), q_hi), q_hi[split]]
        )
        seg_qid = np.concatenate([qid, qid[split]])
        # One q() evaluation per distinct block, vectorised end to end
        # (:meth:`PairwiseIndependentHash.hash_many`), broadcast back over
        # the segments that share the block. This was the last per-query
        # Python loop on the batch path: uniform workloads make nearly
        # every block distinct, so a scalar q() here costs one interpreted
        # big-int evaluation per query per run.
        blocks, inverse = np.unique(seg_lo // r, return_inverse=True)
        assert self._hash is not None
        offsets = self._hash.hash_blocks(blocks)[inverse]
        h_lo = (offsets + (seg_lo % r)) % r
        h_hi = (offsets + (seg_hi % r)) % r
        wrap = h_lo > h_hi  # hashed interval wraps around the reduced universe
        int_lo = np.concatenate([np.where(wrap, np.uint64(0), h_lo), h_lo[wrap]])
        int_hi = np.concatenate([h_hi, np.full(int(wrap.sum()), self._r - 1, dtype=np.uint64)])
        int_qid = np.concatenate([seg_qid, seg_qid[wrap]])
        hits = self._ef.contains_in_range_batch(int_lo, int_hi)
        np.logical_or.at(result, int_qid, hits)
        return result

    # ------------------------------------------------------------------
    # Approximate range counting (end of §3)
    # ------------------------------------------------------------------
    def _segment_count(self, lo: int, hi: int) -> int:
        """Number of stored codes whose value falls in the hashed segment."""
        assert self._hash is not None
        offset = self._hash.hash_block(lo // self._r)
        h_lo = (offset + lo) % self._r
        h_hi = (offset + hi) % self._r
        if h_lo <= h_hi:
            low_rank = self._ef.rank_leq(h_lo - 1) if h_lo else 0
            return self._ef.rank_leq(h_hi) - low_rank
        wrap_high = len(self._ef) - (self._ef.rank_leq(h_lo - 1) if h_lo else 0)
        return self._ef.rank_leq(h_hi) + wrap_high

    def count_range(self, lo: int, hi: int, adjusted: bool = False) -> int:
        """Approximately count the keys intersecting ``[lo, hi]``.

        The raw estimate is the rank difference at the hashed endpoints
        (§3, final remark): it never undercounts distinct-key matches by
        more than the hash-collision loss, and overcounts by the number of
        colliding outside keys, whose expectation is ``<= ell * n / r``.
        With ``adjusted=True`` that expectation is subtracted.
        """
        self._check_range(lo, hi)
        if self._n == 0:
            return 0
        if self._exact:
            low_rank = self._ef.rank_leq(lo - 1) if lo else 0
            return self._ef.rank_leq(hi) - low_rank
        if hi - lo + 1 >= self._r:
            return self._n
        total = sum(self._segment_count(s, e) for s, e in self._segments(lo, hi))
        if adjusted:
            expected_collisions = (hi - lo + 1) * self._n / self._r
            total = max(0, round(total - expected_collisions))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "exact" if self._exact else f"r={self._r}"
        return f"Grafite(n={self._n}, L={self._L}, eps={self._eps:.3g}, {mode})"
