"""False-positive-rate measurement (the y-axis of Figures 1, 3, 4, 5).

The paper evaluates FPR as "the ratio between the number of 'not empty'
answers and the size of the batch", over batches of queries that were
generated empty by construction. :func:`measure_fpr` implements exactly
that; :func:`measure_fpr_checked` additionally verifies emptiness against
the ground-truth key set (catching workload bugs) and detects false
negatives (which, per the filter contract, must never happen — SNARF's
documented defect mode aside).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.filters.base import RangeFilter
from repro.workloads.queries import intersects

Query = Tuple[int, int]


@dataclass(frozen=True)
class FprResult:
    """Outcome of an FPR measurement batch."""

    trials: int
    false_positives: int

    @property
    def fpr(self) -> float:
        return self.false_positives / self.trials if self.trials else 0.0

    def __str__(self) -> str:
        return f"FPR {self.fpr:.2e} ({self.false_positives}/{self.trials})"


@dataclass(frozen=True)
class CheckedFprResult:
    """FPR measurement with ground-truth verification."""

    trials: int
    false_positives: int
    true_positives: int
    false_negatives: int

    @property
    def fpr(self) -> float:
        empty = self.trials - self.true_positives - self.false_negatives
        return self.false_positives / empty if empty else 0.0


def measure_fpr(filt: RangeFilter, queries: Sequence[Query]) -> FprResult:
    """FPR over a batch of *empty* queries (§6.1 semantics)."""
    false_positives = sum(
        1 for lo, hi in queries if filt.may_contain_range(lo, hi)
    )
    return FprResult(trials=len(queries), false_positives=false_positives)


def measure_fpr_checked(
    filt: RangeFilter,
    queries: Sequence[Query],
    keys: np.ndarray,
) -> CheckedFprResult:
    """FPR with per-query ground truth (detects false negatives)."""
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64))
    fp = tp = fn = 0
    for lo, hi in queries:
        answer = filt.may_contain_range(lo, hi)
        truth = intersects(sorted_keys, lo, hi)
        if truth and answer:
            tp += 1
        elif truth and not answer:
            fn += 1
        elif answer:
            fp += 1
    return CheckedFprResult(
        trials=len(queries), false_positives=fp, true_positives=tp, false_negatives=fn
    )
