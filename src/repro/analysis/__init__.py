"""Measurement harness: FPR, timing, space, theory, and reporting."""

from repro.analysis.fpr import (
    CheckedFprResult,
    FprResult,
    measure_fpr,
    measure_fpr_checked,
)
from repro.analysis.harness import (
    FILTERS,
    HEURISTIC_FILTERS,
    ROBUST_FILTERS,
    ExperimentRow,
    FilterConfig,
    build_filter,
    run_experiment,
    run_grid,
)
from repro.analysis.report import (
    format_fpr,
    format_series,
    format_speed_table,
    format_table,
)
from repro.analysis.theory import (
    TheoryRow,
    bucketing_bits,
    goswami_bits,
    grafite_bits,
    grafite_fpr_bound,
    lower_bound_bits,
    rosetta_bits,
    snarf_bits,
    surf_bits,
    table1,
    trivial_baseline_bits,
)
from repro.analysis.timing import TimingResult, time_construction, time_queries

__all__ = [
    "CheckedFprResult",
    "ExperimentRow",
    "FILTERS",
    "FilterConfig",
    "FprResult",
    "HEURISTIC_FILTERS",
    "ROBUST_FILTERS",
    "TheoryRow",
    "TimingResult",
    "bucketing_bits",
    "build_filter",
    "format_fpr",
    "format_series",
    "format_speed_table",
    "format_table",
    "goswami_bits",
    "grafite_bits",
    "grafite_fpr_bound",
    "lower_bound_bits",
    "measure_fpr",
    "measure_fpr_checked",
    "rosetta_bits",
    "run_experiment",
    "run_grid",
    "snarf_bits",
    "surf_bits",
    "table1",
    "time_construction",
    "time_queries",
    "trivial_baseline_bits",
]
