"""Closed-form space/time bounds of Table 1 and the §5 comparison.

Each function evaluates one row of Table 1 for concrete parameters, so
the Table 1 benchmark can print the paper's summary and cross-check the
bounds against the *measured* sizes of our implementations. Time bounds
are kept as strings (they are asymptotic classes, not numbers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


def log2(x: float) -> float:
    if x <= 0:
        raise ValueError(f"log2 domain error: {x}")
    return math.log2(x)


# ----------------------------------------------------------------------
# FPR-bounded structures
# ----------------------------------------------------------------------
def lower_bound_bits(n: int, L: int, eps: float) -> float:
    """Theorem 2.1: ``n log2(L^(1-O(eps)) / eps) - O(n)`` (O() terms at 0)."""
    return n * log2(L ** (1.0 - eps) / eps)


def trivial_baseline_bits(n: int, L: int, eps: float) -> float:
    """§2 trivial solution: point filter with gamma = eps/L."""
    return n * log2(L / eps) + 1.44 * n  # O(n) term: Bloom's 44% overhead


def goswami_bits(n: int, L: int, eps: float) -> float:
    """Goswami et al.: ``n log2(L/eps) + 3n + o(n log(L/eps))``."""
    return n * log2(L / eps) + 3 * n


def grafite_bits(n: int, L: int, eps: float) -> float:
    """Theorem 3.4: ``n log2(L/eps) + 2n + o(n)``."""
    return n * log2(L / eps) + 2 * n


def rosetta_bits(n: int, L: int, eps: float) -> float:
    """[25, §3.1] tuning: ``1.44 n log2(L/eps)``."""
    return 1.44 * n * log2(L / eps)


# ----------------------------------------------------------------------
# Heuristic structures
# ----------------------------------------------------------------------
def surf_bits(n: int, z: int, m: int) -> float:
    """SuRF LOUDS-Sparse: ``(10 + m) n + 10 z + o(n + z)``."""
    return (10 + m) * n + 10 * z


def snarf_bits(n: int, K: float) -> float:
    """SNARF: ``n log2(K) + 2.4 n``."""
    return n * log2(K) + 2.4 * n


def bucketing_bits(t: int, u: int, s: int) -> float:
    """Bucketing (this paper): ``t log2(u/(t s)) + 2 t + o(t)``."""
    return t * log2(u / (t * s)) + 2 * t


@dataclass(frozen=True)
class TheoryRow:
    """One row of Table 1."""

    name: str
    category: str  # "heuristic" | "fpr-bounded" | "bound"
    space_formula: str
    space_bits: Optional[float]
    query_time: str
    practical: bool


def table1(
    n: int,
    u: int,
    L: int,
    eps: float,
    *,
    surf_internal_nodes: Optional[int] = None,
    surf_suffix_bits: int = 4,
    snarf_K: Optional[float] = None,
    bucketing_t: Optional[int] = None,
    bucketing_s: Optional[int] = None,
) -> List[TheoryRow]:
    """Evaluate Table 1 for concrete parameters.

    Data-dependent rows (SuRF's ``z``, Bucketing's ``t``) are evaluated
    only when the caller supplies the measured quantities; otherwise their
    numeric cell is left empty, exactly like the ``?`` entries of the
    paper's table (Proteus, bloomRF).
    """
    z = surf_internal_nodes
    K = snarf_K if snarf_K is not None else L / eps  # eps ~ 1/K analogy
    rows = [
        TheoryRow(
            "SuRF", "heuristic", "(10+m)n + 10z + o(n+z)",
            surf_bits(n, z, surf_suffix_bits) if z is not None else None,
            "O(log u)", True,
        ),
        TheoryRow(
            "SNARF", "heuristic", "n log K + 2.4n",
            snarf_bits(n, K), "Omega(log n)", True,
        ),
        TheoryRow("Proteus", "heuristic", "?", None, "?", True),
        TheoryRow("bloomRF", "heuristic", "?", None, "O(log(u/n))", True),
        TheoryRow(
            "Bucketing", "heuristic", "t log(u/(t s)) + 2t + o(t)",
            bucketing_bits(bucketing_t, u, bucketing_s)
            if bucketing_t is not None and bucketing_s is not None
            else None,
            "O(log(u/(t s)))", True,
        ),
        TheoryRow(
            "Theoretical baseline", "fpr-bounded", "n log(L/eps) + O(n)",
            trivial_baseline_bits(n, L, eps), "O(L)", False,
        ),
        TheoryRow(
            "Goswami et al.", "fpr-bounded",
            "n log(L/eps) + 3n + o(n log(L/eps))",
            goswami_bits(n, L, eps), "O(log(nL/eps)/w)", False,
        ),
        TheoryRow(
            "Rosetta", "fpr-bounded", "1.44 n log(L/eps)",
            rosetta_bits(n, L, eps), "Omega(log L * log(2-eps))", True,
        ),
        TheoryRow(
            "Grafite", "fpr-bounded", "n log(L/eps) + 2n + o(n)",
            grafite_bits(n, L, eps), "O(log(L/eps))", True,
        ),
        TheoryRow(
            "Lower bound", "bound", "n log(L^(1-O(eps))/eps) - O(n)",
            lower_bound_bits(n, L, eps), "-", False,
        ),
    ]
    return rows


def grafite_fpr_bound(range_size: int, bits_per_key: float) -> float:
    """Corollary 3.5: ``min(1, ell / 2^(B-2))``."""
    if bits_per_key <= 2:
        return 1.0
    return min(1.0, range_size / 2.0 ** (bits_per_key - 2))


def rosetta_vs_grafite_space_crossover(L: int, eps: float) -> bool:
    """§5: Grafite beats Rosetta in space iff ``L >= 2^3.36 * eps``.

    (Equivalently: Rosetta's 1.44x multiplier loses to Grafite's +2 bits
    per key additive term except at tiny L/eps ratios.)
    """
    return 1.44 * log2(L / eps) >= log2(L / eps) + 2
