"""Plain-text table/series rendering for the benchmark harness.

The benchmarks print the same rows and series the paper's figures plot;
this module keeps the formatting in one place (fixed-width text tables,
scientific-notation FPRs, ns/query columns with ratio annotations — the
style of the tables attached to Figures 4 and 5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in materialised:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if 0 < abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    return str(value)


def format_fpr(fpr: float) -> str:
    """FPR cell in the paper's log-scale style."""
    if fpr == 0:
        return "0"
    return f"{fpr:.2e}"


def format_speed_table(entries: Sequence[tuple[str, float]], title: str) -> str:
    """The Figure 4/5 side tables: avg ns/query with x-factor vs fastest."""
    ordered = sorted(entries, key=lambda item: item[1])
    fastest = ordered[0][1] if ordered else 1.0
    rows = [
        (name, f"{ns:,.0f}", f"({ns / fastest:.2f} x)")
        for name, ns in ordered
    ]
    return format_table(["Range filter", "Avg ns/query", "vs fastest"], rows, title=title)


def format_write_amp(
    entries_flushed: int, entries_compacted: int, bytes_compacted: int = 0
) -> str:
    """One-cell summary of an LSM store's write amplification.

    ``entries_flushed`` / ``entries_compacted`` / ``bytes_compacted``
    come from :class:`repro.lsm.store.IoStats`; the headline number is
    the classic ratio of total entries written (flush + compaction
    rewrites) to user entries flushed. The compaction policy is what
    moves it: full merges rewrite the store per compaction, leveled
    slicing rewrites only the touched slices.
    """
    if not entries_flushed:
        return "- (nothing flushed)"
    amp = (entries_flushed + entries_compacted) / entries_flushed
    detail = f"{entries_compacted:,} compacted / {entries_flushed:,} flushed entries"
    if bytes_compacted:
        detail += f", {bytes_compacted:,} bytes rewritten"
    return f"{amp:.2f}x ({detail})"


def format_planner_summary(planner: Optional[dict]) -> str:
    """One-cell summary of a planner's ``stats_snapshot()`` dict.

    Renders the rewrite pass's fold counts and the negative cache's hit
    rate in the form the ``engine``/``serve`` report tables show —
    ``"off"`` when no planner is attached (``None``).
    """
    if not planner:
        return "off"
    negcache = planner.get("negative_cache") or {}
    parts = [
        f"{planner.get('queries', 0):,} queries -> "
        f"{planner.get('executed_probes', 0):,} probes",
        f"{planner.get('duplicates_folded', 0):,} dups folded",
        f"{planner.get('covers_merged', 0):,} covers merged",
    ]
    if negcache.get("enabled"):
        parts.append(f"negcache {negcache.get('hit_rate', 0.0):.1%} hit")
    return "; ".join(parts)


def format_error_ledger(
    shed: int, errors: int, error_classes: Optional[dict] = None
) -> str:
    """Compact ``k=v`` ledger of a load run's failures, by class.

    Renders the shed count plus the per-class breakdown of
    :attr:`~repro.net.loadgen.LoadReport.error_classes`
    (reset / timeout / remote / protocol / other / cancelled) in the
    form the ``[loadgen]`` summary line carries — classes with zero
    count are omitted so the healthy case stays short.
    """
    parts = [f"shed={shed}", f"errors={errors}"]
    for kind in ("reset", "timeout", "remote", "protocol", "other",
                 "cancelled"):
        count = (error_classes or {}).get(kind, 0)
        if count:
            parts.append(f"{kind}={count}")
    return " ".join(parts)


def format_latency_histogram(
    latencies_s: Sequence[float],
    *,
    title: Optional[str] = None,
    percentiles: Sequence[float] = (50, 90, 99, 99.9),
    buckets: int = 12,
    width: int = 40,
) -> str:
    """Text histogram of request latencies plus the percentile ladder.

    Buckets are log-spaced between the observed min and max (latency
    distributions are heavy-tailed; linear buckets would dump everything
    into the first row), each row showing the bucket's upper edge in
    milliseconds, a proportional bar, and the count. The percentile rows
    underneath are what the SLO gates read.
    """
    import numpy as np

    lat = np.asarray(latencies_s, dtype=np.float64)
    lines: List[str] = []
    if title:
        lines.append(title)
    if lat.size == 0:
        lines.append("(no completed requests)")
        return "\n".join(lines)
    lo = max(float(lat.min()), 1e-7)
    hi = max(float(lat.max()), lo * 1.0001)
    edges = np.geomspace(lo, hi, buckets + 1)
    edges[0] = 0.0  # the first bucket catches everything below lo
    counts, _ = np.histogram(lat, bins=edges)
    peak = max(1, int(counts.max()))
    for i, count in enumerate(counts):
        bar = "#" * max(int(round(width * count / peak)), 1 if count else 0)
        lines.append(
            f"  <= {edges[i + 1] * 1e3:9.3f} ms | {bar:<{width}} | {count:,}"
        )
    for q in percentiles:
        lines.append(f"  p{q:<5} {float(np.percentile(lat, q)) * 1e3:9.3f} ms")
    lines.append(f"  max   {float(lat.max()) * 1e3:9.3f} ms  ({lat.size:,} samples)")
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple[str, Sequence[object]]],
    title: Optional[str] = None,
) -> str:
    """Render a figure's data as one column per series (x on rows)."""
    headers = [x_label] + [name for name, _ in series]
    rows = [
        [x] + [values[i] for _, values in series]
        for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)
