"""Experiment harness: build filters uniformly, measure, collect rows.

This module is the glue between the library and the benchmarks: a
canonical registry of filter constructors (one per evaluated solution,
keyed by the names the paper's figures use) plus an experiment runner
that produces one :class:`ExperimentRow` per (filter, configuration)
cell — the exact quantities Figures 3–7 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.fpr import measure_fpr
from repro.analysis.timing import time_construction, time_queries
from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter
from repro.filters.point_probe import PointProbeFilter
from repro.filters.proteus import Proteus
from repro.filters.rencoder import REncoder, rencoder_se, rencoder_ss
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF

Query = Tuple[int, int]


@dataclass(frozen=True)
class FilterConfig:
    """Everything a filter constructor may need, in one bundle."""

    keys: np.ndarray
    universe: int
    bits_per_key: float
    max_range_size: int
    sample_queries: Sequence[Query] = ()
    seed: int = 0


FilterFactory = Callable[[FilterConfig], RangeFilter]


def _make_grafite(cfg: FilterConfig) -> RangeFilter:
    return Grafite(
        cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key,
        max_range_size=cfg.max_range_size, seed=cfg.seed,
    )


def _make_bucketing(cfg: FilterConfig) -> RangeFilter:
    return Bucketing(cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key)


def _make_rosetta(cfg: FilterConfig) -> RangeFilter:
    return Rosetta(
        cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key,
        max_range_size=cfg.max_range_size,
        sample_queries=cfg.sample_queries or None, seed=cfg.seed,
    )


def _make_snarf(cfg: FilterConfig) -> RangeFilter:
    return SnarfFilter(
        cfg.keys, cfg.universe, bits_per_key=max(2.5, cfg.bits_per_key)
    )


def _make_surf(cfg: FilterConfig) -> RangeFilter:
    # SuRF takes >= 10 bits/key for the trie (paper §5); the rest of the
    # budget buys real suffix bits.
    suffix_bits = max(1, int(round(cfg.bits_per_key - 10)))
    return SuRF(
        cfg.keys, cfg.universe, suffix_mode="real",
        suffix_bits=suffix_bits, seed=cfg.seed,
    )


def _make_surf_hash(cfg: FilterConfig) -> RangeFilter:
    suffix_bits = max(1, int(round(cfg.bits_per_key - 10)))
    return SuRF(
        cfg.keys, cfg.universe, suffix_mode="hash",
        suffix_bits=suffix_bits, seed=cfg.seed,
    )


def _make_proteus(cfg: FilterConfig) -> RangeFilter:
    if not cfg.sample_queries:
        raise InvalidParameterError("Proteus requires sample_queries in the config")
    return Proteus(
        cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key,
        sample_queries=cfg.sample_queries, seed=cfg.seed,
    )


def _make_rencoder(cfg: FilterConfig) -> RangeFilter:
    return REncoder(cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key, seed=cfg.seed)


def _make_rencoder_ss(cfg: FilterConfig) -> RangeFilter:
    return rencoder_ss(cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key, seed=cfg.seed)


def _make_rencoder_se(cfg: FilterConfig) -> RangeFilter:
    if not cfg.sample_queries:
        raise InvalidParameterError("REncoderSE requires sample_queries in the config")
    return rencoder_se(
        cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key,
        sample_queries=cfg.sample_queries, seed=cfg.seed,
    )


def _make_point_probe(cfg: FilterConfig) -> RangeFilter:
    return PointProbeFilter(
        cfg.keys, cfg.universe, bits_per_key=cfg.bits_per_key,
        max_range_size=cfg.max_range_size, seed=cfg.seed,
    )


#: Filter registry keyed by the names used in the paper's figures.
FILTERS: Dict[str, FilterFactory] = {
    "Grafite": _make_grafite,
    "Bucketing": _make_bucketing,
    "Rosetta": _make_rosetta,
    "SNARF": _make_snarf,
    "SuRF": _make_surf,
    "SuRF-Hash": _make_surf_hash,
    "Proteus": _make_proteus,
    "REncoder": _make_rencoder,
    "REncoderSS": _make_rencoder_ss,
    "REncoderSE": _make_rencoder_se,
    "PointProbe": _make_point_probe,
}

#: The paper's taxonomy (§6.2): filters with distribution-free FPR bounds
#: versus heuristics. REncoder is "robust for large ranges" and grouped
#: with the robust ones in Figure 5, as here.
ROBUST_FILTERS = ("Grafite", "Rosetta", "REncoder")
HEURISTIC_FILTERS = ("Bucketing", "SuRF", "SNARF", "Proteus", "REncoderSS", "REncoderSE")


def build_filter(name: str, cfg: FilterConfig) -> RangeFilter:
    """Instantiate a registered filter by figure name."""
    try:
        factory = FILTERS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown filter {name!r}; choose from {sorted(FILTERS)}"
        ) from None
    return factory(cfg)


@dataclass(frozen=True)
class ExperimentRow:
    """One measured cell of a figure: a filter on one configuration."""

    filter_name: str
    dataset: str
    workload: str
    range_size: int
    bits_per_key_budget: float
    bits_per_key_actual: float
    fpr: float
    query_ns: float
    build_ns_per_key: float
    key_count: int
    extra: dict = field(default_factory=dict)


def run_experiment(
    filter_name: str,
    cfg: FilterConfig,
    queries: Sequence[Query],
    *,
    dataset: str = "synthetic",
    workload: str = "uncorrelated",
    time_repeats: int = 1,
) -> ExperimentRow:
    """Build one filter, measure FPR and query/construction time."""
    filt, build_timing = time_construction(lambda: build_filter(filter_name, cfg))
    fpr_result = measure_fpr(filt, queries)
    query_timing = time_queries(filt, queries, repeats=time_repeats)
    n = max(1, filt.key_count)
    return ExperimentRow(
        filter_name=filter_name,
        dataset=dataset,
        workload=workload,
        range_size=cfg.max_range_size,
        bits_per_key_budget=cfg.bits_per_key,
        bits_per_key_actual=filt.bits_per_key,
        fpr=fpr_result.fpr,
        query_ns=query_timing.ns_per_op,
        build_ns_per_key=build_timing.total_seconds / n * 1e9,
        key_count=filt.key_count,
    )


def run_grid(
    filter_names: Sequence[str],
    cfg: FilterConfig,
    queries: Sequence[Query],
    **kwargs,
) -> List[ExperimentRow]:
    """Run several filters on one configuration."""
    return [run_experiment(name, cfg, queries, **kwargs) for name in filter_names]
