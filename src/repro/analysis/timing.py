"""Query- and construction-time measurement (Figures 3–7).

Timing in a pure-Python reproduction cannot match the paper's absolute
nanoseconds; what these helpers preserve is the *relative* picture —
which filter is faster, by what factor, and how times scale with the
range size, the correlation degree and ``n`` (construction linearity,
Figure 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.filters.base import RangeFilter

Query = Tuple[int, int]


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock timing of a batch of operations."""

    total_seconds: float
    operations: int

    @property
    def ns_per_op(self) -> float:
        return self.total_seconds / self.operations * 1e9 if self.operations else 0.0

    def __str__(self) -> str:
        return f"{self.ns_per_op:,.0f} ns/op over {self.operations} ops"


def time_queries(
    filt: RangeFilter, queries: Sequence[Query], repeats: int = 1
) -> TimingResult:
    """Time a single-threaded query batch (the paper's §6.1 setup)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for lo, hi in queries:
            filt.may_contain_range(lo, hi)
        best = min(best, time.perf_counter() - start)
    return TimingResult(total_seconds=best, operations=len(queries))


def time_construction(
    factory: Callable[[], RangeFilter], repeats: int = 1
) -> Tuple[RangeFilter, TimingResult]:
    """Time filter construction; returns the last built filter too.

    Figure 7 reports construction time *per key*; divide by
    ``filter.key_count`` at the call site.
    """
    best = float("inf")
    built: RangeFilter
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        built = factory()
        best = min(best, time.perf_counter() - start)
    return built, TimingResult(total_seconds=best, operations=1)
