"""Query workload generators of §6.1.

All generators emit ``(lo, hi)`` inclusive ranges of a fixed size
``range_size`` (the paper's ``L``: 2^0 point, 2^5 small, 2^10 large) and,
except for the non-empty workload, *enforce emptiness* exactly as the
paper does: "we enforce the generation of empty queries by discarding the
query ranges that intersect the dataset".

Workloads:

* ``uncorrelated`` — left endpoint uniform over the universe;
* ``correlated(D)`` — a key ``k`` is drawn from the dataset, then the
  left endpoint is uniform in ``[k, k + 2^(30 (1 - D))]``; ``D = 0`` is
  effectively uncorrelated, ``D = 1`` touches the key's immediate
  neighbourhood (the adversarial regime of Figures 1 and 3);
* ``real_extracted`` — the left endpoint is a key removed from the
  dataset (the workload used for Books/Osm rows in Figures 4–5); returns
  the *remaining* keys alongside the queries;
* ``nonempty`` — ranges guaranteed to intersect the dataset (§6.5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError

Query = Tuple[int, int]


def intersects(sorted_keys: np.ndarray, lo: int, hi: int) -> bool:
    """True iff some key of the sorted array falls in ``[lo, hi]``."""
    idx = int(np.searchsorted(sorted_keys, lo, side="left"))
    return idx < sorted_keys.size and int(sorted_keys[idx]) <= hi


def _check(n_queries: int, range_size: int, universe: int) -> None:
    if n_queries < 1:
        raise InvalidParameterError("n_queries must be >= 1")
    if range_size < 1:
        raise InvalidParameterError("range_size must be >= 1")
    if universe <= range_size:
        raise InvalidParameterError("universe must exceed range_size")


def uncorrelated_queries(
    n_queries: int,
    range_size: int,
    universe: int,
    keys: Optional[np.ndarray] = None,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> List[Query]:
    """Uniform left endpoints; empty w.r.t. ``keys`` when provided."""
    _check(n_queries, range_size, universe)
    rng = np.random.default_rng(seed)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64)) if keys is not None else None
    out: List[Query] = []
    attempts = 0
    limit = n_queries * max_attempts_factor
    while len(out) < n_queries and attempts < limit:
        attempts += 1
        # Inclusive-placement draw: the last valid left endpoint is
        # universe - range_size (giving hi = universe - 1), and
        # rng.integers has an exclusive high bound, hence the + 1.
        lo = int(rng.integers(0, universe - range_size + 1))
        hi = lo + range_size - 1
        if sorted_keys is not None and intersects(sorted_keys, lo, hi):
            continue
        out.append((lo, hi))
    if len(out) < n_queries:
        raise InvalidParameterError(
            "could not generate enough empty queries; dataset too dense"
        )
    return out


def correlated_queries(
    keys: np.ndarray,
    n_queries: int,
    range_size: int,
    universe: int,
    correlation_degree: float = 0.8,
    seed: int = 0,
    max_attempts_factor: int = 500,
) -> List[Query]:
    """The §6.1 Correlated workload with degree ``D`` in [0, 1].

    Left endpoint uniform in ``[k, k + 2^(30 (1 - D))]`` for a random key
    ``k``; ranges intersecting the dataset are discarded, which at high
    ``D`` means the surviving queries hug the keys from the right — the
    adversarial shape existing heuristic filters cannot handle.
    """
    _check(n_queries, range_size, universe)
    if not 0.0 <= correlation_degree <= 1.0:
        raise InvalidParameterError("correlation_degree must be in [0, 1]")
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64))
    if sorted_keys.size == 0:
        raise InvalidParameterError("correlated workload needs a non-empty key set")
    rng = np.random.default_rng(seed)
    spread = int(2 ** (30 * (1.0 - correlation_degree)))
    out: List[Query] = []
    attempts = 0
    limit = n_queries * max_attempts_factor
    while len(out) < n_queries and attempts < limit:
        attempts += 1
        k = int(sorted_keys[rng.integers(0, sorted_keys.size)])
        offset = int(rng.integers(0, spread + 1))
        lo = k + offset
        hi = lo + range_size - 1
        if hi >= universe or intersects(sorted_keys, lo, hi):
            continue
        out.append((lo, hi))
    if len(out) < n_queries:
        raise InvalidParameterError(
            "could not generate enough empty correlated queries; "
            "try a lower correlation degree or a sparser dataset"
        )
    return out


def zipfian_queries(
    keys: np.ndarray,
    n_queries: int,
    range_size: int,
    universe: int,
    *,
    skew: float = 1.1,
    n_hot: int = 1024,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skewed serving traffic: Zipfian popularity over a hot key set.

    Models what a front door sees from "millions of users": a seeded
    subset of ``n_hot`` keys becomes the popularity universe, every
    query picks a hot key with probability proportional to
    ``1 / rank^skew`` (rank assignment is a seeded permutation, so the
    hottest key is an arbitrary one, not the smallest), and the range
    ``[lo, lo + range_size - 1]`` is jittered around the chosen key so
    repeats are near- but not always exact duplicates.

    Unlike the §6.1 generators this does **not** enforce emptiness —
    serving benchmarks want the realistic mix of empty and non-empty
    ranges — and it returns the two columnar arrays ``(los, his)``
    directly (``dtype=uint64``), ready for ``batch_range_empty`` or the
    wire protocol's packed batch frames. Fully vectorised and
    deterministic given ``seed``.
    """
    _check(n_queries, range_size, universe)
    if skew <= 0:
        raise InvalidParameterError("skew must be positive")
    if n_hot < 1:
        raise InvalidParameterError("n_hot must be >= 1")
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64))
    if sorted_keys.size == 0:
        raise InvalidParameterError("zipfian workload needs a non-empty key set")
    rng = np.random.default_rng(seed)
    m = min(int(n_hot), sorted_keys.size)
    hot = sorted_keys[rng.permutation(sorted_keys.size)[:m]]
    weights = 1.0 / np.arange(1, m + 1, dtype=np.float64) ** skew
    ranks = rng.choice(m, size=n_queries, p=weights / weights.sum())
    anchors = hot[ranks].astype(np.int64)
    jitter = rng.integers(0, range_size, n_queries, dtype=np.int64)
    los = np.clip(anchors - jitter, 0, universe - range_size).astype(np.uint64)
    return los, los + np.uint64(range_size - 1)


def real_extracted_queries(
    keys: np.ndarray,
    n_queries: int,
    range_size: int,
    universe: int,
    seed: int = 0,
) -> Tuple[np.ndarray, List[Query]]:
    """§6.1 real-dataset workload: endpoints are keys removed from the set.

    Returns ``(remaining_keys, queries)``: build the filter on
    ``remaining_keys``; each query's left endpoint is one of the removed
    keys and the range is guaranteed empty w.r.t. the remaining set.
    """
    _check(n_queries, range_size, universe)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64))
    rng = np.random.default_rng(seed)
    order = rng.permutation(sorted_keys.size)
    removed_mask = np.zeros(sorted_keys.size, dtype=bool)
    out: List[Query] = []
    removed: List[int] = []
    for idx in order:
        if len(out) >= n_queries:
            break
        lo = int(sorted_keys[idx])
        hi = lo + range_size - 1
        if hi >= universe:
            continue
        removed_mask[idx] = True
        remaining_hit = _intersects_excluding(sorted_keys, removed_mask, lo, hi)
        if remaining_hit:
            removed_mask[idx] = False
            continue
        removed.append(idx)
        out.append((lo, hi))
    if len(out) < n_queries:
        raise InvalidParameterError(
            "could not extract enough query endpoints; "
            "reduce n_queries or range_size"
        )
    remaining = sorted_keys[~removed_mask]
    return remaining, out


def _intersects_excluding(
    sorted_keys: np.ndarray, removed_mask: np.ndarray, lo: int, hi: int
) -> bool:
    """Does ``[lo, hi]`` hit any not-yet-removed key?"""
    start = int(np.searchsorted(sorted_keys, lo, side="left"))
    idx = start
    while idx < sorted_keys.size and int(sorted_keys[idx]) <= hi:
        if not removed_mask[idx]:
            return True
        idx += 1
    return False


def nonempty_queries(
    keys: np.ndarray,
    n_queries: int,
    range_size: int,
    universe: int,
    seed: int = 0,
) -> List[Query]:
    """§6.5 workload: every range contains at least one key.

    A key ``k`` is drawn, then the left endpoint uniformly from
    ``[k - L + 1, k]`` so that ``k`` lies inside ``[lo, lo + L - 1]``.
    """
    _check(n_queries, range_size, universe)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.uint64))
    if sorted_keys.size == 0:
        raise InvalidParameterError("nonempty workload needs a non-empty key set")
    rng = np.random.default_rng(seed)
    out: List[Query] = []
    while len(out) < n_queries:
        k = int(sorted_keys[rng.integers(0, sorted_keys.size)])
        lo = max(0, k - int(rng.integers(0, range_size)))
        hi = lo + range_size - 1
        if hi >= universe:
            continue
        assert lo <= k <= hi
        out.append((lo, hi))
    return out
