"""Synthetic datasets reproducing the key distributions of §6.1.

The paper evaluates on 200M-key datasets: Uniform (synthetic), Books
(Amazon sale popularity), Osm (OpenStreetMap cell ids) and mentions Fb
(Facebook ids) and a Normal dataset. The real SOSD files are not
available offline, so this module provides synthetic surrogates that
match the *distributional properties the experiments depend on* (see
DESIGN.md §5 for the substitution rationale):

* ``uniform``    — i.i.d. uniform keys over the universe;
* ``normal``     — Gaussian keys (mean ``u/2``, std ``0.1 u``), §6.1
  "other datasets";
* ``books_like`` — heavy-tailed (log-normal) gaps: a few huge jumps,
  many clustered keys, as in sales-popularity data;
* ``osm_like``   — dense local bursts around cluster centres separated
  by long empty stretches, the signature of geo cell ids;
* ``fb_like``    — almost all keys below ``2^38`` plus a handful of huge
  outliers, matching the paper's description of Fb ("mean value ~2^38,
  ... exclude the last 21 keys that are larger").

Every generator returns a sorted, deduplicated ``uint64`` array and is
deterministic given ``seed``. Because sampling then deduplicating can
lose a few keys, generators oversample and trim to exactly ``n`` unless
the requested density makes that impossible.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import InvalidParameterError

DEFAULT_UNIVERSE = 2**64


def _finalise(samples: np.ndarray, n: int, universe: int) -> np.ndarray:
    """Clip, deduplicate, and trim a raw sample to ``n`` sorted keys."""
    keys = np.unique(np.clip(samples, 0, universe - 1).astype(np.uint64))
    if keys.size > n:
        # Trim uniformly so the distribution's shape is preserved.
        take = np.linspace(0, keys.size - 1, n).astype(np.int64)
        keys = keys[take]
    return keys


def _check_args(n: int, universe: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if universe < 2:
        raise InvalidParameterError(f"universe must be >= 2, got {universe}")
    if n > universe:
        raise InvalidParameterError(f"cannot draw {n} distinct keys from [0, {universe})")


def uniform(n: int, universe: int = DEFAULT_UNIVERSE, seed: int = 0) -> np.ndarray:
    """Uniform keys: the paper's primary synthetic dataset."""
    _check_args(n, universe)
    rng = np.random.default_rng(seed)
    keys = np.zeros(0, dtype=np.uint64)
    want = n
    while keys.size < n:
        fresh = rng.integers(0, universe, int(want * 1.1) + 16, dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, fresh]))
        want = n - keys.size
    return keys[:n] if keys.size > n else keys


def normal(
    n: int,
    universe: int = DEFAULT_UNIVERSE,
    seed: int = 0,
    mean_fraction: float = 0.5,
    std_fraction: float = 0.1,
) -> np.ndarray:
    """Gaussian keys (§6.1 "other datasets": mean 2^63, std 0.1 * 2^64)."""
    _check_args(n, universe)
    rng = np.random.default_rng(seed)
    raw = rng.normal(mean_fraction * universe, std_fraction * universe, int(n * 1.3) + 16)
    return _finalise(raw, n, universe)


def books_like(n: int, universe: int = DEFAULT_UNIVERSE, seed: int = 0) -> np.ndarray:
    """Heavy-tailed cumulative gaps, imitating sales-popularity data.

    Gaps are log-normal (sigma 2.0): most keys sit in tight clusters while
    occasional gaps are orders of magnitude larger — the clustering that
    makes trie/prefix heuristics lose precision on Books in Figure 4.
    """
    _check_args(n, universe)
    rng = np.random.default_rng(seed)
    count = int(n * 1.2) + 16
    gaps = rng.lognormal(mean=0.0, sigma=2.0, size=count)
    positions = np.cumsum(gaps)
    scaled = positions / positions[-1] * (universe - 1)
    return _finalise(scaled, n, universe)


def osm_like(n: int, universe: int = DEFAULT_UNIVERSE, seed: int = 0) -> np.ndarray:
    """Dense bursts around cluster centres, imitating geo cell ids.

    Roughly ``n / 256`` cluster centres are placed uniformly; each centre
    receives a burst of keys at exponential offsets about three orders of
    magnitude tighter than the global key spacing. Dense local
    neighbourhoods are what defeats prefix-based filters on Osm, while the
    intra-cluster gaps stay wide enough that empty range queries of the
    paper's sizes still exist (the §6.1 workloads discard non-empty ones).
    """
    _check_args(n, universe)
    rng = np.random.default_rng(seed)
    count = int(n * 1.3) + 64
    num_clusters = max(1, n // 256)
    # Integer arithmetic throughout: at 2^60 magnitudes float64 cannot
    # resolve offsets of a few thousand and the burst collapses to a
    # handful of distinct values.
    centres = rng.integers(0, universe, num_clusters, dtype=np.uint64)
    assignment = rng.integers(0, num_clusters, count)
    burst_scale = max(4096.0, universe / max(1, n) / 1024.0)
    offsets = np.ceil(rng.exponential(scale=burst_scale, size=count)).astype(np.uint64)
    with np.errstate(over="ignore"):
        raw = centres[assignment] + offsets
    raw = np.minimum(raw, np.uint64(universe - 1))
    keys = np.unique(raw)
    if keys.size > n:
        take = np.linspace(0, keys.size - 1, n).astype(np.int64)
        keys = keys[take]
    return keys


def fb_like(n: int, universe: int = DEFAULT_UNIVERSE, seed: int = 0) -> np.ndarray:
    """Fb surrogate: bulk below ``2^38`` plus ~21 giant outliers (§6.1)."""
    _check_args(n, universe)
    rng = np.random.default_rng(seed)
    bulk_bound = min(universe, 2**38)
    num_outliers = min(21, max(0, n - 1)) if universe > 2**38 else 0
    bulk = uniform(n - num_outliers, bulk_bound, seed=seed)
    if num_outliers:
        outliers = rng.integers(2**38, universe, num_outliers, dtype=np.uint64)
        return np.unique(np.concatenate([bulk, outliers]))
    return bulk


#: Registry used by the harness and the benchmarks (paper dataset names).
DATASETS: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform,
    "normal": normal,
    "books": books_like,
    "osm": osm_like,
    "fb": fb_like,
}


def load_dataset(
    name: str, n: int, universe: int = DEFAULT_UNIVERSE, seed: int = 0
) -> np.ndarray:
    """Generate a named dataset; raises for unknown names."""
    try:
        generator = DATASETS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return generator(n, universe, seed=seed)
