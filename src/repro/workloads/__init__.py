"""Dataset and query-workload generators (paper §6.1) plus the adversary."""

from repro.workloads.adversary import (
    AdaptiveAdversary,
    AttackReport,
    KeyKnowledgeAdversary,
)
from repro.workloads.datasets import (
    DATASETS,
    DEFAULT_UNIVERSE,
    books_like,
    fb_like,
    load_dataset,
    normal,
    osm_like,
    uniform,
)
from repro.workloads.queries import (
    correlated_queries,
    intersects,
    nonempty_queries,
    real_extracted_queries,
    uncorrelated_queries,
    zipfian_queries,
)

__all__ = [
    "AdaptiveAdversary",
    "AttackReport",
    "DATASETS",
    "DEFAULT_UNIVERSE",
    "KeyKnowledgeAdversary",
    "books_like",
    "correlated_queries",
    "fb_like",
    "intersects",
    "load_dataset",
    "nonempty_queries",
    "normal",
    "osm_like",
    "real_extracted_queries",
    "uncorrelated_queries",
    "uniform",
    "zipfian_queries",
]
