"""Declarative YCSB-style scenario matrix over the full serving stack.

The paper's robustness claims are about *workloads*: correlated,
uncorrelated and adversarial query distributions over different key
distributions (§6.1-§6.7). This module turns "handles many scenarios"
into a tested claim: a :class:`Scenario` declares a workload — key type,
dataset shape, operation mix, popularity model, adversary toggle, TTL
config — and :func:`run_scenario` drives it, deterministically and
seeded, against any serving mode:

========================  ==================================================
mode                      stack under test
========================  ==================================================
``"engine"``              in-memory :class:`~repro.engine.ShardedEngine`
``"persistent"``          WAL + checkpoints, with a mid-stream checkpoint
                          and a crash-style reopen (WAL replay)
``"service"``             :class:`~repro.engine.service.RangeQueryService`
                          thread pool + background compaction
``"service-process"``     process mode: snapshot workers behind the
                          checkpoint-epoch handshake
``"net"``                 the asyncio front door, driven through a
                          :class:`~repro.net.client.SyncClient`
========================  ==================================================

Every probe, scan and get is differential-checked against a TTL-aware
sorted-dict oracle (:class:`ScenarioOracle`) *during* the run, and the
full final state is compared bit-exactly at the end — the same contract
as ``tests/test_differential.py``, packaged as a library so the CLI
(``repro scenarios``), the benchmark gates
(``benchmarks/bench_scenarios.py``) and the test suite all drive one
implementation.

String-keyed scenarios run through the engine's
:class:`~repro.core.strings.StringKeyCodec` facade
(:attr:`ShardedEngine.strings`), TTL scenarios advance the logical
clock (:meth:`ShardedEngine.advance_clock`) so entries age out
mid-stream, and adversarial scenarios finish with
:meth:`~repro.workloads.adversary.AdaptiveAdversary.attack_system`
against the served engine.

Adding a scenario is one :func:`register_scenario` call; see
``docs/scenarios.md``.
"""

from __future__ import annotations

import bisect
import statistics
import tempfile
import time
import shutil
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.workloads.datasets import DATASETS, load_dataset

#: Op classes a scenario mix may weight.
OP_CLASSES = ("probe", "insert", "delete", "scan")

#: Serving modes :func:`run_scenario` understands.
MODES = ("engine", "persistent", "service", "service-process", "net")

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


# ----------------------------------------------------------------------
# Scenario specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TTLConfig:
    """Time-to-live shape of a scenario's insert traffic.

    ``expire_fraction`` of inserts carry a stamp ``now + U[lifetime]``
    on the logical clock, which the driver advances by one every
    ``tick_every`` operations — so entries written early in the stream
    age out while the stream still runs, exercising expiry on every
    read path and the age-out compaction steps underneath.
    """

    expire_fraction: float = 0.6
    lifetime: Tuple[int, int] = (4, 40)
    tick_every: int = 64

    def validate(self) -> None:
        if not 0 < self.expire_fraction <= 1:
            raise InvalidParameterError("expire_fraction must be in (0, 1]")
        lo, hi = self.lifetime
        if not 1 <= lo <= hi:
            raise InvalidParameterError(f"bad TTL lifetime range {self.lifetime}")
        if self.tick_every < 1:
            raise InvalidParameterError("tick_every must be >= 1")


@dataclass(frozen=True)
class Scenario:
    """One declarative workload of the matrix.

    Parameters
    ----------
    name / description:
        Registry key and one-line intent.
    key_type:
        ``"int"`` (keys drawn from ``dataset`` over ``universe``) or
        ``"string"`` (random lowercase keys up to ``key_width`` bytes,
        driven through the engine's string codec facade).
    dataset:
        Key-distribution shape for the preloaded set, a name from
        :data:`repro.workloads.datasets.DATASETS` (int scenarios only).
    n_keys / n_ops:
        Preloaded dataset size and driven operation count (both scale
        with :func:`run_scenario`'s ``scale``).
    mix:
        Weights over :data:`OP_CLASSES`; normalised, so they need not
        sum to 1.
    popularity:
        ``"uniform"`` or ``"zipfian"`` — how insert/delete traffic picks
        keys from the pool (zipfian concentrates on a hot set, the
        update-heavy YCSB shape).
    batch_window:
        Probes are buffered and flushed through ``batch_range_empty``
        in windows of this size, like the network front door batches.
    range_size:
        Probe/scan span in the encoded key space.
    adversary:
        Finish the run with an adaptive availability attack
        (:meth:`AdaptiveAdversary.attack_system`) against the served
        engine, reported per round.
    ttl:
        Optional :class:`TTLConfig`; ``None`` disables expiry.
    universe / key_width:
        Integer key universe; string scenarios instead derive
        ``universe = 2^(8 * key_width)`` from the codec width.
    filter_backend:
        Registered filter backend the engine's runs build
        (``"grafite"``, ``"surf"``, ``"proteus"``, ...).
    """

    name: str
    description: str
    key_type: str = "int"
    dataset: str = "uniform"
    n_keys: int = 2000
    n_ops: int = 4000
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"probe": 0.6, "insert": 0.3, "delete": 0.1}
    )
    popularity: str = "uniform"
    batch_window: int = 32
    range_size: int = 64
    adversary: bool = False
    ttl: Optional[TTLConfig] = None
    universe: int = 2**20
    key_width: int = 4
    filter_backend: str = "grafite"

    def validate(self) -> None:
        if self.key_type not in ("int", "string"):
            raise InvalidParameterError(f"unknown key_type {self.key_type!r}")
        if self.key_type == "int" and self.dataset not in DATASETS:
            raise InvalidParameterError(
                f"unknown dataset {self.dataset!r}; choose from {sorted(DATASETS)}"
            )
        if self.popularity not in ("uniform", "zipfian"):
            raise InvalidParameterError(f"unknown popularity {self.popularity!r}")
        unknown = set(self.mix) - set(OP_CLASSES)
        if unknown:
            raise InvalidParameterError(f"unknown op classes in mix: {sorted(unknown)}")
        if not self.mix or sum(self.mix.values()) <= 0:
            raise InvalidParameterError("mix needs at least one positive weight")
        if self.n_keys < 1 or self.n_ops < 1:
            raise InvalidParameterError("n_keys and n_ops must be >= 1")
        if self.batch_window < 1:
            raise InvalidParameterError("batch_window must be >= 1")
        if not 1 <= self.key_width <= 8:
            raise InvalidParameterError("key_width must be 1..8")
        if self.ttl is not None:
            self.ttl.validate()

    @property
    def effective_universe(self) -> int:
        """The integer universe the engine actually runs over."""
        if self.key_type == "string":
            return 1 << (8 * self.key_width)
        return self.universe

    def modes(self) -> Tuple[str, ...]:
        """Serving modes this scenario can run against.

        The network protocol speaks integer probes and byte values only:
        no scans, no TTL clock, no string codec, and its client exposes
        no I/O ledger for the adversary to key on — scenarios using any
        of those skip ``"net"``.
        """
        needs_local = (
            self.key_type == "string"
            or self.ttl is not None
            or self.adversary
            or dict(self.mix).get("scan", 0) > 0
        )
        return MODES[:-1] if needs_local else MODES


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Validate and add a scenario to the registry (name must be new)."""
    scenario.validate()
    if scenario.name in SCENARIOS:
        raise InvalidParameterError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (typed error on misses)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


register_scenario(Scenario(
    name="read-heavy",
    description="YCSB-B-style: mostly emptiness probes over a uniform key set",
    mix={"probe": 0.85, "insert": 0.10, "delete": 0.03, "scan": 0.02},
))
register_scenario(Scenario(
    name="scan-heavy",
    description="YCSB-E-style: short range scans dominate, zipfian updates",
    mix={"probe": 0.30, "insert": 0.15, "delete": 0.05, "scan": 0.50},
    popularity="zipfian",
    dataset="books",
))
register_scenario(Scenario(
    name="update-heavy",
    description="YCSB-A-style: write-dominated with deletes over a hot set",
    mix={"probe": 0.25, "insert": 0.55, "delete": 0.15, "scan": 0.05},
    popularity="zipfian",
))
register_scenario(Scenario(
    name="adversarial",
    description="read-heavy mix, then the adaptive availability attack of §6.7",
    mix={"probe": 0.80, "insert": 0.15, "delete": 0.05},
    adversary=True,
))
register_scenario(Scenario(
    name="string-keys",
    description="lowercase string keys end-to-end through the codec facade",
    key_type="string",
    key_width=4,
    mix={"probe": 0.50, "insert": 0.30, "delete": 0.10, "scan": 0.10},
    filter_backend="surf",
))
register_scenario(Scenario(
    name="ttl-expiry",
    description="time-series writes expiring on the logical clock mid-stream",
    mix={"probe": 0.40, "insert": 0.40, "delete": 0.05, "scan": 0.15},
    ttl=TTLConfig(),
))
register_scenario(Scenario(
    name="net-mixed",
    description="scanless probe/insert/delete mix that the front door can serve",
    mix={"probe": 0.70, "insert": 0.25, "delete": 0.05},
))


# ----------------------------------------------------------------------
# TTL-aware oracle
# ----------------------------------------------------------------------
class ScenarioOracle:
    """Sorted-dict ground truth with the engine's exact TTL semantics.

    Keys are ints or canonical bytes (string scenarios); an entry whose
    stamp is at or below the advanced clock is indistinguishable from a
    deleted one — on gets, emptiness probes, scans and the final state.
    """

    def __init__(self) -> None:
        self._data: Dict[Any, Tuple[Any, Optional[int]]] = {}
        self._sorted: Optional[List[Any]] = None
        self.now = 0

    def put(self, key: Any, value: Any, expires_at: Optional[int] = None) -> None:
        if key not in self._data:
            self._sorted = None
        self._data[key] = (value, expires_at)

    def delete(self, key: Any) -> None:
        if self._data.pop(key, None) is not None:
            self._sorted = None

    def advance(self, now: int) -> None:
        if now < self.now:
            raise InvalidParameterError("oracle clock may not go backwards")
        self.now = now

    def _live(self, entry: Tuple[Any, Optional[int]]) -> bool:
        value, expires_at = entry
        return expires_at is None or self.now < expires_at

    def get(self, key: Any) -> Optional[Any]:
        entry = self._data.get(key)
        if entry is None or not self._live(entry):
            return None
        return entry[0]

    def _keys(self) -> List[Any]:
        if self._sorted is None:
            self._sorted = sorted(self._data)
        return self._sorted

    def range_empty(self, lo: Any, hi: Any) -> bool:
        keys = self._keys()
        i = bisect.bisect_left(keys, lo)
        while i < len(keys) and keys[i] <= hi:
            if self._live(self._data[keys[i]]):
                return False
            i += 1
        return True

    def scan(self, lo: Any, hi: Any) -> List[Tuple[Any, Any]]:
        keys = self._keys()
        i = bisect.bisect_left(keys, lo)
        out: List[Tuple[Any, Any]] = []
        while i < len(keys) and keys[i] <= hi:
            entry = self._data[keys[i]]
            if self._live(entry):
                out.append((keys[i], entry[0]))
            i += 1
        return out

    def items(self) -> List[Tuple[Any, Any]]:
        """All live pairs in key order (the final-state comparison)."""
        return [
            (k, self._data[k][0]) for k in self._keys() if self._live(self._data[k])
        ]

    def live_keys(self) -> List[Any]:
        return [k for k in self._keys() if self._live(self._data[k])]


# ----------------------------------------------------------------------
# Deterministic op streams
# ----------------------------------------------------------------------
def _scenario_rng(scenario: Scenario, seed: int) -> np.random.Generator:
    # Fold the name in so every scenario decorrelates under one seed.
    return np.random.default_rng([int(seed), zlib.crc32(scenario.name.encode())])


def _string_key(rng: np.random.Generator, width: int) -> str:
    length = int(rng.integers(1, width + 1))
    return "".join(_ALPHABET[int(i)] for i in rng.integers(0, len(_ALPHABET), length))


def _pool(scenario: Scenario, rng: np.random.Generator, n: int) -> List[Any]:
    if scenario.key_type == "string":
        # Draw until distinct; the string space at small widths is dense
        # enough that collisions are common and harmless to reroll.
        seen: Dict[str, None] = {}
        while len(seen) < n:
            seen.setdefault(_string_key(rng, scenario.key_width), None)
        return list(seen)
    keys = load_dataset(
        scenario.dataset, n, scenario.effective_universe,
        seed=int(rng.integers(0, 2**31)),
    )
    return [int(k) for k in keys]


def _zipf_weights(n: int, s: float = 1.1) -> np.ndarray:
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return w / w.sum()


def _int_range(
    rng: np.random.Generator, universe: int, span_cap: int
) -> Tuple[int, int]:
    span = int(rng.integers(1, max(2, span_cap)))
    lo = int(rng.integers(0, max(1, universe - span)))
    return lo, lo + span - 1


def _string_range(
    rng: np.random.Generator, width: int
) -> Tuple[str, str]:
    a, b = _string_key(rng, width), _string_key(rng, width)
    return (a, b) if a <= b else (b, a)


def scenario_preload(scenario: Scenario, seed: int) -> List[Tuple[Any, bytes]]:
    """The deterministic preloaded dataset: ``(key, value)`` pairs."""
    rng = _scenario_rng(scenario, seed)
    return [
        (key, b"seed-%d" % i)
        for i, key in enumerate(_pool(scenario, rng, scenario.n_keys))
    ]


def scenario_ops(
    scenario: Scenario, seed: int, *, n_ops: Optional[int] = None
) -> Iterator[Tuple]:
    """The deterministic driven op stream after the preload.

    Yields tuples: ``("probe", lo, hi)``, ``("insert", key, value,
    expires_at)``, ``("delete", key)``, ``("scan", lo, hi)`` and — for
    TTL scenarios — ``("tick", now)``. Keys/endpoints are ints or
    strings per ``scenario.key_type``; the stream depends only on
    ``(scenario, seed)``, never on who replays it, which is what lets
    the differential suite and every serving mode share one truth.
    """
    rng = _scenario_rng(scenario, seed)
    pool = _pool(scenario, rng, scenario.n_keys)  # same draw as the preload
    n_ops = scenario.n_ops if n_ops is None else int(n_ops)
    classes = [c for c in OP_CLASSES if dict(scenario.mix).get(c, 0) > 0]
    weights = np.asarray([dict(scenario.mix)[c] for c in classes], dtype=np.float64)
    weights /= weights.sum()
    if scenario.popularity == "zipfian":
        pick_w = _zipf_weights(len(pool))
        order = rng.permutation(len(pool))  # hot set is a random subset
    else:
        pick_w = None
        order = np.arange(len(pool))
    universe = scenario.effective_universe
    now = 0
    value_counter = 0

    def pick_key() -> Any:
        if rng.random() < 0.3:
            # Fresh key outside the preloaded pool.
            if scenario.key_type == "string":
                return _string_key(rng, scenario.key_width)
            return int(rng.integers(0, universe))
        idx = int(rng.choice(len(pool), p=pick_w))
        return pool[order[idx]]

    for index in range(n_ops):
        if scenario.ttl is not None and index and index % scenario.ttl.tick_every == 0:
            now += 1
            yield ("tick", now)
        kind = classes[int(rng.choice(len(classes), p=weights))]
        if kind == "probe":
            if scenario.key_type == "string":
                lo, hi = _string_range(rng, scenario.key_width)
            else:
                lo, hi = _int_range(rng, universe, scenario.range_size)
            yield ("probe", lo, hi)
        elif kind == "insert":
            expires_at = None
            if scenario.ttl is not None and rng.random() < scenario.ttl.expire_fraction:
                lt_lo, lt_hi = scenario.ttl.lifetime
                expires_at = now + int(rng.integers(lt_lo, lt_hi + 1))
            value_counter += 1
            yield ("insert", pick_key(), b"v-%d" % value_counter, expires_at)
        elif kind == "delete":
            yield ("delete", pick_key())
        else:  # scan
            if scenario.key_type == "string":
                prefix = _string_key(rng, max(1, scenario.key_width - 2))
                yield ("scan", prefix, prefix + "\x7f")
            else:
                lo, hi = _int_range(rng, universe, scenario.range_size * 8)
                yield ("scan", lo, hi)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class ScenarioReport:
    """Structured outcome of one ``(scenario, mode, seed)`` run."""

    scenario: str
    mode: str
    seed: int
    ops: int
    counts: Dict[str, int]
    checks: int
    mismatches: int
    mismatch_samples: List[Any]
    final_match: bool
    empty_probes: int
    wasted_reads: int
    fpr: float
    latency_ms: Dict[str, Dict[str, float]]
    adversary: Optional[Dict[str, Any]]
    ttl_now: int
    live_keys: int

    @property
    def ok(self) -> bool:
        """Bit-exactness verdict: zero divergences, final state equal."""
        return self.mismatches == 0 and self.final_match

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["ok"] = self.ok
        return out


def _latency_summary(samples: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for kind, xs in samples.items():
        if not xs:
            continue
        xs = sorted(xs)
        out[kind] = {
            "count": float(len(xs)),
            "mean": statistics.fmean(xs) * 1e3,
            "p50": xs[len(xs) // 2] * 1e3,
            "p99": xs[min(len(xs) - 1, (len(xs) * 99) // 100)] * 1e3,
        }
    return out


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def run_scenario(
    scenario: "Scenario | str",
    *,
    mode: str = "engine",
    seed: int = 0,
    num_threads: int = 4,
    scale: float = 1.0,
    keep_engine: bool = False,
) -> ScenarioReport:
    """Drive one scenario against one serving mode, differentially.

    Deterministic given ``(scenario, seed, scale)`` — the op stream and
    every expected verdict are; latencies of course are not. The engine
    (and service/server, per mode) is built, preloaded, driven with
    probes batched per ``scenario.batch_window``, TTL-ticked, optionally
    attacked, then torn down with a final bit-exact state comparison
    against the oracle. ``scale`` multiplies ``n_keys``/``n_ops`` (the
    benchmark's ``REPRO_SCALE`` hook); ``keep_engine`` is for debugging
    (skips the directory cleanup of persistent modes).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario.validate()
    if mode not in MODES:
        raise InvalidParameterError(f"unknown mode {mode!r}; choose from {MODES}")
    if mode not in scenario.modes():
        raise InvalidParameterError(
            f"scenario {scenario.name!r} does not support mode {mode!r} "
            f"(supported: {scenario.modes()})"
        )
    if scale <= 0:
        raise InvalidParameterError("scale must be positive")
    if scale != 1.0:
        scenario = Scenario(**{
            **asdict(scenario),
            "ttl": scenario.ttl,  # asdict deep-copies into a plain dict
            "n_keys": max(64, int(scenario.n_keys * scale)),
            "n_ops": max(128, int(scenario.n_ops * scale)),
        })

    from repro.engine import ShardedEngine
    from repro.engine.service import RangeQueryService
    from repro.filters.registry import FilterSpec

    codec = None
    if scenario.key_type == "string":
        from repro.core.strings import StringKeyCodec

        codec = StringKeyCodec(width=scenario.key_width)
    universe = scenario.effective_universe
    spec = FilterSpec(
        backend=scenario.filter_backend,
        bits_per_key=16,
        max_range_size=max(64, scenario.range_size * 4),
        seed=seed,
    )
    # Persistence (WAL + checkpoints) backs the persistent and
    # process-worker modes; the front door serves an in-memory engine.
    directory = tempfile.mkdtemp(prefix="repro-scn-") if (
        mode in ("persistent", "service-process")
    ) else None

    def build_engine(path):
        return ShardedEngine(
            universe,
            num_shards=4,
            memtable_limit=128,
            filter_spec=spec,
            compaction="leveled",
            directory=path,
            key_codec=codec,
        )

    engine = build_engine(directory)
    service = None
    client = None
    handle = None
    oracle = ScenarioOracle()
    counts = {c: 0 for c in OP_CLASSES}
    counts["tick"] = 0
    latencies: Dict[str, List[float]] = {c: [] for c in OP_CLASSES}
    mismatches = 0
    mismatch_samples: List[Any] = []
    checks = 0
    empty_probes = 0
    pending: List[Tuple[Any, Any]] = []
    adversary_report: Optional[Dict[str, Any]] = None

    def record_mismatch(sample: Any) -> None:
        nonlocal mismatches
        mismatches += 1
        if len(mismatch_samples) < 8:
            mismatch_samples.append(sample)

    try:
        if mode in ("service", "service-process"):
            service = RangeQueryService(
                engine,
                num_threads=num_threads,
                cache_blocks=1024,
                mode="process" if mode == "service-process" else "thread",
                num_workers=2 if mode == "service-process" else None,
            )
        elif mode == "net":
            from repro.net import ServerConfig, serve_in_thread
            from repro.net.client import SyncClient

            service = RangeQueryService(engine, num_threads=num_threads)
            handle = serve_in_thread(
                service, config=ServerConfig(batch_window=200e-6)
            )
            client = SyncClient(handle.host, handle.port)

        front = client if client is not None else (service or engine)
        if codec is not None:
            front = (service or engine).strings

        def apply_put(key, value, expires_at):
            if client is not None:
                client.put(key, value)
            else:
                front.put(key, value, expires_at=expires_at)
            oracle.put(
                codec.decode_key(codec.encode_key(key)) if codec else key,
                value, expires_at,
            )

        def apply_delete(key):
            front.delete(key)
            oracle.delete(
                codec.decode_key(codec.encode_key(key)) if codec else key
            )

        def drain_probes():
            nonlocal checks, empty_probes
            if not pending:
                return
            los = [lo for lo, _ in pending]
            his = [hi for _, hi in pending]
            t0 = time.perf_counter()
            got = front.batch_range_empty(los, his)
            latencies["probe"].append(
                (time.perf_counter() - t0) / len(pending)
            )
            for (lo, hi), verdict in zip(pending, got):
                want = oracle.range_empty(
                    *(
                        (_canon(codec, lo), _canon(codec, hi))
                        if codec else (lo, hi)
                    )
                )
                checks += 1
                empty_probes += int(want)
                if bool(verdict) != want:
                    record_mismatch(("probe", lo, hi, bool(verdict), want))
            pending.clear()

        # ------------------------------------------------------------
        # Preload
        # ------------------------------------------------------------
        for key, value in scenario_preload(scenario, seed):
            apply_put(key, value, None)

        # ------------------------------------------------------------
        # Driven phase
        # ------------------------------------------------------------
        ops = list(scenario_ops(scenario, seed))
        reopen_at = len(ops) // 2 if mode == "persistent" else None
        checkpoint_at = (
            {len(ops) // 3, (2 * len(ops)) // 3}
            if mode in ("persistent", "service-process")
            else set()
        )
        for index, op in enumerate(ops):
            if index in checkpoint_at:
                drain_probes()
                (service or engine).checkpoint()
            if index == reopen_at:
                # Crash-style reopen: no shutdown checkpoint, so the WAL
                # tail (including TTL clock records) replays.
                drain_probes()
                engine.close(checkpoint=False)
                engine = ShardedEngine.open(directory)
                front = engine.strings if codec is not None else engine
            kind = op[0]
            counts[kind] += 1
            if kind == "probe":
                pending.append((op[1], op[2]))
                if len(pending) >= scenario.batch_window:
                    drain_probes()
            elif kind == "insert":
                t0 = time.perf_counter()
                apply_put(op[1], op[2], op[3])
                latencies["insert"].append(time.perf_counter() - t0)
            elif kind == "delete":
                t0 = time.perf_counter()
                apply_delete(op[1])
                latencies["delete"].append(time.perf_counter() - t0)
            elif kind == "scan":
                lo, hi = op[1], op[2]
                t0 = time.perf_counter()
                got = front.range_scan(lo, hi)
                latencies["scan"].append(time.perf_counter() - t0)
                want = oracle.scan(
                    *((_canon(codec, lo), _canon(codec, hi)) if codec else (lo, hi))
                )
                checks += 1
                if [(k, v) for k, v in got] != want:
                    record_mismatch(("scan", lo, hi, len(got), len(want)))
            else:  # tick
                (service or engine).advance_clock(op[1])
                oracle.advance(op[1])
        drain_probes()

        # ------------------------------------------------------------
        # Adversary epilogue
        # ------------------------------------------------------------
        if scenario.adversary:
            from repro.workloads.adversary import AdaptiveAdversary

            live = oracle.live_keys()
            attacker = AdaptiveAdversary(
                np.asarray(live, dtype=np.uint64), leaked_fraction=0.25, seed=seed
            )
            attacked = service if service is not None else engine
            attack = attacker.attack_system(
                attacked,
                universe=universe,
                rounds=5,
                queries_per_round=100,
                range_size=scenario.range_size,
            )
            adversary_report = {
                "rounds": len(attack.per_round_fpr),
                "first_round_fpr": attack.per_round_fpr[0],
                "last_round_fpr": attack.per_round_fpr[-1],
                "per_round_fpr": list(attack.per_round_fpr),
            }

        # ------------------------------------------------------------
        # Teardown + final bit-exact state comparison
        # ------------------------------------------------------------
        if client is not None:
            client.close()
            client = None
        if handle is not None:
            handle.stop()
            handle = None
        if service is not None:
            service.wait_for_compactions()
            service.close()
            service = None
        engine.drain_compactions()
        final = engine.range_scan(0, universe - 1)
        if codec is not None:
            final = [(codec.decode_key(k), v) for k, v in final]
        final_match = final == oracle.items()
        if not final_match and len(mismatch_samples) < 8:
            mismatch_samples.append(
                ("final", len(final), len(oracle.items()))
            )
        stats = engine.stats
        return ScenarioReport(
            scenario=scenario.name,
            mode=mode,
            seed=seed,
            ops=len(ops),
            counts=counts,
            checks=checks,
            mismatches=mismatches,
            mismatch_samples=mismatch_samples,
            final_match=final_match,
            empty_probes=empty_probes,
            wasted_reads=int(stats.wasted_reads),
            fpr=float(stats.waste_ratio),
            latency_ms=_latency_summary(latencies),
            adversary=adversary_report,
            ttl_now=oracle.now,
            live_keys=len(oracle.items()),
        )
    finally:
        if client is not None:
            client.close()
        if handle is not None:
            handle.stop()
        if service is not None:
            service.close()
        if engine._wal is not None:
            engine._wal.close()
        if directory is not None and not keep_engine:
            shutil.rmtree(directory, ignore_errors=True)


def _canon(codec, endpoint):
    """Oracle-side canonical bytes for a string endpoint.

    Probe/scan endpoints the stream generates are width-capped, so the
    codec's exact round-trip applies; the oracle then compares plain
    bytes order, which matches the encoded integer order exactly.
    """
    raw = endpoint.encode("utf-8") if isinstance(endpoint, str) else bytes(endpoint)
    return raw


def run_matrix(
    names: Sequence[str],
    modes: Sequence[str],
    *,
    seed: int = 0,
    num_threads: int = 4,
    scale: float = 1.0,
) -> List[ScenarioReport]:
    """Run every ``(scenario, mode)`` pair that the scenario supports."""
    reports: List[ScenarioReport] = []
    for name in names:
        scenario = get_scenario(name)
        for mode in modes:
            if mode not in scenario.modes():
                continue
            reports.append(run_scenario(
                scenario, mode=mode, seed=seed,
                num_threads=num_threads, scale=scale,
            ))
    return reports
