"""Adversarial query generation (§1, §6.2, §6.7).

The paper's security argument: "malicious users can artificially issue
[correlated] queries with just the knowledge of (a subset of) the keys",
driving heuristic filters' FPR towards 1 and turning the filter into an
availability risk for the system it protects. This module implements that
adversary in two strengths:

* :class:`KeyKnowledgeAdversary` — knows a subset of the keys and issues
  empty ranges hugging them from the right (the Correlated workload with
  ``D = 1``, but constructed deterministically from leaked keys);
* :class:`AdaptiveAdversary` — additionally observes the filter's
  answers and re-issues (neighbourhoods of) queries that were false
  positives, amplifying load on the backing store. Against Grafite the
  amplification is provably useless (the FPR bound is per-query and
  distribution-free); against heuristic filters it locks onto their weak
  regions.

Both operate on a bare :class:`~repro.filters.base.RangeFilter`;
:meth:`AdaptiveAdversary.attack_system` replays the same adaptive loop
against a *served engine* (a :class:`~repro.engine.ShardedEngine` or
the :class:`~repro.engine.service.RangeQueryService` in front of one),
where the attacker no longer sees filter verdicts — the served answers
are exact — but observes the I/O ledger instead: a crafted empty range
that costs the system a wasted run read is a confirmed filter false
positive, which is precisely the availability attack of §1/§6.7.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter
from repro.workloads.queries import intersects

Query = Tuple[int, int]


class KeyKnowledgeAdversary:
    """Issues empty query ranges adjacent to leaked keys.

    Parameters
    ----------
    full_keys:
        The complete key set (used only to guarantee emptiness, playing
        the role of the ground truth the experiment checks against).
    leaked_fraction:
        Fraction of keys the adversary knows (``> 0``).
    """

    def __init__(
        self,
        full_keys: Sequence[int] | np.ndarray,
        leaked_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0 < leaked_fraction <= 1:
            raise InvalidParameterError("leaked_fraction must be in (0, 1]")
        self._keys = np.sort(np.asarray(full_keys, dtype=np.uint64))
        if self._keys.size == 0:
            raise InvalidParameterError("adversary needs a non-empty key set")
        rng = np.random.default_rng(seed)
        count = max(1, int(self._keys.size * leaked_fraction))
        picks = rng.choice(self._keys.size, size=count, replace=False)
        self._leaked = np.sort(self._keys[picks])
        self._rng = rng

    @property
    def leaked_key_count(self) -> int:
        return int(self._leaked.size)

    def craft_queries(self, n_queries: int, range_size: int, universe: int) -> List[Query]:
        """Empty ranges starting right after leaked keys."""
        out: List[Query] = []
        attempts = 0
        limit = n_queries * 200
        while len(out) < n_queries and attempts < limit:
            attempts += 1
            k = int(self._leaked[self._rng.integers(0, self._leaked.size)])
            lo = k + 1
            hi = lo + range_size - 1
            if hi >= universe or intersects(self._keys, lo, hi):
                continue
            out.append((lo, hi))
        if len(out) < n_queries:
            raise InvalidParameterError(
                "could not craft enough adversarial queries (key set too dense)"
            )
        return out


class AdaptiveAdversary(KeyKnowledgeAdversary):
    """Observes filter answers and re-targets confirmed false positives."""

    def attack(
        self,
        target: RangeFilter,
        rounds: int,
        queries_per_round: int,
        range_size: int,
    ) -> "AttackReport":
        """Run an adaptive attack; returns per-round false-positive rates.

        Round 1 issues crafted correlated queries; later rounds re-issue
        perturbed variants of the queries that came back "not empty"
        (confirmed false positives, since all crafted queries are empty).
        """
        if rounds < 1 or queries_per_round < 1:
            raise InvalidParameterError("rounds and queries_per_round must be >= 1")
        universe = target.universe
        per_round_fpr: List[float] = []
        hot: List[Query] = []
        for _ in range(rounds):
            batch: List[Query] = []
            while hot and len(batch) < queries_per_round:
                lo, hi = hot.pop()
                jitter = int(self._rng.integers(0, max(1, range_size // 2)))
                lo2, hi2 = lo + jitter, hi + jitter
                if hi2 < universe and not intersects(self._keys, lo2, hi2):
                    batch.append((lo2, hi2))
            if len(batch) < queries_per_round:
                batch.extend(
                    self.craft_queries(queries_per_round - len(batch), range_size, universe)
                )
            false_positives = 0
            next_hot: List[Query] = []
            for lo, hi in batch:
                if target.may_contain_range(lo, hi):
                    false_positives += 1
                    next_hot.append((lo, hi))
            per_round_fpr.append(false_positives / len(batch))
            hot = next_hot
        return AttackReport(per_round_fpr)

    def attack_system(
        self,
        target,
        *,
        universe: int,
        rounds: int,
        queries_per_round: int,
        range_size: int,
    ) -> "AttackReport":
        """Adaptive attack against a served engine, driven by its I/O.

        ``target`` is anything with the engine's probe surface — a
        ``range_empty(lo, hi)`` method and a ``stats``
        :class:`~repro.lsm.store.IoStats` ledger (the
        :class:`~repro.engine.ShardedEngine` and the
        :class:`~repro.engine.service.RangeQueryService` both qualify).
        The served answer itself is always exact, so the adversary keys
        on the *wasted-read delta* per probe: a crafted empty range that
        made some run's filter say "maybe" forced the system to read and
        discard — the per-probe I/O amplification of §6.7. Rates are
        fractions of probes causing at least one wasted read, so the
        report is comparable with :meth:`attack` on a bare filter.
        """
        if rounds < 1 or queries_per_round < 1:
            raise InvalidParameterError("rounds and queries_per_round must be >= 1")
        per_round_fpr: List[float] = []
        hot: List[Query] = []
        for _ in range(rounds):
            batch: List[Query] = []
            while hot and len(batch) < queries_per_round:
                lo, hi = hot.pop()
                jitter = int(self._rng.integers(0, max(1, range_size // 2)))
                lo2, hi2 = lo + jitter, hi + jitter
                if hi2 < universe and not intersects(self._keys, lo2, hi2):
                    batch.append((lo2, hi2))
            if len(batch) < queries_per_round:
                batch.extend(
                    self.craft_queries(
                        queries_per_round - len(batch), range_size, universe
                    )
                )
            amplified = 0
            next_hot: List[Query] = []
            for lo, hi in batch:
                wasted_before = target.stats.wasted_reads
                is_empty = target.range_empty(lo, hi)
                if not is_empty:  # pragma: no cover - crafted queries are empty
                    raise InvalidParameterError(
                        f"crafted query [{lo}, {hi}] was not empty"
                    )
                if target.stats.wasted_reads > wasted_before:
                    amplified += 1
                    next_hot.append((lo, hi))
            per_round_fpr.append(amplified / len(batch))
            hot = next_hot
        return AttackReport(per_round_fpr)


class AttackReport:
    """Outcome of an adaptive attack: FPR per round."""

    def __init__(self, per_round_fpr: List[float]) -> None:
        self.per_round_fpr = per_round_fpr

    @property
    def final_fpr(self) -> float:
        return self.per_round_fpr[-1]

    @property
    def amplification(self) -> float:
        """Ratio of last-round to first-round FPR (1.0 = no lock-on)."""
        first = self.per_round_fpr[0]
        return self.final_fpr / first if first > 0 else float("inf") if self.final_fpr else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rates = ", ".join(f"{r:.3f}" for r in self.per_round_fpr)
        return f"AttackReport([{rates}])"
