"""Exception hierarchy for the Grafite reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause,
while still being able to distinguish configuration mistakes
(:class:`InvalidParameterError`) from data problems
(:class:`InvalidKeyError`, :class:`InvalidQueryError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidParameterError(ReproError, ValueError):
    """A construction parameter is out of its documented domain.

    Examples: a non-positive universe, ``eps`` outside ``(0, 1)``, a space
    budget too small to hold the mandatory per-key overhead.
    """


class InvalidKeyError(ReproError, ValueError):
    """An input key is outside the declared universe or of the wrong type."""


class InvalidQueryError(ReproError, ValueError):
    """A query range is malformed (e.g. ``lo > hi`` or out of universe)."""


class NotSupportedError(ReproError, NotImplementedError):
    """The requested operation is not supported by this filter variant."""


class CorruptionError(ReproError):
    """Persisted state failed an integrity check (checksum, structure).

    Raised when a run blob, manifest, or other persisted artifact does
    not match its recorded crc32 or cannot be parsed. The storage layer
    *never* serves data that failed verification — recovery either rolls
    back to the last intact checkpoint epoch or surfaces this error, but
    a corrupt byte must not become a silently wrong query answer.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """A per-request deadline elapsed before the operation completed.

    Subclasses :class:`TimeoutError` so generic timeout handling catches
    it, and :class:`ReproError` so library-aware callers can treat it as
    one of ours. Retryable under the network clients'
    :class:`~repro.net.client.RetryPolicy` — the request may simply have
    hit a stalled server or a slow network, and retrying an emptiness
    probe or idempotent mutation is safe.
    """


class ConfigError(InvalidParameterError):
    """A system-level configuration is inconsistent with persisted state.

    Raised, for example, when a snapshot whose runs were built *with*
    filters is reopened without a way to restore them (no serialized
    blob and no ``filter_factory``): silently continuing would produce
    filterless runs that answer correctly but read every run on every
    probe — a performance cliff the operator should opt into explicitly
    rather than discover in production.
    """
