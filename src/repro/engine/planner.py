"""Batch query planner: rewrite passes, negative-result cache, cost model.

The columnar batch path (:mod:`repro.engine.batch`) executes whatever
the caller hands it, verbatim. Skewed serving traffic — the Zipfian
batches the net front door's batching windows coalesce — is full of
exact duplicates and overlapping near-duplicates, and a range-emptiness
workload has a property no key-value cache enjoys: emptiness verdicts
*compose*. An empty covering range proves every contained range empty,
and "``[a, b]`` was empty" stays true for as long as the shard's run
set is unchanged and no memtable write landed inside ``[a, b]``. The
planner exploits both, as a pipeline of discrete passes in front of
the executor (the staged rewrite/optimize shape of a SQL planner,
applied to range-emptiness batches):

1. **rewrite** — :func:`plan_batch` lexsorts the batch, folds exact
   duplicates, and merges overlapping/*adjacent* unique ranges into
   disjoint covering segments. The executor is asked about covers; an
   empty cover's verdict scatters to every member for free, a
   non-empty cover triggers a second round that re-asks only its
   members (sole-member covers are already exact). All numpy, no
   per-query python objects.
2. **negative cache** — :class:`NegativeRangeCache`, a per-shard
   sorted-disjoint-interval structure of ranges proven empty, tagged
   with the shard's :attr:`~repro.lsm.store.LSMStore.runs_version` at
   the time of proof. A hit requires the tag to match the shard's
   *current* version (flush/compaction bump it, evicting wholesale)
   and the current memtable to have no entry — live or tombstone —
   inside the queried range (writes do not bump the version; the
   overlap check is what makes replaying a cached verdict exact).
   Containment counts: a cached ``[0, 100]`` answers ``[10, 20]``.
3. **cost model** — :class:`CostModel` picks scalar / columnar /
   process-mode execution for each per-shard sub-batch from its size,
   duplicate ratio, and memtable-overlap fraction, replacing the
   service's hardcoded "process iff workers exist" dispatch.

Exactness is preserved end to end: every verdict the planner emits is
either the executor's own answer or a cached/covering verdict whose
validity conditions are checked at hit time. The hypothesis
equivalence suite and the planner-enabled differential streams hold it
to that.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ContextManager, Dict, Optional, Tuple

import numpy as np

from repro.engine.batch import memtable_overlaps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.engine import ShardedEngine

#: Answers a (lo, hi) column pair with an exact emptiness column.
Executor = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Yields a held read guard for one shard (the service's RWLock).
LockProvider = Callable[[int], ContextManager[None]]


def _merge_intervals(
    los: np.ndarray, his: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge inclusive uint64 intervals into sorted disjoint covers.

    Overlapping *and adjacent* intervals coalesce (``[0, 5]`` and
    ``[6, 10]`` become ``[0, 10]``): for emptiness semantics the union
    of empty ranges is empty, and a denser cover answers more
    containment probes. The adjacency test is uint64-overflow-safe —
    the subtraction only runs where ``lo > prev_hi`` already holds.
    """
    m = int(los.size)
    if m == 0:
        return los.astype(np.uint64), his.astype(np.uint64)
    order = np.argsort(los, kind="stable")
    los, his = los[order], his[order]
    cummax = np.maximum.accumulate(his)
    starts = np.ones(m, dtype=bool)
    if m > 1:
        prev = cummax[:-1]
        gt = los[1:] > prev
        gap = np.zeros(m - 1, dtype=bool)
        gap[gt] = (los[1:][gt] - prev[gt]) > np.uint64(1)
        starts[1:] = gap
    idx = np.flatnonzero(starts)
    ends = np.concatenate((idx[1:], [m])) - 1
    return los[idx], cummax[ends]


@dataclass(frozen=True)
class BatchPlan:
    """The rewrite pass's output: dedup map plus covering segments.

    ``uniq_lo`` / ``uniq_hi`` are the distinct (lo, hi) pairs of the
    batch in lexicographic order; ``inverse`` scatters unique verdicts
    back to original positions. ``cover_of[u]`` names the disjoint
    covering segment (``cover_lo`` / ``cover_hi``) containing unique
    pair ``u``; covers merge overlapping *and adjacent* uniques, so an
    empty cover proves every member empty while a non-empty cover only
    means "some member *might* be non-empty" — the planner re-asks
    those members individually.
    """

    uniq_lo: np.ndarray   # uint64 distinct lower bounds, lexsorted
    uniq_hi: np.ndarray   # uint64 distinct upper bounds
    inverse: np.ndarray   # int64, original position -> unique index
    cover_of: np.ndarray  # int64, unique index -> cover index
    cover_lo: np.ndarray  # uint64 disjoint cover lower bounds, sorted
    cover_hi: np.ndarray  # uint64 disjoint cover upper bounds
    n_queries: int

    @property
    def n_unique(self) -> int:
        """Distinct (lo, hi) pairs in the batch."""
        return int(self.uniq_lo.size)

    @property
    def n_covers(self) -> int:
        """Disjoint covering segments after the merge pass."""
        return int(self.cover_lo.size)

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of the batch that is an exact duplicate."""
        if self.n_queries == 0:
            return 0.0
        return 1.0 - self.n_unique / self.n_queries


def plan_batch(los: np.ndarray, his: np.ndarray) -> BatchPlan:
    """The rewrite pass: dedup + cover-merge one validated batch.

    Pure and allocation-lean: one ``lexsort`` for the dedup, one
    ``cummax`` sweep for the merge. Inputs must already be uint64
    columns with ``lo <= hi`` (the caller runs
    :func:`~repro.engine.batch.validate_batch_bounds` first).
    """
    n = int(los.size)
    if n == 0:
        empty_u = np.zeros(0, dtype=np.uint64)
        empty_i = np.zeros(0, dtype=np.int64)
        return BatchPlan(empty_u, empty_u, empty_i, empty_i, empty_u,
                         empty_u, 0)
    order = np.lexsort((his, los))
    slo, shi = los[order], his[order]
    new = np.ones(n, dtype=bool)
    if n > 1:
        new[1:] = (slo[1:] != slo[:-1]) | (shi[1:] != shi[:-1])
    uidx = np.flatnonzero(new)
    uniq_lo, uniq_hi = slo[uidx], shi[uidx]
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.cumsum(new) - 1
    # Covers over the (already sorted, distinct) unique pairs: the same
    # cummax sweep as _merge_intervals, but keeping the member map.
    m = int(uniq_lo.size)
    cummax = np.maximum.accumulate(uniq_hi)
    starts = np.ones(m, dtype=bool)
    if m > 1:
        prev = cummax[:-1]
        gt = uniq_lo[1:] > prev
        gap = np.zeros(m - 1, dtype=bool)
        gap[gt] = (uniq_lo[1:][gt] - prev[gt]) > np.uint64(1)
        starts[1:] = gap
    cover_of = (np.cumsum(starts) - 1).astype(np.int64)
    sidx = np.flatnonzero(starts)
    ends = np.concatenate((sidx[1:], [m])) - 1
    return BatchPlan(
        uniq_lo=uniq_lo,
        uniq_hi=uniq_hi,
        inverse=inverse,
        cover_of=cover_of,
        cover_lo=uniq_lo[sidx],
        cover_hi=cummax[ends],
        n_queries=n,
    )


class NegativeRangeCache:
    """Per-shard intervals proven empty at a pinned ``runs_version``.

    Each shard's entry is ``(version, los, his)`` — sorted disjoint
    inclusive intervals, every one proven empty while the shard's run
    set was at ``version``. Lookup is a single ``searchsorted``
    containment probe per column. The structure is deliberately
    version-monotone: recording at an older version than the stored
    entry is dropped (stale proof), recording at a newer version
    replaces the entry wholesale (the old proofs died with the old run
    set). ``capacity`` bounds per-shard interval count; on overflow the
    widest intervals survive (they answer the most containment probes).

    Thread safety: mutation is serialised by an internal mutex and
    entries are replaced atomically (tuples are never mutated in
    place), so lock-free readers see either the old or the new entry.
    Counters are best-effort under races, like
    :class:`~repro.lsm.store.IoStats`.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._capacity = int(capacity)
        self._mutex = threading.Lock()
        self._shards: Dict[int, Tuple[int, np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.invalidations = 0

    def lookup(
        self, sid: int, version: int, q_lo: np.ndarray, q_hi: np.ndarray
    ) -> np.ndarray:
        """Containment mask: which queries a current-version interval covers.

        Callers must hold the shard steady (the service's read lock)
        and still apply the memtable-overlap check before trusting a
        hit — the cache knows nothing about unflushed writes.
        """
        out = np.zeros(int(q_lo.size), dtype=bool)
        entry = self._shards.get(sid)
        if entry is None or entry[0] != version:
            self.misses += int(q_lo.size)
            return out
        _, clos, chis = entry
        idx = np.searchsorted(clos, q_lo, side="right") - 1
        ok = idx >= 0
        out[ok] = chis[idx[ok]] >= q_hi[ok]
        n_hit = int(out.sum())
        self.hits += n_hit
        self.misses += int(q_lo.size) - n_hit
        return out

    def record(
        self, sid: int, version: int, q_lo: np.ndarray, q_hi: np.ndarray
    ) -> None:
        """Fold freshly proven-empty intervals into the shard's entry.

        ``version`` is the shard's ``runs_version`` captured *before*
        the proving execution started: if a flush raced the execution
        the entry is tagged older than the live version and can never
        hit — conservative, never wrong.
        """
        if q_lo.size == 0 or self._capacity <= 0:
            return
        with self._mutex:
            entry = self._shards.get(sid)
            if entry is not None and entry[0] > version:
                return  # proofs predate the stored run set: stale
            if entry is not None and entry[0] == version:
                clos = np.concatenate((entry[1], q_lo))
                chis = np.concatenate((entry[2], q_hi))
            else:
                if entry is not None:
                    self.invalidations += 1
                clos, chis = q_lo, q_hi
            mlos, mhis = _merge_intervals(clos, chis)
            if mlos.size > self._capacity:
                widths = mhis - mlos  # uint64 widths, inclusive - 1
                keep = np.sort(
                    np.argsort(widths, kind="stable")[-self._capacity:]
                )
                mlos, mhis = mlos[keep], mhis[keep]
            self._shards[sid] = (int(version), mlos, mhis)
            self.insertions += int(q_lo.size)

    def drop_shard(self, sid: int) -> None:
        """Forget one shard's intervals (manual invalidation hook)."""
        with self._mutex:
            if self._shards.pop(sid, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        """Forget everything; counters keep accumulating."""
        with self._mutex:
            self._shards.clear()

    @property
    def n_intervals(self) -> int:
        """Total intervals held across shards right now."""
        return sum(entry[1].size for entry in self._shards.values())

    @property
    def hit_rate(self) -> float:
        """Lifetime hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CostModel:
    """Chooses how a per-shard sub-batch executes.

    ``scalar_cutoff``: at or below this many *distinct* queries the
    python loop beats the columnar kernel's setup cost (a handful of
    searchsorteds loses to numpy dispatch overhead).
    ``process_floor``: below this many distinct queries the process
    pool's per-batch marshalling round-trip is not amortised.
    ``overlap_ceiling``: above this memtable-overlap fraction a process
    worker would bounce most queries back to the local exact path
    anyway (snapshot workers cannot see unflushed writes), so the
    round-trip buys nothing.
    """

    scalar_cutoff: int = 8
    process_floor: int = 64
    overlap_ceiling: float = 0.5

    def choose(
        self,
        *,
        batch_size: int,
        duplicate_ratio: float = 0.0,
        memtable_overlap: float = 0.0,
        process_available: bool = False,
    ) -> str:
        """Pick ``"scalar"`` / ``"columnar"`` / ``"process"`` for a sub-batch.

        ``duplicate_ratio`` discounts the effective size: the columnar
        kernel and the process round-trip pay per row, but after the
        planner's rewrite the rows worth paying for are the distinct
        ones.
        """
        distinct = batch_size * (1.0 - duplicate_ratio)
        if distinct <= self.scalar_cutoff:
            return "scalar"
        if (
            process_available
            and distinct >= self.process_floor
            and memtable_overlap <= self.overlap_ceiling
        ):
            return "process"
        return "columnar"


def duplicate_ratio(los: np.ndarray, his: np.ndarray) -> float:
    """Fraction of exact-duplicate (lo, hi) pairs in a column pair."""
    n = int(los.size)
    if n < 2:
        return 0.0
    order = np.lexsort((his, los))
    slo, shi = los[order], his[order]
    n_uniq = 1 + int(
        np.count_nonzero((slo[1:] != slo[:-1]) | (shi[1:] != shi[:-1]))
    )
    return 1.0 - n_uniq / n


class BatchPlanner:
    """The discrete-pass batch optimizer in front of the executor.

    Attach one to a :class:`~repro.engine.engine.ShardedEngine` (via
    :meth:`~repro.engine.engine.ShardedEngine.attach_planner`); the
    engine's and service's ``batch_range_empty`` then run every batch
    through :meth:`execute`. ``merge=False`` keeps the dedup pass but
    skips cover-merging; ``cache_capacity=0`` disables the negative
    cache. One planner serves one engine — the cache is keyed by shard
    id and tagged by that engine's shards' ``runs_version``.
    """

    def __init__(
        self,
        *,
        merge: bool = True,
        cache_capacity: int = 4096,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.merge = bool(merge)
        self.cost_model = cost_model or CostModel()
        self._cache: Optional[NegativeRangeCache] = (
            NegativeRangeCache(cache_capacity) if cache_capacity > 0 else None
        )
        self._engine: Optional["ShardedEngine"] = None
        # Best-effort counters (IoStats-style) for stats_snapshot().
        self._batches = 0
        self._queries = 0
        self._duplicates_folded = 0
        self._covers_merged = 0
        self._executed_probes = 0
        self._reasked = 0
        self._mode_counts: Dict[str, int] = {
            "scalar": 0, "columnar": 0, "process": 0,
        }

    # -- lifecycle ----------------------------------------------------

    def attach(self, engine: "ShardedEngine") -> None:
        """Bind to the engine whose shards version the negative cache."""
        if self._engine is not None and self._engine is not engine:
            # A different engine's runs_versions mean nothing here.
            if self._cache is not None:
                self._cache.clear()
        self._engine = engine

    def detach(self) -> None:
        """Unbind; drops all cached intervals."""
        self._engine = None
        if self._cache is not None:
            self._cache.clear()

    @property
    def cache(self) -> Optional[NegativeRangeCache]:
        """The negative cache, or ``None`` when disabled."""
        return self._cache

    # -- the planned execution path -----------------------------------

    def execute(
        self,
        los: np.ndarray,
        his: np.ndarray,
        executor: Executor,
        *,
        lock_provider: Optional[LockProvider] = None,
    ) -> np.ndarray:
        """Answer a validated batch through the pass pipeline.

        ``executor`` answers a (possibly rewritten) column pair exactly
        — the engine's raw columnar path or the service's locking
        fan-out. ``lock_provider`` (the service passes its per-shard
        read-lock guards) makes cache consultation safe against
        concurrent flush/compaction; without one, single-threaded
        callers get plain no-op guards. Returns the per-query verdict
        column, bit-identical to what the executor alone would return.
        """
        n = int(los.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        self._batches += 1
        self._queries += n
        plan = plan_batch(los, his)
        self._duplicates_folded += n - plan.n_unique
        locks: LockProvider = lock_provider or (
            lambda sid: contextlib.nullcontext()
        )
        versions = self._versions_snapshot()
        if self.merge:
            self._covers_merged += plan.n_unique - plan.n_covers
            cover_empty = self._answer(
                plan.cover_lo, plan.cover_hi, executor, locks, versions
            )
            uniq_empty = cover_empty[plan.cover_of]
            members = np.bincount(plan.cover_of, minlength=plan.n_covers)
            # A non-empty multi-member cover proves nothing about its
            # members; re-ask exactly those. Sole members *are* their
            # cover, so their verdict is already exact.
            need = np.flatnonzero(~uniq_empty & (members[plan.cover_of] > 1))
            if need.size:
                self._reasked += int(need.size)
                uniq_empty[need] = self._answer(
                    plan.uniq_lo[need], plan.uniq_hi[need],
                    executor, locks, versions,
                )
        else:
            uniq_empty = self._answer(
                plan.uniq_lo, plan.uniq_hi, executor, locks, versions
            )
        return uniq_empty[plan.inverse]

    def _answer(
        self,
        q_lo: np.ndarray,
        q_hi: np.ndarray,
        executor: Executor,
        locks: LockProvider,
        versions: Dict[int, int],
    ) -> np.ndarray:
        """Cache-consult, execute the remainder, record fresh empties."""
        out = np.zeros(int(q_lo.size), dtype=bool)
        known = np.zeros(int(q_lo.size), dtype=bool)
        if self._cache is not None and self._engine is not None:
            hits = self._consult(q_lo, q_hi, locks)
            out[hits] = True
            known[hits] = True
        todo = np.flatnonzero(~known)
        if todo.size:
            result = np.asarray(executor(q_lo[todo], q_hi[todo]), dtype=bool)
            out[todo] = result
            self._executed_probes += int(todo.size)
            if self._cache is not None and self._engine is not None:
                proved = result
                if proved.any():
                    self._record_empties(
                        q_lo[todo][proved], q_hi[todo][proved], versions
                    )
        return out

    def _consult(
        self, q_lo: np.ndarray, q_hi: np.ndarray, locks: LockProvider
    ) -> np.ndarray:
        """Which queries the negative cache answers *right now*.

        Per owning shard, under that shard's read guard: the stored
        version must equal the live ``runs_version`` and the live
        memtable must have no entry in the queried range — the two
        conditions that keep a replayed "empty" exact. Straddlers
        (sid -1) are never consulted; they cross version domains.
        """
        hits = np.zeros(int(q_lo.size), dtype=bool)
        sids = self._shard_ids(q_lo, q_hi)
        for sid in np.unique(sids[sids >= 0]):
            mask = sids == sid
            store = self._engine.shards[int(sid)]
            with locks(int(sid)):
                found = self._cache.lookup(
                    int(sid), store.runs_version, q_lo[mask], q_hi[mask]
                )
                if found.any():
                    pos = np.flatnonzero(found)
                    overlap = memtable_overlaps(
                        store, q_lo[mask][pos], q_hi[mask][pos]
                    )
                    found[pos[overlap]] = False
            hits[np.flatnonzero(mask)[found]] = True
        return hits

    def _record_empties(
        self,
        q_lo: np.ndarray,
        q_hi: np.ndarray,
        versions: Dict[int, int],
    ) -> None:
        """Cache proven-empty single-shard ranges at pre-execution versions."""
        sids = self._shard_ids(q_lo, q_hi)
        for sid in np.unique(sids[sids >= 0]):
            mask = sids == sid
            self._cache.record(
                int(sid), versions[int(sid)], q_lo[mask], q_hi[mask]
            )

    def _shard_ids(self, q_lo: np.ndarray, q_hi: np.ndarray) -> np.ndarray:
        """Owning shard per query; -1 marks shard-straddling ranges."""
        router = self._engine.router
        if router.num_shards == 1:
            return np.zeros(int(q_lo.size), dtype=np.int64)
        width = np.uint64(router.shard_width)
        sid_lo = (q_lo // width).astype(np.int64)
        sid_hi = (q_hi // width).astype(np.int64)
        return np.where(sid_lo == sid_hi, sid_lo, np.int64(-1))

    def _versions_snapshot(self) -> Dict[int, int]:
        """Every shard's ``runs_version`` before execution starts.

        Tagging cache entries with the *pre*-execution version makes a
        racing flush strictly conservative: the entry lands with an
        older tag than the live version and simply never hits.
        """
        if self._engine is None:
            return {}
        return {
            sid: store.runs_version
            for sid, store in enumerate(self._engine.shards)
        }

    # -- service integration ------------------------------------------

    def choose_mode(
        self,
        store,
        q_lo: np.ndarray,
        q_hi: np.ndarray,
        *,
        process_available: bool,
    ) -> str:
        """Cost-model dispatch for one per-shard sub-batch.

        Feeds the model the sub-batch's observed size, duplicate ratio
        and memtable-overlap fraction, and tallies the decision for
        :meth:`stats_snapshot`.
        """
        overlap = 0.0
        if q_lo.size:
            overlap = float(memtable_overlaps(store, q_lo, q_hi).mean())
        mode = self.cost_model.choose(
            batch_size=int(q_lo.size),
            duplicate_ratio=duplicate_ratio(q_lo, q_hi),
            memtable_overlap=overlap,
            process_available=process_available,
        )
        self._mode_counts[mode] += 1
        return mode

    # -- observability ------------------------------------------------

    def stats_snapshot(self) -> Dict[str, object]:
        """Counters for ``stats_snapshot()`` / the ``[serve]`` line."""
        cache: Dict[str, object] = {"enabled": self._cache is not None}
        if self._cache is not None:
            cache.update(
                hits=self._cache.hits,
                misses=self._cache.misses,
                hit_rate=self._cache.hit_rate,
                intervals=self._cache.n_intervals,
                insertions=self._cache.insertions,
                invalidations=self._cache.invalidations,
            )
        return {
            "merge": self.merge,
            "batches": self._batches,
            "queries": self._queries,
            "duplicates_folded": self._duplicates_folded,
            "covers_merged": self._covers_merged,
            "executed_probes": self._executed_probes,
            "reasked_members": self._reasked,
            "modes": dict(self._mode_counts),
            "negative_cache": cache,
        }
