"""Per-shard filter auto-tuning from live workload telemetry.

The paper's core tradeoff (§6.2, Figures 3-5): heuristic range filters
(SNARF, SuRF, Proteus, Bucketing) beat Grafite on *short, uncorrelated*
ranges — sometimes by orders of magnitude of FPR — but collapse toward
FPR ~ 1 the moment queries correlate with the keys, which an adversary
can force at will. Grafite's bound is distribution-free: it never wins
by as much, and never loses. A system that must pick one backend ahead
of time therefore picks Grafite; a system that can *observe its
workload* can do better, per shard, per flushed run. That is this
module.

:class:`AutoTuner` plugs into the engine/serving hot path at near-zero
cost: the per-shard batch kernel already computes its verdict bitmap,
and the tuner folds two numpy reductions per sub-batch (query count,
summed range length) into a per-shard window. The third signal
— key-query correlation — needs no extra work at all: the store's
:class:`~repro.lsm.store.IoStats` ledger already counts ``wasted_reads``
(filter said "maybe", run had nothing — exactly a false positive) and
``total_filter_decisions``, so the windowed false-positive rate *of the
filters actually mounted* falls out of two subtractions. Correlated or
adversarial traffic manifests as that rate exploding on a heuristic
backend; uncorrelated traffic shows it near the design epsilon.

After each batch (the between-batches slot the compaction scheduler
already owns) the tuner may retarget a shard:

* heuristic backend with windowed FP-rate above ``robust_fp_threshold``
  → switch to the robust default (Grafite) — the adversarial-safe move;
* robust backend, FP-rate under ``heuristic_fp_threshold``, observed
  mean range length within ``short_range_cutoff`` → try the heuristic
  backend (SNARF by default: the paper's Fig. 4 winner for short
  uncorrelated ranges);
* robust backend still paying too many false positives → buy bits
  (``bits_step`` more per key, up to ``max_bits``).

A retarget swaps the shard's filter factory (new flushes use it
immediately) and queues a filter rebuild
(:meth:`~repro.lsm.store.LSMStore.request_filter_rebuild`), so the
deferred/background compaction machinery converges existing runs to the
new backend at the next opportunity. How much work that costs is the
compaction policy's business: the default full-merge policy rebuilds
the shard in one monolithic merge (the seed behaviour), while a leveled
shard is rebuilt one slice per bounded step — the switch touches only
the slices it tags, never the whole shard at once. Nothing here can
change a query answer: filters only prune, and every backend is
false-negative-free by contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.registry import BACKENDS, FilterSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ShardedEngine


@dataclass
class ShardWindow:
    """Telemetry accumulated for one shard since its last decision."""

    queries: int = 0
    sum_len: int = 0       # sum of (hi - lo + 1) over observed queries
    decisions_base: int = 0  # IoStats.total_filter_decisions at window start
    wasted_base: int = 0     # IoStats.wasted_reads at window start


@dataclass(frozen=True)
class Decision:
    """One retargeting decision, kept for introspection and tests."""

    shard_id: int
    previous: FilterSpec
    chosen: FilterSpec
    fp_rate: float
    mean_range_len: float
    queries: int
    reason: str


@dataclass(frozen=True)
class AutoTunePolicy:
    """The thresholds of the heuristic-vs-robust tradeoff.

    Defaults are sized for the registry defaults (16 bits/key, design
    range 32): Grafite's epsilon there is ~2e-3, comfortably under
    ``heuristic_fp_threshold`` on honest uncorrelated traffic, while a
    heuristic backend under correlated traffic blows past
    ``robust_fp_threshold`` within one window.
    """

    robust_backend: str = "grafite"
    heuristic_backend: str = "snarf"
    min_window: int = 512          #: observed queries before a decision
    robust_fp_threshold: float = 0.05
    heuristic_fp_threshold: float = 0.005
    short_range_cutoff: float = 1024.0  #: mean range length for heuristics
    bits_step: float = 4.0
    max_bits: float = 24.0
    #: Probation after a heuristic backend is evicted for exploding FPR:
    #: the shard must sit out this many decision windows on the robust
    #: backend before the heuristic may be *retried*, and the sentence
    #: multiplies on every repeat offence (exponential backoff). This is
    #: what prevents oscillation under sustained correlated/adversarial
    #: traffic — a robust filter's own FP rate is distribution-free by
    #: construction, so it carries no evidence that the attack stopped,
    #: and each retry costs one window of near-1 FPR.
    probation_initial: int = 2
    probation_growth: int = 8
    probation_max: int = 512

    def __post_init__(self) -> None:
        for name in (self.robust_backend, self.heuristic_backend):
            if name not in BACKENDS:
                raise InvalidParameterError(f"unknown backend {name!r}")
        if not BACKENDS[self.robust_backend].robust:
            raise InvalidParameterError(
                f"robust_backend {self.robust_backend!r} is not adversarial-safe"
            )
        if self.min_window < 1:
            raise InvalidParameterError("min_window must be >= 1")
        if not 0 < self.heuristic_fp_threshold < self.robust_fp_threshold:
            raise InvalidParameterError(
                "need 0 < heuristic_fp_threshold < robust_fp_threshold"
            )


class AutoTuner:
    """Observes per-shard query telemetry and retargets filter backends.

    Attach via :meth:`ShardedEngine.attach_autotuner`; the engine (and
    the serving layer on top of it) then calls :meth:`maybe_retune`
    between batches. Thread-safe: observations arrive from pool threads,
    decisions are made on whichever thread finishes a batch.
    """

    def __init__(
        self,
        policy: Optional[AutoTunePolicy] = None,
        *,
        base_spec: Optional[FilterSpec] = None,
    ) -> None:
        self._policy = policy or AutoTunePolicy()
        self._base_spec = base_spec
        self._engine: Optional["ShardedEngine"] = None
        self._lock = threading.Lock()
        self._windows: Dict[int, ShardWindow] = {}
        self._current: Dict[int, FilterSpec] = {}
        self._decisions: List[Decision] = []
        self._probation: Dict[int, int] = {}  # windows before heuristic retry
        self._backoff: Dict[int, int] = {}    # current sentence length

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, engine: "ShardedEngine") -> None:
        """Subscribe to every shard's batch telemetry (engine-side API:
        prefer :meth:`ShardedEngine.attach_autotuner`)."""
        if self._engine is not None and self._engine is not engine:
            raise InvalidParameterError("tuner is already attached to an engine")
        if (
            self._base_spec is None
            and engine.filter_spec is None
            and any(store.filter_factory is not None for store in engine.shards)
        ):
            # A bare callable factory carries no backend identity: the
            # tuner would misattribute its FP behaviour to the wrong
            # decision branch. Make the caller name the starting point.
            raise InvalidParameterError(
                "auto-tuning an engine built with a bare filter_factory "
                "needs AutoTuner(base_spec=FilterSpec(...)) naming the "
                "mounted backend (or build the engine from a filter_spec)"
            )
        self._engine = engine
        start = (
            self._base_spec
            or engine.filter_spec
            or FilterSpec(backend=self._policy.robust_backend)
        )
        for sid, store in enumerate(engine.shards):
            self._current[sid] = start
            self._probation[sid] = 0
            self._backoff[sid] = 0
            self._windows[sid] = ShardWindow(
                decisions_base=store.stats.total_filter_decisions,
                wasted_base=store.stats.wasted_reads,
            )
            store.query_observer = self._make_observer(sid)
            if store.filter_factory is None:
                # An unfiltered engine gains filters on the next flush;
                # existing runs stay unfiltered until a compaction.
                store.set_filter_factory(start.factory())

    def detach(self) -> None:
        """Unsubscribe from the engine's shards (idempotent)."""
        if self._engine is None:
            return
        for store in self._engine.shards:
            store.query_observer = None
        self._engine = None

    def _make_observer(self, sid: int):
        def observe(q_lo: np.ndarray, q_hi: np.ndarray, empty: np.ndarray) -> None:
            n = int(q_lo.size)
            if n == 0:
                return
            span = int((q_hi - q_lo).sum()) + n
            with self._lock:
                window = self._windows[sid]
                window.queries += n
                window.sum_len += span

        return observe

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def maybe_retune(self) -> List[Decision]:
        """Decide per shard whose window is full; returns new decisions.

        Called by the engine/service between batches. A decision swaps
        the shard's filter factory and tags the existing runs for a
        filter rebuild, which the deferred scheduler (single-threaded
        engine) or the background compaction worker (serving layer)
        executes in policy-sized steps — per slice on a leveled shard,
        one full merge under the default policy — never inside a query.
        """
        if self._engine is None:
            return []
        made: List[Decision] = []
        for sid, store in enumerate(self._engine.shards):
            with self._lock:
                window = self._windows[sid]
                if window.queries < self._policy.min_window:
                    continue
                stats = store.stats
                # A pending rebuild means this window's runs were (partly)
                # built under the *previous* backend: deciding on that
                # evidence would misattribute its FP rate to the current
                # one — e.g. buying Grafite bits forever because evicted
                # heuristic runs are still answering. Discard the window
                # and wait for the compaction to land.
                stale = store.needs_compaction
                decisions = stats.total_filter_decisions - window.decisions_base
                wasted = stats.wasted_reads - window.wasted_base
                fp_rate = wasted / decisions if decisions > 0 else 0.0
                mean_len = window.sum_len / window.queries
                current = self._current[sid]
                chosen, reason = (
                    (None, "") if stale
                    else self._decide(sid, current, fp_rate, mean_len)
                )
                # Start a fresh window either way: stale evidence must not
                # dominate the next decision after the workload shifts.
                self._windows[sid] = ShardWindow(
                    decisions_base=stats.total_filter_decisions,
                    wasted_base=stats.wasted_reads,
                )
                if chosen is None:
                    continue
                self._current[sid] = chosen
                decision = Decision(
                    shard_id=sid,
                    previous=current,
                    chosen=chosen,
                    fp_rate=fp_rate,
                    mean_range_len=mean_len,
                    queries=window.queries,
                    reason=reason,
                )
                self._decisions.append(decision)
                # Apply while still holding the tuner lock, so two racing
                # retunes cannot commit decisions in one order and mount
                # factories in the other. Everything applied here is
                # non-blocking — the factory swap and stale tags are
                # atomic-enough stores, the scheduler notify takes only
                # its own short queue lock — so query observers queued on
                # this lock are never made to wait on storage work.
                store.set_filter_factory(chosen.factory())
                store.request_filter_rebuild()
                self._engine.scheduler.notify(sid, store)
            made.append(decision)
        return made

    def _decide(
        self, sid: int, current: FilterSpec, fp_rate: float, mean_len: float
    ) -> tuple[Optional[FilterSpec], str]:
        """Pick the next spec for one shard; caller holds the lock."""
        policy = self._policy
        robust = BACKENDS[current.backend].robust
        if fp_rate > policy.robust_fp_threshold:
            if not robust:
                # Repeat offence: the heuristic's probation multiplies.
                self._backoff[sid] = min(
                    policy.probation_max,
                    (self._backoff[sid] * policy.probation_growth)
                    or policy.probation_initial,
                )
                self._probation[sid] = self._backoff[sid]
                return (
                    replace(current, backend=policy.robust_backend),
                    f"fp_rate {fp_rate:.3f} on heuristic backend: correlated or "
                    f"adversarial traffic, falling back to the robust default "
                    f"(heuristic on probation for {self._probation[sid]} windows)",
                )
            if current.bits_per_key < policy.max_bits:
                bits = min(policy.max_bits, current.bits_per_key + policy.bits_step)
                return (
                    replace(current, bits_per_key=bits),
                    f"fp_rate {fp_rate:.3f} under the robust backend: buying "
                    f"bits ({current.bits_per_key:g} -> {bits:g} per key)",
                )
            return None, ""
        if (
            robust
            and current.backend != policy.heuristic_backend
            and fp_rate < policy.heuristic_fp_threshold
            and mean_len <= policy.short_range_cutoff
        ):
            if self._probation[sid] > 0:
                self._probation[sid] -= 1
                return None, ""
            return (
                replace(current, backend=policy.heuristic_backend),
                f"fp_rate {fp_rate:.4f} and mean range {mean_len:.0f}: short "
                f"uncorrelated traffic, the heuristic backend wins here (Fig. 4)",
            )
        if not robust and fp_rate < policy.heuristic_fp_threshold:
            # The heuristic is earning its keep: slowly forgive history so
            # a genuinely shifted workload is not punished forever.
            self._backoff[sid] = max(0, self._backoff[sid] - 1)
        return None, ""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def policy(self) -> AutoTunePolicy:
        return self._policy

    @property
    def decisions(self) -> List[Decision]:
        """All retargeting decisions, oldest first."""
        with self._lock:
            return list(self._decisions)

    def current_spec(self, shard_id: int) -> FilterSpec:
        """The spec currently mounted (for new runs) on ``shard_id``."""
        with self._lock:
            return self._current[shard_id]

    def backend_counts(self) -> Dict[str, int]:
        """How many shards currently target each backend."""
        with self._lock:
            counts: Dict[str, int] = {}
            for spec in self._current.values():
                counts[spec.backend] = counts.get(spec.backend, 0) + 1
            return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoTuner(backends={self.backend_counts()}, "
            f"decisions={len(self._decisions)})"
        )
