"""Key-range partitioning of the universe across shards.

The engine splits ``[0, u)`` into ``num_shards`` contiguous ranges of
(near-)equal width. Contiguous ranges — rather than hash partitioning —
keep range queries local: a query ``[lo, hi]`` touches only the shards
whose ranges it overlaps, and cross-shard scans concatenate in key order
with no merge step. This mirrors how RocksDB-style deployments split a
keyspace across column families / instances while each instance keeps
its own runs and filters (the setting of the paper's §1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError


class ShardRouter:
    """Maps keys and key ranges to contiguous universe shards.

    Parameters
    ----------
    universe:
        Exclusive key-universe bound ``u``.
    num_shards:
        Number of contiguous partitions. Widths are ``ceil(u / num_shards)``,
        so the last shard may be narrower (and is never empty of range
        only when ``num_shards <= u``).
    """

    __slots__ = ("_universe", "_num_shards", "_width", "_bounds")

    def __init__(self, universe: int, num_shards: int) -> None:
        if universe <= 0:
            raise InvalidParameterError("universe must be positive")
        if num_shards < 1:
            raise InvalidParameterError("num_shards must be >= 1")
        if num_shards > universe:
            raise InvalidParameterError(
                f"cannot split a universe of {universe} into {num_shards} shards"
            )
        self._universe = int(universe)
        self._num_shards = int(num_shards)
        self._width = -(-self._universe // self._num_shards)  # ceil division
        self._bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def shard_width(self) -> int:
        """Width of every shard but possibly the last."""
        return self._width

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self._universe:
            raise InvalidQueryError(
                f"key {key} outside universe [0, {self._universe})"
            )

    def shard_of(self, key: int) -> int:
        """Return the shard id owning ``key``."""
        self._check_key(key)
        return key // self._width

    def shard_range(self, shard_id: int) -> Tuple[int, int]:
        """Inclusive key range ``(lo, hi)`` owned by ``shard_id``."""
        if not 0 <= shard_id < self._num_shards:
            raise InvalidQueryError(
                f"shard {shard_id} outside [0, {self._num_shards})"
            )
        lo = shard_id * self._width
        hi = min(lo + self._width - 1, self._universe - 1)
        return lo, hi

    def shards_spanning(self, lo: int, hi: int) -> range:
        """Shard ids ``[lo, hi]`` overlaps, in key order.

        The cheap companion to :meth:`split` for callers that only need
        to know *which* shards a range touches — e.g. the concurrent
        service acquiring every overlapped shard's read lock (in id
        order, so lock acquisition can never deadlock) before probing.
        """
        if lo > hi:
            raise InvalidQueryError(f"range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        return range(lo // self._width, hi // self._width + 1)

    def bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-shard inclusive key bounds as ``uint64`` columns (cached).

        Returns ``(shard_los, shard_his)`` with one entry per shard. The
        columnar batch router clamps split segments against these gathers
        instead of recomputing ``(sid + 1) * width - 1`` per segment —
        which, besides being one multiply cheaper, is *exact*: the bounds
        are built once per shard with Python integers, so a universe of
        ``2^64`` cannot wrap the ``uint64`` arithmetic.
        """
        if self._bounds is None:
            los = np.empty(self._num_shards, dtype=np.uint64)
            his = np.empty(self._num_shards, dtype=np.uint64)
            for sid in range(self._num_shards):
                lo, hi = self.shard_range(sid)
                los[sid] = lo
                his[sid] = hi
            self._bounds = (los, his)
        return self._bounds

    def split(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """Split ``[lo, hi]`` at shard boundaries.

        Returns ``(shard_id, seg_lo, seg_hi)`` triples in key order; their
        concatenation covers ``[lo, hi]`` exactly, each segment inside one
        shard.
        """
        if lo > hi:
            raise InvalidQueryError(f"range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        first = lo // self._width
        last = hi // self._width
        out: List[Tuple[int, int, int]] = []
        for sid in range(first, last + 1):
            shard_lo = sid * self._width
            shard_hi = min(shard_lo + self._width - 1, self._universe - 1)
            out.append((sid, max(lo, shard_lo), min(hi, shard_hi)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter(u={self._universe}, shards={self._num_shards}, "
            f"width={self._width})"
        )
