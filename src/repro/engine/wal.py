"""Write-ahead log for the sharded engine.

Every mutation is appended here *before* it touches a memtable, so a
crash between checkpoints loses nothing that was acknowledged: on
reopen, the records are replayed into fresh memtables on top of the last
snapshot. The format is deliberately boring and self-healing:

``header | record*``

* header: magic ``b"RWAL"``, format version (u16);
* record: ``crc32(payload) (u32) | len(payload) (u32) | payload`` where
  the payload is ``op (u8) | key (u64) | pickled value`` (the value part
  is empty for deletes and TTL clock records, whose key field carries
  the logical time instead).

A crash mid-append leaves a torn record at the tail. Opening the log
scans it, keeps every record whose length and checksum verify, and
truncates the file at the first record that does not — the standard
recovery contract (RocksDB's ``kTolerateCorruptedTailRecords``).
:func:`scan_wal_file` exposes the same scan read-only (no truncation,
no append handle) for the scrub path.

Appends go through :class:`repro.faults.FaultyFile`, so chaos runs can
tear or EIO a record mid-write; with no fault plan installed the
wrapper is a transparent delegate.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, List, Tuple

from repro import faults
from repro.errors import InvalidParameterError

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = _MAGIC + struct.pack("<H", _VERSION)
_RECORD_HEADER = struct.Struct("<II")  # crc32, payload length

#: Record opcodes. ``OP_CLOCK`` reuses the key field for the logical TTL
#: time (see :meth:`repro.engine.ShardedEngine.advance_clock`): clock
#: advances must be as durable as the writes they expire, or recovery
#: would resurrect entries that already aged out.
OP_PUT = 1
OP_DELETE = 2
OP_CLOCK = 3

#: Cap on a single record's payload; a corrupt length field must not make
#: recovery try to allocate gigabytes.
_MAX_PAYLOAD = 1 << 28


def _encode_payload(op: int, key: int, value: Any) -> bytes:
    head = struct.pack("<BQ", op, key)
    if op == OP_PUT:
        return head + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return head


def _decode_payload(payload: bytes) -> Tuple[int, int, Any]:
    op, key = struct.unpack_from("<BQ", payload, 0)
    value = pickle.loads(payload[9:]) if op == OP_PUT else None
    return op, key, value


def scan_wal_file(
    path: str | os.PathLike,
) -> Tuple[List[Tuple[int, int, Any]], int, int]:
    """Read-only torn-tail scan of a WAL file.

    Returns ``(records, valid_length, total_length)``: every record
    whose length and crc32 verify, the byte length of that valid prefix,
    and the file's actual size. ``valid_length < total_length`` means a
    torn tail — expected after a crash, tolerated by recovery. Unlike
    opening a :class:`WriteAheadLog`, this never truncates or creates
    the file, which is what :func:`repro.engine.persist.scrub_snapshot`
    needs: a damage survey must not repair as a side effect.
    """
    buf = faults.read_bytes(path)
    records: List[Tuple[int, int, Any]] = []
    if len(buf) < len(_HEADER):
        return records, 0, len(buf)
    if buf[:4] != _MAGIC:
        raise InvalidParameterError(f"{os.fspath(path)} is not a WAL file")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version != _VERSION:
        raise InvalidParameterError(f"unsupported WAL version {version}")
    offset = len(_HEADER)
    while offset + _RECORD_HEADER.size <= len(buf):
        crc, length = _RECORD_HEADER.unpack_from(buf, offset)
        body_start = offset + _RECORD_HEADER.size
        if length > _MAX_PAYLOAD or body_start + length > len(buf):
            break  # torn record: length field or body ran past EOF
        payload = buf[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            break  # torn or corrupt record
        records.append(_decode_payload(payload))
        offset = body_start + length
    return records, offset, len(buf)


class WriteAheadLog:
    """Append-only durability log with torn-tail recovery.

    Parameters
    ----------
    path:
        Log file location; created (with its header) if missing.
    sync:
        ``True`` fsyncs after every append — durable against power loss,
        slow. ``False`` (default) flushes to the OS only, which survives
        process crashes (the scenario the tests simulate).
    """

    def __init__(self, path: str | os.PathLike, *, sync: bool = False) -> None:
        self._path = Path(path)
        self._sync = bool(sync)
        self._recovered: List[Tuple[int, int, Any]] = []
        # Appends from concurrent writers (the thread-pool service) must
        # not interleave half-records; one lock serialises the file.
        self._lock = threading.Lock()
        valid_length = self._scan()
        # Drop any torn tail, then position for appends.
        with open(self._path, "r+b") as fh:
            fh.truncate(valid_length)
        self._fh = faults.wrap_file(open(self._path, "ab"))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _scan(self) -> int:
        """Read all intact records; return the byte length of the valid prefix."""
        if not self._path.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_bytes(_HEADER)
            return len(_HEADER)
        records, valid_length, _total = scan_wal_file(self._path)
        if valid_length == 0:
            # Crash before the header finished; start the log over.
            self._path.write_bytes(_HEADER)
            return len(_HEADER)
        self._recovered.extend(records)
        return valid_length

    @property
    def recovered(self) -> List[Tuple[int, int, Any]]:
        """Records recovered when the log was opened: ``(op, key, value)``."""
        return list(self._recovered)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, op: int, key: int, value: Any = None) -> None:
        """Durably record one mutation (call before applying it)."""
        if op not in (OP_PUT, OP_DELETE, OP_CLOCK):
            raise InvalidParameterError(f"unknown WAL opcode {op}")
        payload = _encode_payload(op, key, value)
        record = _RECORD_HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        with self._lock:
            # One write per record: an injected (or real) tear then leaves
            # a prefix of exactly one record — the torn tail the recovery
            # scan is contracted to drop.
            self._fh.write(record)
            self._fh.flush()
            if self._sync:
                self._fh.fsync()

    def log_put(self, key: int, value: Any) -> None:
        self.append(OP_PUT, key, value)

    def log_delete(self, key: int) -> None:
        self.append(OP_DELETE, key)

    def log_clock(self, now: int) -> None:
        """Record a TTL clock advance (the key field carries the time)."""
        self.append(OP_CLOCK, now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    def reset(self) -> None:
        """Discard all records (called right after a snapshot checkpoint)."""
        with self._lock:
            self._fh.close()
            self._path.write_bytes(_HEADER)
            self._recovered.clear()
            self._fh = faults.wrap_file(open(self._path, "ab"))
            if self._sync:
                self._fh.fsync()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog({str(self._path)!r}, sync={self._sync})"
