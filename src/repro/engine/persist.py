"""On-disk snapshots of engine state (runs, filters, manifest).

A checkpoint writes one directory:

``MANIFEST.json`` — engine parameters plus, per shard, the run file
names describing the level topology: level 0 newest first, then every
deep level (L1 first, each level's runs in storage order — slices
key-sorted under leveled compaction, age-sorted under tiered);
``shard-<i>/*.sst`` — one file per run; ``wal.log`` — the write-ahead
log, reset by the checkpoint and replayed over the snapshot on reopen.

Both formats are versioned. Manifest version 1 (pre-slicing: per shard a
``level0`` list plus a single ``bottom`` run) still loads — the bottom
becomes a one-run L1 — so checkpoints taken before the compaction-policy
subsystem reopen with answers bit-for-bit identical under the default
full-merge policy. Run-file version 1 (no slice metadata) likewise
loads; version 2 appends the slice's owning bounds so leveled topology
survives a restart.

A run file reuses the primitive layout of :mod:`repro.core.serialization`
(``pack_int`` / ``pack_words``) and embeds the run's *filter bytes* —
every backend in :mod:`repro.filters.registry` (Grafite, Bucketing,
SuRF, Rosetta, Proteus, SNARF, REncoder) has a stable format. Persisting
the filter — rather than rebuilding it from the keys — matters: a rebuild
would draw fresh hash constants, so a reopened store would false-positive
on *different* probes than before the restart. With the blob, query
results are bit-for-bit identical across a reopen. A run whose filter
type has no format is flagged for factory rebuild; loading such a run
without a factory raises :class:`~repro.errors.ConfigError` unless the
caller opts into filterless runs.
"""

from __future__ import annotations

import json
import pickle
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.serialization import (
    filter_from_bytes,
    filter_to_bytes,
    pack_int,
    pack_words,
    unpack_int,
    unpack_words,
)
from repro.errors import ConfigError, InvalidParameterError
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import FilterFactory, SSTable
from repro.lsm.store import LSMStore

_RUN_MAGIC = b"RSST"
_RUN_VERSION = 2          # v2 appends slice-bounds metadata; v1 still loads

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 2      # v2 records deep levels; v1 (level0+bottom) loads

#: Filter persistence modes recorded in a run file.
_FILTER_NONE = 0       # the run never had a filter
_FILTER_BLOB = 1       # serialised bytes follow; restore exactly
_FILTER_REBUILD = 2    # no stable format; rebuild from keys via the factory


# ----------------------------------------------------------------------
# Run files
# ----------------------------------------------------------------------
def run_to_bytes(run: SSTable) -> bytes:
    """Serialise one immutable run (keys, values, tombstones, filter)."""
    n = len(run)
    keys = np.asarray(run._keys, dtype=np.uint64)
    tombstone_mask = bytearray((n + 7) // 8)
    live_values: List[Any] = []
    for i, value in enumerate(run._values):
        if value is TOMBSTONE:
            tombstone_mask[i // 8] |= 1 << (i % 8)
        else:
            live_values.append(value)
    values_blob = pickle.dumps(live_values, protocol=pickle.HIGHEST_PROTOCOL)
    filt = run.filter
    if filt is None:
        filter_mode, filter_blob = _FILTER_NONE, b""
    else:
        try:
            filter_mode, filter_blob = _FILTER_BLOB, filter_to_bytes(filt)
        except InvalidParameterError:
            filter_mode, filter_blob = _FILTER_REBUILD, b""
    bounds = run.slice_bounds
    if bounds is None:
        bounds_part = struct.pack("<B", 0)
    else:
        bounds_part = struct.pack("<B", 1) + pack_int(bounds[0]) + pack_int(bounds[1])
    parts = [
        _RUN_MAGIC,
        struct.pack("<H", _RUN_VERSION),
        struct.pack("<Q", n),
        pack_int(run.universe),
        pack_words(keys),
        struct.pack("<Q", len(tombstone_mask)),
        bytes(tombstone_mask),
        struct.pack("<Q", len(values_blob)),
        values_blob,
        bounds_part,
        struct.pack("<BQ", filter_mode, len(filter_blob)),
        filter_blob,
    ]
    return b"".join(parts)


def run_from_bytes(
    buf: bytes,
    filter_factory: Optional[FilterFactory] = None,
    *,
    missing_filter: str = "raise",
) -> SSTable:
    """Load a run serialised by :func:`run_to_bytes`.

    A run whose filter had a stable byte format restores it from the
    embedded blob regardless of ``filter_factory``. A run flagged
    ``_FILTER_REBUILD`` (it *had* a filter, but one this build could not
    serialise) needs the factory back; without one the behaviour follows
    ``missing_filter``:

    * ``"raise"`` (default) — raise :class:`~repro.errors.ConfigError`.
      Silently coming back filterless used to turn every probe into a
      run read, an order-of-magnitude regression discovered only by
      profiling.
    * ``"drop"`` — restore the run without a filter (correct, slower).
      This is what read-only snapshot workers opt into: they own no
      factory by design and verification-only reads are acceptable
      there.
    """
    if buf[:4] != _RUN_MAGIC:
        raise InvalidParameterError("not a serialised SSTable run")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version not in (1, _RUN_VERSION):
        raise InvalidParameterError(f"unsupported run format version {version}")
    offset = 6
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = unpack_int(buf, offset)
    keys, offset = unpack_words(buf, offset)
    if keys.size != n:
        raise InvalidParameterError("run key count does not match header")
    (mask_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    tombstone_mask = buf[offset:offset + mask_len]
    offset += mask_len
    (values_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    live_values = pickle.loads(buf[offset:offset + values_len])
    offset += values_len
    slice_bounds = None
    if version >= 2:
        (has_bounds,) = struct.unpack_from("<B", buf, offset)
        offset += 1
        if has_bounds:
            bounds_lo, offset = unpack_int(buf, offset)
            bounds_hi, offset = unpack_int(buf, offset)
            slice_bounds = (int(bounds_lo), int(bounds_hi))
    filter_mode, filter_len = struct.unpack_from("<BQ", buf, offset)
    offset += 9
    filter_blob = buf[offset:offset + filter_len]

    values: List[Any] = []
    live_iter = iter(live_values)
    for i in range(n):
        if tombstone_mask[i // 8] >> (i % 8) & 1:
            values.append(TOMBSTONE)
        else:
            values.append(next(live_iter))

    if missing_filter not in ("raise", "drop"):
        raise InvalidParameterError(
            f"missing_filter must be 'raise' or 'drop', got {missing_filter!r}"
        )
    if filter_mode == _FILTER_BLOB:
        filt = filter_from_bytes(filter_blob)
    elif filter_mode == _FILTER_REBUILD and filter_factory is not None:
        filt = filter_factory(keys, int(universe))
    elif filter_mode == _FILTER_REBUILD and missing_filter == "raise":
        raise ConfigError(
            "snapshot run was built with a filter that has no stable byte "
            "format, and no filter_factory was provided to rebuild it — "
            "pass the factory the engine was created with, or opt into "
            "filterless runs explicitly with missing_filter='drop'"
        )
    else:
        filt = None
    return SSTable.from_parts(
        keys, values, int(universe), filt, slice_bounds=slice_bounds
    )


# ----------------------------------------------------------------------
# Manifest + whole-engine snapshots
# ----------------------------------------------------------------------
def load_manifest(directory: str | Path) -> Optional[Dict[str, Any]]:
    """Read ``MANIFEST.json`` or return ``None`` when the dir has none.

    Accepts both manifest versions. A version-1 manifest (pre-slicing:
    per shard ``{"level0": [...], "bottom": name}``) is normalised in
    memory to the version-2 shape — the single bottom run becomes a
    one-run L1 — so every caller sees one topology format.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    manifest = json.loads(path.read_text())
    version = manifest.get("manifest_version")
    if version not in (1, MANIFEST_VERSION):
        raise InvalidParameterError(f"unsupported manifest version {version}")
    if version == 1:
        for entry in manifest.get("shards", []):
            bottom = entry.pop("bottom", None)
            entry["levels"] = [[bottom]] if bottom is not None else []
    return manifest


def save_snapshot(
    directory: str | Path,
    params: Dict[str, Any],
    shards: List[LSMStore],
) -> Dict[str, Any]:
    """Write every shard's runs plus the manifest; returns the manifest.

    ``params`` carries the engine construction parameters (universe,
    shard count, memtable limit, fanout) so :meth:`ShardedEngine.open`
    can rebuild the topology without user input. Memtables are *not*
    snapshotted — the caller flushes them first (checkpoint) or relies on
    the WAL to replay them (crash).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    previous = load_manifest(root)
    generation = (previous.get("generation", 0) + 1) if previous else 1
    shard_entries = []
    for sid, store in enumerate(shards):
        shard_dir = root / f"shard-{sid:04d}"
        shard_dir.mkdir(exist_ok=True)
        # Run files are generation-stamped and never overwritten: until
        # the manifest rename below commits this checkpoint, the previous
        # manifest still points at intact files, so a crash at *any*
        # point in this function leaves the old checkpoint recoverable.
        level0_names = []
        for j, run in enumerate(store.level0_runs):
            name = f"run-{generation:06d}-{j:04d}.sst"
            (shard_dir / name).write_bytes(run_to_bytes(run))
            level0_names.append(name)
        level_names: List[List[str]] = []
        for li, level in enumerate(store.levels, start=1):
            names = []
            for j, run in enumerate(level):
                name = f"l{li}-{generation:06d}-{j:04d}.sst"
                (shard_dir / name).write_bytes(run_to_bytes(run))
                names.append(name)
            level_names.append(names)
        shard_entries.append({"level0": level0_names, "levels": level_names})
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "generation": generation,
        **params,
        "shards": shard_entries,
    }
    # The atomic commit point: write-then-rename the manifest.
    tmp = root / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=1))
    tmp.replace(root / MANIFEST_NAME)
    # Garbage-collect run files no checkpoint references anymore.
    for sid, entry in enumerate(shard_entries):
        shard_dir = root / f"shard-{sid:04d}"
        live = set(entry["level0"])
        for names in entry["levels"]:
            live.update(names)
        for candidate in shard_dir.glob("*.sst"):
            if candidate.name not in live:
                candidate.unlink()
    return manifest


def load_shard(
    directory: str | Path,
    manifest: Dict[str, Any],
    shard_id: int,
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> LSMStore:
    """Rebuild one shard's :class:`LSMStore` from a snapshot manifest.

    The per-shard granularity is what the process-mode serving workers
    use: each worker owns a subset of the shards and loads only those
    from the checkpoint, read-only — every registered backend restores
    its filter byte-for-byte from the run's embedded blob, no factory
    needed. A run that *had* a filter but no blob (a custom filter type
    outside :mod:`repro.core.serialization`) follows ``missing_filter``:
    the default raises :class:`~repro.errors.ConfigError`; the workers
    pass ``"drop"`` and serve that run unfiltered (slower, never wrong).
    """
    root = Path(directory)
    entry = manifest["shards"][shard_id]
    shard_dir = root / f"shard-{shard_id:04d}"

    def load_run(name: str) -> SSTable:
        return run_from_bytes(
            (shard_dir / name).read_bytes(), filter_factory,
            missing_filter=missing_filter,
        )

    level0 = [load_run(name) for name in entry["level0"]]
    levels = [[load_run(name) for name in names] for names in entry["levels"]]
    return LSMStore.from_runs(
        manifest["universe"],
        level0=level0,
        levels=levels,
        memtable_limit=manifest["memtable_limit"],
        compaction_fanout=manifest["compaction_fanout"],
        filter_factory=filter_factory,
        auto_compact=auto_compact,
        compaction_policy=compaction_policy,
    )


def load_shards(
    directory: str | Path,
    manifest: Dict[str, Any],
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> List[LSMStore]:
    """Rebuild every shard's :class:`LSMStore` from a snapshot manifest."""
    return [
        load_shard(
            directory,
            manifest,
            sid,
            filter_factory=filter_factory,
            auto_compact=auto_compact,
            missing_filter=missing_filter,
            compaction_policy=compaction_policy,
        )
        for sid in range(len(manifest["shards"]))
    ]
