"""On-disk snapshots of engine state (runs, filters, manifest).

A checkpoint writes one directory:

``MANIFEST.json`` — engine parameters plus, per shard, the run file
names describing the level topology: level 0 newest first, then every
deep level (L1 first, each level's runs in storage order — slices
key-sorted under leveled compaction, age-sorted under tiered);
``MANIFEST.prev.json`` — a retained copy of the *previous* epoch's
manifest, kept so :meth:`ShardedEngine.open` can roll back when the
newest checkpoint fails verification; ``shard-<i>/*.sst`` — one file
per run; ``wal.log`` — the write-ahead log, reset by the checkpoint
and replayed over the snapshot on reopen.

Both formats are versioned and, from version 3, checksummed. A run file
v3 ends in a crc32 trailer over everything before it; a v3 manifest
carries a ``crc32`` field over its canonical JSON dump. Verification
failures raise :class:`~repro.errors.CorruptionError` — the storage
layer never serves bytes that failed their checksum; crc32 detects
every single-bit flip and every burst shorter than 32 bits, which
covers the realistic torn-write and bit-rot cases the crash-fuzz and
chaos suites inject (see ``docs/robustness.md``).

Durability follows the classic rename-commit protocol, with the fsyncs
real filesystems require: every run blob is fsynced, the manifest is
written to a tmp file and fsynced, the shard directories and the root
directory are fsynced, and only then does the rename of the tmp file
onto ``MANIFEST.json`` commit the checkpoint. Run files are
generation-stamped and never overwritten; garbage collection keeps the
union of the files referenced by the current *and* previous manifests,
so the last two checkpoint epochs are always on disk intact.

Older formats still load. Manifest version 1 (pre-slicing: per shard a
``level0`` list plus a single ``bottom`` run) is normalised to the
current shape — the bottom becomes a one-run L1. Run versions 1
(no slice metadata) and 2 (slice bounds, no checksum) load unverified:
they carry no crc, so only structural damage is detectable there.

A run file reuses the primitive layout of :mod:`repro.core.serialization`
(``pack_int`` / ``pack_words``) and embeds the run's *filter bytes* —
every backend in :mod:`repro.filters.registry` (Grafite, Bucketing,
SuRF, Rosetta, Proteus, SNARF, REncoder) has a stable format. Persisting
the filter — rather than rebuilding it from the keys — matters: a rebuild
would draw fresh hash constants, so a reopened store would false-positive
on *different* probes than before the restart. With the blob, query
results are bit-for-bit identical across a reopen. A run whose filter
type has no format is flagged for factory rebuild; loading such a run
without a factory raises :class:`~repro.errors.ConfigError` unless the
caller opts into filterless runs.

All file I/O routes through :mod:`repro.faults` so the chaos suites can
inject torn writes, bit flips and EIO at exactly this seam; with no
fault plan installed those helpers are passthroughs.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import faults
from repro.core.serialization import (
    filter_from_bytes,
    filter_to_bytes,
    pack_int,
    pack_words,
    unpack_int,
    unpack_words,
)
from repro.errors import (
    ConfigError,
    CorruptionError,
    InvalidParameterError,
    ReproError,
)
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import FilterFactory, SSTable
from repro.lsm.store import LSMStore

_RUN_MAGIC = b"RSST"
_RUN_VERSION = 3          # v3 appends a crc32 trailer; v1/v2 still load

MANIFEST_NAME = "MANIFEST.json"
PREV_MANIFEST_NAME = "MANIFEST.prev.json"
MANIFEST_VERSION = 3      # v3 adds a crc32 field; v1/v2 still load

#: Filter persistence modes recorded in a run file.
_FILTER_NONE = 0       # the run never had a filter
_FILTER_BLOB = 1       # serialised bytes follow; restore exactly
_FILTER_REBUILD = 2    # no stable format; rebuild from keys via the factory


# ----------------------------------------------------------------------
# Run files
# ----------------------------------------------------------------------
def run_to_bytes(run: SSTable) -> bytes:
    """Serialise one immutable run (keys, values, tombstones, filter).

    The returned buffer ends in a little-endian crc32 over everything
    before it; :func:`run_from_bytes` refuses the blob if the trailer
    does not match (:class:`~repro.errors.CorruptionError`).
    """
    n = len(run)
    keys = np.asarray(run._keys, dtype=np.uint64)
    tombstone_mask = bytearray((n + 7) // 8)
    live_values: List[Any] = []
    for i, value in enumerate(run._values):
        if value is TOMBSTONE:
            tombstone_mask[i // 8] |= 1 << (i % 8)
        else:
            live_values.append(value)
    values_blob = pickle.dumps(live_values, protocol=pickle.HIGHEST_PROTOCOL)
    filt = run.filter
    if filt is None:
        filter_mode, filter_blob = _FILTER_NONE, b""
    else:
        try:
            filter_mode, filter_blob = _FILTER_BLOB, filter_to_bytes(filt)
        except InvalidParameterError:
            filter_mode, filter_blob = _FILTER_REBUILD, b""
    bounds = run.slice_bounds
    if bounds is None:
        bounds_part = struct.pack("<B", 0)
    else:
        bounds_part = struct.pack("<B", 1) + pack_int(bounds[0]) + pack_int(bounds[1])
    parts = [
        _RUN_MAGIC,
        struct.pack("<H", _RUN_VERSION),
        struct.pack("<Q", n),
        pack_int(run.universe),
        pack_words(keys),
        struct.pack("<Q", len(tombstone_mask)),
        bytes(tombstone_mask),
        struct.pack("<Q", len(values_blob)),
        values_blob,
        bounds_part,
        struct.pack("<BQ", filter_mode, len(filter_blob)),
        filter_blob,
    ]
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _parse_run(
    buf: bytes,
    filter_factory: Optional[FilterFactory],
    missing_filter: str,
) -> SSTable:
    if buf[:4] != _RUN_MAGIC:
        raise CorruptionError("not a serialised SSTable run (bad magic)")
    (version,) = struct.unpack_from("<H", buf, 4)
    if version not in (1, 2, _RUN_VERSION):
        raise CorruptionError(f"unsupported run format version {version}")
    if version >= 3:
        if len(buf) < 10:
            raise CorruptionError("run blob too short to hold its checksum")
        (recorded,) = struct.unpack_from("<I", buf, len(buf) - 4)
        buf = buf[:-4]
        actual = zlib.crc32(buf) & 0xFFFFFFFF
        if actual != recorded:
            raise CorruptionError(
                f"run checksum mismatch: recorded {recorded:#010x}, "
                f"computed {actual:#010x}"
            )
    offset = 6
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = unpack_int(buf, offset)
    keys, offset = unpack_words(buf, offset)
    if keys.size != n:
        raise CorruptionError("run key count does not match header")
    (mask_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    tombstone_mask = buf[offset:offset + mask_len]
    if len(tombstone_mask) != mask_len:
        raise CorruptionError("run tombstone mask truncated")
    offset += mask_len
    (values_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    if len(buf) < offset + values_len:
        raise CorruptionError("run value section truncated")
    live_values = pickle.loads(buf[offset:offset + values_len])
    offset += values_len
    slice_bounds = None
    if version >= 2:
        (has_bounds,) = struct.unpack_from("<B", buf, offset)
        offset += 1
        if has_bounds:
            bounds_lo, offset = unpack_int(buf, offset)
            bounds_hi, offset = unpack_int(buf, offset)
            slice_bounds = (int(bounds_lo), int(bounds_hi))
    filter_mode, filter_len = struct.unpack_from("<BQ", buf, offset)
    offset += 9
    filter_blob = buf[offset:offset + filter_len]
    if len(filter_blob) != filter_len:
        raise CorruptionError("run filter blob truncated")

    values: List[Any] = []
    live_iter = iter(live_values)
    for i in range(n):
        if tombstone_mask[i // 8] >> (i % 8) & 1:
            values.append(TOMBSTONE)
        else:
            values.append(next(live_iter))

    if filter_mode == _FILTER_BLOB:
        filt = filter_from_bytes(filter_blob)
    elif filter_mode == _FILTER_REBUILD and filter_factory is not None:
        filt = filter_factory(keys, int(universe))
    elif filter_mode == _FILTER_REBUILD and missing_filter == "raise":
        raise ConfigError(
            "snapshot run was built with a filter that has no stable byte "
            "format, and no filter_factory was provided to rebuild it — "
            "pass the factory the engine was created with, or opt into "
            "filterless runs explicitly with missing_filter='drop'"
        )
    else:
        filt = None
    return SSTable.from_parts(
        keys, values, int(universe), filt, slice_bounds=slice_bounds
    )


def run_from_bytes(
    buf: bytes,
    filter_factory: Optional[FilterFactory] = None,
    *,
    missing_filter: str = "raise",
) -> SSTable:
    """Load a run serialised by :func:`run_to_bytes`.

    A version-3 blob is checksum-verified before any parsing is trusted;
    a mismatch — or any structural damage, in any version — raises
    :class:`~repro.errors.CorruptionError`. The caller (shard loading in
    :meth:`ShardedEngine.open`) treats that as "this checkpoint epoch is
    bad" and rolls back rather than serving a partially-decoded run.

    A run whose filter had a stable byte format restores it from the
    embedded blob regardless of ``filter_factory``. A run flagged
    ``_FILTER_REBUILD`` (it *had* a filter, but one this build could not
    serialise) needs the factory back; without one the behaviour follows
    ``missing_filter``:

    * ``"raise"`` (default) — raise :class:`~repro.errors.ConfigError`.
      Silently coming back filterless used to turn every probe into a
      run read, an order-of-magnitude regression discovered only by
      profiling.
    * ``"drop"`` — restore the run without a filter (correct, slower).
      This is what read-only snapshot workers opt into: they own no
      factory by design and verification-only reads are acceptable
      there.
    """
    if missing_filter not in ("raise", "drop"):
        raise InvalidParameterError(
            f"missing_filter must be 'raise' or 'drop', got {missing_filter!r}"
        )
    try:
        return _parse_run(buf, filter_factory, missing_filter)
    except ReproError:
        raise
    except Exception as exc:
        # struct.error, pickle errors, numpy shape errors, StopIteration
        # from the live-value zip — all mean the bytes are not a run.
        raise CorruptionError(f"run blob failed to parse: {exc!r}") from exc


# ----------------------------------------------------------------------
# Manifest + whole-engine snapshots
# ----------------------------------------------------------------------
def manifest_crc(manifest: Dict[str, Any]) -> int:
    """crc32 over the canonical dump of a manifest (its ``crc32`` field
    excluded): sorted keys, compact separators — independent of the
    indentation the file on disk happens to use."""
    body = {k: v for k, v in manifest.items() if k != "crc32"}
    dump = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(dump.encode("utf-8")) & 0xFFFFFFFF


def load_manifest(
    directory: str | Path, *, name: str = MANIFEST_NAME
) -> Optional[Dict[str, Any]]:
    """Read a manifest or return ``None`` when the dir has none.

    Accepts every manifest version. A version-3 manifest must carry a
    matching ``crc32`` field or :class:`~repro.errors.CorruptionError`
    is raised; unparseable JSON raises the same. A version-1 manifest
    (pre-slicing: per shard ``{"level0": [...], "bottom": name}``) is
    normalised in memory to the current shape — the single bottom run
    becomes a one-run L1 — so every caller sees one topology format.

    ``name`` selects which manifest file to read: the default current
    epoch, or :data:`PREV_MANIFEST_NAME` for the retained previous one.
    """
    path = Path(directory) / name
    if not path.exists():
        return None
    raw = faults.read_bytes(path)
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptionError(f"{path}: manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CorruptionError(f"{path}: manifest is not a JSON object")
    version = manifest.get("manifest_version")
    if version not in (1, 2, MANIFEST_VERSION):
        raise CorruptionError(f"{path}: unsupported manifest version {version}")
    if version >= 3:
        recorded = manifest.get("crc32")
        actual = manifest_crc(manifest)
        if recorded != actual:
            raise CorruptionError(
                f"{path}: manifest checksum mismatch: recorded "
                f"{recorded!r}, computed {actual:#010x}"
            )
    if version == 1:
        for entry in manifest.get("shards", []):
            bottom = entry.pop("bottom", None)
            entry["levels"] = [[bottom]] if bottom is not None else []
    return manifest


def referenced_runs(manifest: Dict[str, Any]) -> Dict[int, Set[str]]:
    """Per shard id, the run-file names a manifest keeps alive."""
    out: Dict[int, Set[str]] = {}
    for sid, entry in enumerate(manifest.get("shards", [])):
        live = set(entry.get("level0", []))
        for names in entry.get("levels", []):
            live.update(names)
        out[sid] = live
    return out


def save_snapshot(
    directory: str | Path,
    params: Dict[str, Any],
    shards: List[LSMStore],
) -> Dict[str, Any]:
    """Write every shard's runs plus the manifest; returns the manifest.

    ``params`` carries the engine construction parameters (universe,
    shard count, memtable limit, fanout) so :meth:`ShardedEngine.open`
    can rebuild the topology without user input. Memtables are *not*
    snapshotted — the caller flushes them first (checkpoint) or relies on
    the WAL to replay them (crash).

    Durability protocol, in order: (1) every run blob is written and
    fsynced; (2) each shard directory is fsynced so the new files'
    directory entries are durable; (3) the outgoing ``MANIFEST.json`` is
    *copied* to ``MANIFEST.prev.json`` (copied, not renamed — a crash
    between two renames would leave the directory with no current
    manifest at all, which reads as "fresh directory"); (4) the new
    manifest is written to a tmp file, fsynced, and renamed over
    ``MANIFEST.json``; (5) the root directory is fsynced, making the
    rename — the commit point — durable. A crash at *any* point leaves
    either the old or the new checkpoint fully intact.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    previous = load_manifest(root)
    generation = (previous.get("generation", 0) + 1) if previous else 1
    shard_entries = []
    for sid, store in enumerate(shards):
        shard_dir = root / f"shard-{sid:04d}"
        shard_dir.mkdir(exist_ok=True)
        # Run files are generation-stamped and never overwritten: until
        # the manifest rename below commits this checkpoint, the previous
        # manifest still points at intact files, so a crash at *any*
        # point in this function leaves the old checkpoint recoverable.
        level0_names = []
        for j, run in enumerate(store.level0_runs):
            name = f"run-{generation:06d}-{j:04d}.sst"
            faults.write_bytes(shard_dir / name, run_to_bytes(run), fsync=True)
            level0_names.append(name)
        level_names: List[List[str]] = []
        for li, level in enumerate(store.levels, start=1):
            names = []
            for j, run in enumerate(level):
                name = f"l{li}-{generation:06d}-{j:04d}.sst"
                faults.write_bytes(shard_dir / name, run_to_bytes(run), fsync=True)
                names.append(name)
            level_names.append(names)
        shard_entries.append({"level0": level0_names, "levels": level_names})
        faults.fsync_dir(shard_dir)
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "generation": generation,
        **params,
        "shards": shard_entries,
    }
    manifest["crc32"] = manifest_crc(manifest)
    # Retain the outgoing epoch's manifest for rollback before the new
    # one commits.
    current_path = root / MANIFEST_NAME
    if current_path.exists():
        faults.write_bytes(
            root / PREV_MANIFEST_NAME, current_path.read_bytes(), fsync=True
        )
    # The atomic commit point: write-then-rename the manifest.
    tmp = root / (MANIFEST_NAME + ".tmp")
    faults.write_bytes(tmp, json.dumps(manifest, indent=1).encode(), fsync=True)
    tmp.replace(current_path)
    faults.fsync_dir(root)
    # Garbage-collect run files neither retained epoch references. The
    # previous epoch's files stay on disk so a corrupt newest checkpoint
    # can roll back to an intact one.
    prev_live: Dict[int, Set[str]] = {}
    try:
        prev_manifest = load_manifest(root, name=PREV_MANIFEST_NAME)
    except CorruptionError:
        prev_manifest = None  # unreadable => not a rollback target; GC it
    if prev_manifest is not None:
        prev_live = referenced_runs(prev_manifest)
    for sid, entry in enumerate(shard_entries):
        shard_dir = root / f"shard-{sid:04d}"
        live = set(entry["level0"])
        for names in entry["levels"]:
            live.update(names)
        live |= prev_live.get(sid, set())
        for candidate in shard_dir.glob("*.sst"):
            if candidate.name not in live:
                candidate.unlink()
    return manifest


def promote_previous_epoch(directory: str | Path) -> Dict[str, Any]:
    """Roll the directory back to the retained previous checkpoint.

    Copies ``MANIFEST.prev.json`` over ``MANIFEST.json`` (write-then-
    rename, fsynced) and returns the promoted manifest. The corrupt
    current manifest is preserved as ``MANIFEST.corrupt.json`` for
    post-mortem. Raises :class:`~repro.errors.CorruptionError` if there
    is no intact previous epoch to promote.
    """
    root = Path(directory)
    prev_path = root / PREV_MANIFEST_NAME
    if not prev_path.exists():
        raise CorruptionError(
            f"{root}: no retained previous checkpoint epoch to roll back to"
        )
    manifest = load_manifest(root, name=PREV_MANIFEST_NAME)
    if manifest is None:  # pragma: no cover - exists() raced above
        raise CorruptionError(f"{root}: previous manifest vanished")
    current = root / MANIFEST_NAME
    if current.exists():
        current.replace(root / "MANIFEST.corrupt.json")
    tmp = root / (MANIFEST_NAME + ".tmp")
    faults.write_bytes(tmp, prev_path.read_bytes(), fsync=True)
    tmp.replace(current)
    faults.fsync_dir(root)
    return manifest


def load_shard(
    directory: str | Path,
    manifest: Dict[str, Any],
    shard_id: int,
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> LSMStore:
    """Rebuild one shard's :class:`LSMStore` from a snapshot manifest.

    The per-shard granularity is what the process-mode serving workers
    use: each worker owns a subset of the shards and loads only those
    from the checkpoint, read-only — every registered backend restores
    its filter byte-for-byte from the run's embedded blob, no factory
    needed. A run that *had* a filter but no blob (a custom filter type
    outside :mod:`repro.core.serialization`) follows ``missing_filter``:
    the default raises :class:`~repro.errors.ConfigError`; the workers
    pass ``"drop"`` and serve that run unfiltered (slower, never wrong).

    A referenced run file that is missing, truncated, or fails its
    checksum raises :class:`~repro.errors.CorruptionError` naming the
    file — the caller decides between rollback and surfacing the error;
    partially-loaded state is never returned.
    """
    root = Path(directory)
    entry = manifest["shards"][shard_id]
    shard_dir = root / f"shard-{shard_id:04d}"

    def load_run(name: str) -> SSTable:
        path = shard_dir / name
        try:
            blob = faults.read_bytes(path)
        except FileNotFoundError as exc:
            raise CorruptionError(
                f"{path}: run file referenced by the manifest is missing"
            ) from exc
        try:
            return run_from_bytes(
                blob, filter_factory, missing_filter=missing_filter
            )
        except CorruptionError as exc:
            raise CorruptionError(f"{path}: {exc}") from exc

    level0 = [load_run(name) for name in entry["level0"]]
    levels = [[load_run(name) for name in names] for names in entry["levels"]]
    return LSMStore.from_runs(
        manifest["universe"],
        level0=level0,
        levels=levels,
        memtable_limit=manifest["memtable_limit"],
        compaction_fanout=manifest["compaction_fanout"],
        filter_factory=filter_factory,
        auto_compact=auto_compact,
        compaction_policy=compaction_policy,
        # Pre-TTL manifests carry no clock: restore at 0, the epoch every
        # store starts from.
        ttl_now=int(manifest.get("ttl_now", 0)),
    )


def load_shards(
    directory: str | Path,
    manifest: Dict[str, Any],
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> List[LSMStore]:
    """Rebuild every shard's :class:`LSMStore` from a snapshot manifest."""
    return [
        load_shard(
            directory,
            manifest,
            sid,
            filter_factory=filter_factory,
            auto_compact=auto_compact,
            missing_filter=missing_filter,
            compaction_policy=compaction_policy,
        )
        for sid in range(len(manifest["shards"]))
    ]


# ----------------------------------------------------------------------
# Scrub
# ----------------------------------------------------------------------
def scrub_snapshot(directory: str | Path) -> Dict[str, Any]:
    """Verify every persisted artifact in a checkpoint directory.

    Checks, without mutating anything: the current manifest parses and
    its crc32 matches (v3); every run file each retained manifest
    references exists, passes its checksum, and parses structurally
    (filters are loaded in ``missing_filter="drop"`` mode — scrub
    verifies integrity, not configuration); the WAL's record chain is
    intact (a torn tail is reported but is *not* corruption — crash
    recovery tolerates it by design).

    Returns a report dict: ``ok`` (no corruption anywhere), per-artifact
    statuses, and an ``errors`` list naming each corrupt artifact — the
    shape the CLI ``scrub`` subcommand prints. Unlike loading, scrub
    never raises on corrupt data: its job is a complete damage survey,
    not fail-fast.
    """
    root = Path(directory)
    report: Dict[str, Any] = {
        "directory": str(root),
        "manifest": None,
        "prev_manifest": None,
        "runs_checked": 0,
        "runs_corrupt": 0,
        "wal": None,
        "errors": [],
        "ok": True,
    }

    def check_manifest(name: str) -> Optional[Dict[str, Any]]:
        try:
            manifest = load_manifest(root, name=name)
        except CorruptionError as exc:
            report["errors"].append(str(exc))
            return None
        return manifest

    manifests: List[Tuple[str, Dict[str, Any]]] = []
    for field, name in (
        ("manifest", MANIFEST_NAME),
        ("prev_manifest", PREV_MANIFEST_NAME),
    ):
        manifest = check_manifest(name)
        if manifest is None:
            exists = (root / name).exists()
            report[field] = "corrupt" if exists else "missing"
            if exists:
                report["ok"] = False
        else:
            report[field] = "ok"
            manifests.append((name, manifest))
    if report["manifest"] == "missing" and not manifests:
        # Nothing persisted at all: vacuously intact only if truly empty.
        report["ok"] = report["ok"] and not any(root.glob("shard-*/*.sst"))

    checked: Set[Path] = set()
    for source, manifest in manifests:
        for sid, names in referenced_runs(manifest).items():
            shard_dir = root / f"shard-{sid:04d}"
            for name in sorted(names):
                path = shard_dir / name
                if path in checked:
                    continue
                checked.add(path)
                report["runs_checked"] += 1
                try:
                    run_from_bytes(faults.read_bytes(path), missing_filter="drop")
                except FileNotFoundError:
                    report["runs_corrupt"] += 1
                    report["ok"] = False
                    report["errors"].append(
                        f"{path}: referenced by {source} but missing"
                    )
                except CorruptionError as exc:
                    report["runs_corrupt"] += 1
                    report["ok"] = False
                    report["errors"].append(f"{path}: {exc}")

    wal_path = root / "wal.log"
    if wal_path.exists():
        from repro.engine.wal import scan_wal_file

        records, valid_length, total_length = scan_wal_file(wal_path)
        report["wal"] = {
            "records": len(records),
            "valid_bytes": valid_length,
            "total_bytes": total_length,
            "torn_tail": valid_length < total_length,
        }
    else:
        report["wal"] = "missing"
    return report
