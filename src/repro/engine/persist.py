"""On-disk snapshots of engine state (runs, filters, manifest).

A checkpoint writes one directory:

``MANIFEST.json`` — engine parameters plus, per shard, the run file
names describing the level topology: level 0 newest first, then every
deep level (L1 first, each level's runs in storage order — slices
key-sorted under leveled compaction, age-sorted under tiered);
``MANIFEST.prev.json`` — a retained copy of the *previous* epoch's
manifest, kept so :meth:`ShardedEngine.open` can roll back when the
newest checkpoint fails verification; ``shard-<i>/*.sst`` — one file
per run; ``wal.log`` — the write-ahead log, reset by the checkpoint
and replayed over the snapshot on reopen.

Run format **v4** is columnar and mmap-able: a fixed 96-byte header of
section offsets, then the run's 8-byte-aligned columns exactly as
:class:`~repro.lsm.sstable.SSTable` holds them in memory — sorted
``<u8`` keys, the one-byte value tags, the ``va``/``vb``/``vexp``
operand words, and the var-width value heap — followed by a **per-block
crc32 array** (one checksum per :data:`~repro.lsm.sstable.BLOCK_ENTRIES`
block, covering that block's slice of every column plus its contiguous
heap span) and a filter/metadata section sealed by a crc32 over the
header and metadata together. Loading a v4 file goes through
``np.memmap``: the columns become zero-copy views over the page cache
and no value is deserialised until something actually reads it. There
is no whole-run pickle: values are typed column entries, and only
genuinely opaque objects take a per-value pickle lane inside the heap.

Every checksum failure raises :class:`~repro.errors.CorruptionError` —
the storage layer never serves bytes that failed verification; crc32
detects every single-bit flip and every burst shorter than 32 bits,
which covers the realistic torn-write and bit-rot cases the crash-fuzz
and chaos suites inject (see ``docs/robustness.md``). Alignment padding
is required to be zero, so no byte of a v4 file is outside some check's
coverage.

Durability follows the classic rename-commit protocol, with the fsyncs
real filesystems require: every run blob is fsynced, the manifest is
written to a tmp file and fsynced, the shard directories and the root
directory are fsynced, and only then does the rename of the tmp file
onto ``MANIFEST.json`` commit the checkpoint. Run files are
generation-stamped and never overwritten; garbage collection keeps the
union of the files referenced by the current *and* previous manifests,
so the last two checkpoint epochs are always on disk intact. (On POSIX,
unlinking a GC'd file a reader still has mapped is safe — the mapping
survives until released; an *explicitly released* run raises
:class:`~repro.errors.CorruptionError` on any further read instead of
serving unmapped pages.)

Older formats still load. Manifest version 1 (pre-slicing: per shard a
``level0`` list plus a single ``bottom`` run) is normalised to the
current shape — the bottom becomes a one-run L1. Run versions 1
(no slice metadata), 2 (slice bounds, no checksum) and 3 (row-oriented,
whole-blob crc32 trailer, whole-run pickled values) parse exactly as
before; they are read whole rather than mapped.

A run file embeds the run's *filter bytes* — every backend in
:mod:`repro.filters.registry` (Grafite, Bucketing, SuRF, Rosetta,
Proteus, SNARF, REncoder) has a stable format. Persisting the filter —
rather than rebuilding it from the keys — matters: a rebuild would draw
fresh hash constants, so a reopened store would false-positive on
*different* probes than before the restart. With the blob, query
results are bit-for-bit identical across a reopen. A run whose filter
type has no format is flagged for factory rebuild; loading such a run
without a factory raises :class:`~repro.errors.ConfigError` unless the
caller opts into filterless runs.

All file I/O routes through :mod:`repro.faults` so the chaos suites can
inject torn writes, bit flips and EIO at exactly this seam; with no
fault plan installed those helpers are passthroughs. When a fault plan
targets a run file, loading falls back from ``np.memmap`` to the
byte-reading seam so injected damage is actually observed.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import faults
from repro.core.serialization import (
    filter_from_bytes,
    filter_to_bytes,
    pack_int,
    pack_words,
    unpack_int,
    unpack_words,
)
from repro.errors import (
    ConfigError,
    CorruptionError,
    InvalidParameterError,
    ReproError,
)
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import (
    BLOCK_ENTRIES,
    FilterFactory,
    SSTable,
    _HEAP_TAGS,
    _TYPE_MASK,
)
from repro.lsm.store import LSMStore

_RUN_MAGIC = b"RSST"
_RUN_VERSION = 4          # v4 is columnar + mmap-able; v1/v2/v3 still load
_V4_HEADER = 96           # magic(4) version(2) hdr_size(2) n(8) + 10 u64s

MANIFEST_NAME = "MANIFEST.json"
PREV_MANIFEST_NAME = "MANIFEST.prev.json"
MANIFEST_VERSION = 3      # v3 adds a crc32 field; v1/v2 still load

#: Filter persistence modes recorded in a run file.
_FILTER_NONE = 0       # the run never had a filter
_FILTER_BLOB = 1       # serialised bytes follow; restore exactly
_FILTER_REBUILD = 2    # no stable format; rebuild from keys via the factory


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def stable_run_id(shard_id: int, name: str) -> int:
    """Deterministic 64-bit identity of a checkpointed run file.

    Every process that loads ``shard-<sid>/<name>`` derives the same id,
    which is what lets the shared-memory block cache
    (:class:`~repro.lsm.cache.SharedBlockCache`) key one worker's
    admissions so another worker's probes hit them. Derived from the
    *name*, which is generation-stamped and never reused within a
    directory.
    """
    digest = hashlib.blake2b(
        f"shard-{shard_id:04d}/{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


# ----------------------------------------------------------------------
# Run files — v4 columnar writer
# ----------------------------------------------------------------------
def _block_heap_bounds(
    tags: np.ndarray, va: np.ndarray, vb: np.ndarray, start: int, stop: int
) -> Tuple[int, int]:
    """Absolute ``[lo, hi)`` heap span entries ``[start, stop)`` reference.

    Heap payloads are appended in entry order
    (:func:`~repro.lsm.sstable._encode_one`), so the span is contiguous:
    from the first heap-typed entry's offset to the last's end.
    """
    kinds = tags[start:stop] & np.uint8(_TYPE_MASK)
    idx = np.flatnonzero(np.isin(kinds, _HEAP_TAGS))
    if idx.size == 0:
        return 0, 0
    first = start + int(idx[0])
    last = start + int(idx[-1])
    return int(va[first]), int(va[last]) + int(vb[last])


def _v4_block_crcs(
    keys: np.ndarray,
    tags: np.ndarray,
    va: np.ndarray,
    vb: np.ndarray,
    vexp: np.ndarray,
    heap,
) -> np.ndarray:
    """crc32 per block over its column slices + its heap span, computed
    incrementally over buffer views — no intermediate copies."""
    n = int(keys.size)
    nblocks = -(-n // BLOCK_ENTRIES)
    heap_mv = memoryview(heap)
    crcs = np.empty(nblocks, dtype=np.uint32)
    for b in range(nblocks):
        start = b * BLOCK_ENTRIES
        stop = min(start + BLOCK_ENTRIES, n)
        crc = zlib.crc32(keys[start:stop])
        crc = zlib.crc32(tags[start:stop], crc)
        crc = zlib.crc32(va[start:stop], crc)
        crc = zlib.crc32(vb[start:stop], crc)
        crc = zlib.crc32(vexp[start:stop], crc)
        heap_lo, heap_hi = _block_heap_bounds(tags, va, vb, start, stop)
        if heap_hi > heap_lo:
            crc = zlib.crc32(heap_mv[heap_lo:heap_hi], crc)
        crcs[b] = crc & 0xFFFFFFFF
    return crcs


def _filter_parts(run: SSTable) -> Tuple[int, bytes]:
    filt = run.filter
    if filt is None:
        return _FILTER_NONE, b""
    try:
        return _FILTER_BLOB, filter_to_bytes(filt)
    except InvalidParameterError:
        return _FILTER_REBUILD, b""


def _bounds_part(run: SSTable) -> bytes:
    bounds = run.slice_bounds
    if bounds is None:
        return struct.pack("<B", 0)
    return struct.pack("<B", 1) + pack_int(bounds[0]) + pack_int(bounds[1])


def run_to_bytes(run: SSTable) -> bytes:
    """Serialise one immutable run in columnar format v4.

    Layout: a 96-byte header (magic, version, entry count, the offset of
    every section, heap and metadata lengths), then 8-byte-aligned
    sections — keys, tags, ``va``, ``vb``, ``vexp``, heap, the per-block
    crc32 array, and metadata (universe, slice bounds, filter mode +
    blob) ending in a crc32 over header+metadata. The section layout is
    byte-identical to what ``np.memmap`` hands back on load, so writing
    is a straight column dump and loading is zero-copy.
    """
    keys = np.ascontiguousarray(run.keys_view(), dtype=np.uint64)
    tags_c, va_c, vb_c, vexp_c, heap = run.value_columns()
    tags = np.ascontiguousarray(tags_c, dtype=np.uint8)
    va = np.ascontiguousarray(va_c, dtype=np.uint64)
    vb = np.ascontiguousarray(vb_c, dtype=np.uint64)
    vexp = np.ascontiguousarray(vexp_c, dtype=np.uint64)
    n = int(keys.size)
    nblocks = -(-n // BLOCK_ENTRIES)
    heap_len = len(heap)

    off_keys = _V4_HEADER
    off_tags = off_keys + 8 * n
    off_va = _align8(off_tags + n)
    off_vb = off_va + 8 * n
    off_vexp = off_vb + 8 * n
    off_heap = off_vexp + 8 * n
    off_blockcrc = _align8(off_heap + heap_len)
    off_meta = _align8(off_blockcrc + 4 * nblocks)

    filter_mode, filter_blob = _filter_parts(run)
    meta_body = b"".join([
        pack_int(run.universe),
        _bounds_part(run),
        struct.pack("<BQ", filter_mode, len(filter_blob)),
        filter_blob,
    ])
    meta_len = len(meta_body) + 4  # + crc32 trailer

    header = struct.pack("<4sHHQ", _RUN_MAGIC, _RUN_VERSION, _V4_HEADER, n)
    header += struct.pack(
        "<10Q", off_keys, off_tags, off_va, off_vb, off_vexp,
        off_heap, off_blockcrc, off_meta, heap_len, meta_len,
    )
    meta_crc = zlib.crc32(meta_body, zlib.crc32(header)) & 0xFFFFFFFF

    out = bytearray(off_meta + meta_len)
    out[0:_V4_HEADER] = header
    out[off_keys:off_keys + 8 * n] = keys.tobytes()
    out[off_tags:off_tags + n] = tags.tobytes()
    out[off_va:off_va + 8 * n] = va.tobytes()
    out[off_vb:off_vb + 8 * n] = vb.tobytes()
    out[off_vexp:off_vexp + 8 * n] = vexp.tobytes()
    out[off_heap:off_heap + heap_len] = heap
    crcs = _v4_block_crcs(keys, tags, va, vb, vexp, heap)
    out[off_blockcrc:off_blockcrc + 4 * nblocks] = (
        crcs.astype("<u4").tobytes()
    )
    out[off_meta:off_meta + len(meta_body)] = meta_body
    out[off_meta + len(meta_body):] = struct.pack("<I", meta_crc)
    return bytes(out)


# ----------------------------------------------------------------------
# Run files — parsing (v4 zero-copy; v1–v3 legacy)
# ----------------------------------------------------------------------
def _restore_filter(
    filter_mode: int,
    filter_blob: bytes,
    keys: np.ndarray,
    universe: int,
    filter_factory: Optional[FilterFactory],
    missing_filter: str,
):
    if filter_mode == _FILTER_BLOB:
        return filter_from_bytes(filter_blob)
    if filter_mode == _FILTER_REBUILD and filter_factory is not None:
        return filter_factory(keys, universe)
    if filter_mode == _FILTER_REBUILD and missing_filter == "raise":
        raise ConfigError(
            "snapshot run was built with a filter that has no stable byte "
            "format, and no filter_factory was provided to rebuild it — "
            "pass the factory the engine was created with, or opt into "
            "filterless runs explicitly with missing_filter='drop'"
        )
    return None


def _parse_run_v4(
    buf,
    filter_factory: Optional[FilterFactory],
    missing_filter: str,
    *,
    backing=None,
) -> SSTable:
    mv = memoryview(buf)
    if len(mv) < _V4_HEADER:
        raise CorruptionError("run file too short for a v4 header")
    header = bytes(mv[:_V4_HEADER])
    _, _, header_size, n = struct.unpack_from("<4sHHQ", header, 0)
    if header_size != _V4_HEADER:
        raise CorruptionError(f"unexpected v4 header size {header_size}")
    (
        off_keys, off_tags, off_va, off_vb, off_vexp,
        off_heap, off_blockcrc, off_meta, heap_len, meta_len,
    ) = struct.unpack_from("<10Q", header, 16)
    nblocks = -(-n // BLOCK_ENTRIES)
    expected = [
        (off_keys, 8 * n), (off_tags, n), (off_va, 8 * n), (off_vb, 8 * n),
        (off_vexp, 8 * n), (off_heap, heap_len), (off_blockcrc, 4 * nblocks),
        (off_meta, meta_len),
    ]
    cursor = _V4_HEADER
    for off, length in expected:
        if off < cursor or off + length > len(mv):
            raise CorruptionError("run file truncated or section offsets invalid")
        # Alignment gaps must be zero: every padding byte is covered by
        # *some* check, so no flip hides between sections.
        if any(mv[cursor:off]):
            raise CorruptionError("run file padding is not zero")
        cursor = off + length
    if meta_len < 4:
        raise CorruptionError("run metadata too short for its checksum")
    meta = bytes(mv[off_meta:off_meta + meta_len])
    (recorded_meta,) = struct.unpack_from("<I", meta, meta_len - 4)
    actual_meta = zlib.crc32(meta[:-4], zlib.crc32(header)) & 0xFFFFFFFF
    if actual_meta != recorded_meta:
        raise CorruptionError(
            f"run metadata checksum mismatch: recorded {recorded_meta:#010x}, "
            f"computed {actual_meta:#010x}"
        )

    keys = np.frombuffer(mv, dtype=np.uint64, count=n, offset=off_keys)
    tags = np.frombuffer(mv, dtype=np.uint8, count=n, offset=off_tags)
    va = np.frombuffer(mv, dtype=np.uint64, count=n, offset=off_va)
    vb = np.frombuffer(mv, dtype=np.uint64, count=n, offset=off_vb)
    vexp = np.frombuffer(mv, dtype=np.uint64, count=n, offset=off_vexp)
    heap = mv[off_heap:off_heap + heap_len]

    recorded_crcs = np.frombuffer(
        mv, dtype="<u4", count=nblocks, offset=off_blockcrc
    )
    actual_crcs = _v4_block_crcs(keys, tags, va, vb, vexp, heap)
    if not np.array_equal(recorded_crcs, actual_crcs):
        bad = int(np.flatnonzero(recorded_crcs != actual_crcs)[0])
        raise CorruptionError(
            f"run block {bad} checksum mismatch: recorded "
            f"{int(recorded_crcs[bad]):#010x}, computed "
            f"{int(actual_crcs[bad]):#010x}"
        )

    offset = 0
    universe, offset = unpack_int(meta, offset)
    (has_bounds,) = struct.unpack_from("<B", meta, offset)
    offset += 1
    slice_bounds = None
    if has_bounds:
        bounds_lo, offset = unpack_int(meta, offset)
        bounds_hi, offset = unpack_int(meta, offset)
        slice_bounds = (int(bounds_lo), int(bounds_hi))
    filter_mode, filter_len = struct.unpack_from("<BQ", meta, offset)
    offset += 9
    filter_blob = meta[offset:offset + filter_len]
    if len(filter_blob) != filter_len:
        raise CorruptionError("run filter blob truncated")
    filt = _restore_filter(
        filter_mode, filter_blob, keys, int(universe),
        filter_factory, missing_filter,
    )
    return SSTable.from_columns(
        keys, tags, va, vb, vexp, heap, int(universe), filt,
        slice_bounds=slice_bounds, backing=backing,
    )


def _parse_run_legacy(
    buf: bytes,
    version: int,
    filter_factory: Optional[FilterFactory],
    missing_filter: str,
) -> SSTable:
    """Row-oriented formats v1–v3 (tombstone bitmask + whole-run pickled
    live values; v3 adds a crc32 trailer)."""
    if version >= 3:
        if len(buf) < 10:
            raise CorruptionError("run blob too short to hold its checksum")
        (recorded,) = struct.unpack_from("<I", buf, len(buf) - 4)
        buf = buf[:-4]
        actual = zlib.crc32(buf) & 0xFFFFFFFF
        if actual != recorded:
            raise CorruptionError(
                f"run checksum mismatch: recorded {recorded:#010x}, "
                f"computed {actual:#010x}"
            )
    offset = 6
    (n,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    universe, offset = unpack_int(buf, offset)
    keys, offset = unpack_words(buf, offset)
    if keys.size != n:
        raise CorruptionError("run key count does not match header")
    (mask_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    tombstone_mask = buf[offset:offset + mask_len]
    if len(tombstone_mask) != mask_len:
        raise CorruptionError("run tombstone mask truncated")
    offset += mask_len
    (values_len,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    if len(buf) < offset + values_len:
        raise CorruptionError("run value section truncated")
    live_values = pickle.loads(buf[offset:offset + values_len])
    offset += values_len
    slice_bounds = None
    if version >= 2:
        (has_bounds,) = struct.unpack_from("<B", buf, offset)
        offset += 1
        if has_bounds:
            bounds_lo, offset = unpack_int(buf, offset)
            bounds_hi, offset = unpack_int(buf, offset)
            slice_bounds = (int(bounds_lo), int(bounds_hi))
    filter_mode, filter_len = struct.unpack_from("<BQ", buf, offset)
    offset += 9
    filter_blob = buf[offset:offset + filter_len]
    if len(filter_blob) != filter_len:
        raise CorruptionError("run filter blob truncated")

    values: List[Any] = []
    live_iter = iter(live_values)
    for i in range(n):
        if tombstone_mask[i // 8] >> (i % 8) & 1:
            values.append(TOMBSTONE)
        else:
            values.append(next(live_iter))

    filt = _restore_filter(
        filter_mode, filter_blob, keys, int(universe),
        filter_factory, missing_filter,
    )
    return SSTable.from_parts(
        keys, values, int(universe), filt, slice_bounds=slice_bounds
    )


def _parse_run(
    buf,
    filter_factory: Optional[FilterFactory],
    missing_filter: str,
    *,
    backing=None,
) -> SSTable:
    head = bytes(memoryview(buf)[:6])
    if head[:4] != _RUN_MAGIC:
        raise CorruptionError("not a serialised SSTable run (bad magic)")
    (version,) = struct.unpack_from("<H", head, 4)
    if version == _RUN_VERSION:
        return _parse_run_v4(
            buf, filter_factory, missing_filter, backing=backing
        )
    if version in (1, 2, 3):
        return _parse_run_legacy(
            bytes(memoryview(buf)), version, filter_factory, missing_filter
        )
    raise CorruptionError(f"unsupported run format version {version}")


def run_from_bytes(
    buf,
    filter_factory: Optional[FilterFactory] = None,
    *,
    missing_filter: str = "raise",
    backing=None,
) -> SSTable:
    """Load a run serialised by :func:`run_to_bytes` (any version).

    ``buf`` may be ``bytes`` or any contiguous buffer — notably an
    ``np.memmap`` of the run file, in which case a v4 run adopts the
    mapping zero-copy and ``backing`` should be the memmap so the run
    keeps the mapping alive for as long as any view needs it.

    Every stored checksum is verified before the bytes are trusted: the
    v4 metadata crc and every per-block crc (eagerly — a later
    lazily-discovered bad block could not roll the open back), or the
    v3 whole-blob trailer. A mismatch — or any structural damage, in
    any version — raises :class:`~repro.errors.CorruptionError`. The
    caller (shard loading in :meth:`ShardedEngine.open`) treats that as
    "this checkpoint epoch is bad" and rolls back rather than serving a
    partially-decoded run.

    A run whose filter had a stable byte format restores it from the
    embedded blob regardless of ``filter_factory``. A run flagged
    ``_FILTER_REBUILD`` (it *had* a filter, but one this build could not
    serialise) needs the factory back; without one the behaviour follows
    ``missing_filter``:

    * ``"raise"`` (default) — raise :class:`~repro.errors.ConfigError`.
      Silently coming back filterless used to turn every probe into a
      run read, an order-of-magnitude regression discovered only by
      profiling.
    * ``"drop"`` — restore the run without a filter (correct, slower).
      This is what read-only snapshot workers opt into: they own no
      factory by design and verification-only reads are acceptable
      there.
    """
    if missing_filter not in ("raise", "drop"):
        raise InvalidParameterError(
            f"missing_filter must be 'raise' or 'drop', got {missing_filter!r}"
        )
    try:
        return _parse_run(
            buf, filter_factory, missing_filter, backing=backing
        )
    except ReproError:
        raise
    except Exception as exc:
        # struct.error, pickle errors, numpy shape errors, StopIteration
        # from the live-value zip — all mean the bytes are not a run.
        raise CorruptionError(f"run blob failed to parse: {exc!r}") from exc


# ----------------------------------------------------------------------
# Manifest + whole-engine snapshots
# ----------------------------------------------------------------------
def manifest_crc(manifest: Dict[str, Any]) -> int:
    """crc32 over the canonical dump of a manifest (its ``crc32`` field
    excluded): sorted keys, compact separators — independent of the
    indentation the file on disk happens to use."""
    body = {k: v for k, v in manifest.items() if k != "crc32"}
    dump = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(dump.encode("utf-8")) & 0xFFFFFFFF


def load_manifest(
    directory: str | Path, *, name: str = MANIFEST_NAME
) -> Optional[Dict[str, Any]]:
    """Read a manifest or return ``None`` when the dir has none.

    Accepts every manifest version. A version-3 manifest must carry a
    matching ``crc32`` field or :class:`~repro.errors.CorruptionError`
    is raised; unparseable JSON raises the same. A version-1 manifest
    (pre-slicing: per shard ``{"level0": [...], "bottom": name}``) is
    normalised in memory to the current shape — the single bottom run
    becomes a one-run L1 — so every caller sees one topology format.

    ``name`` selects which manifest file to read: the default current
    epoch, or :data:`PREV_MANIFEST_NAME` for the retained previous one.
    """
    path = Path(directory) / name
    if not path.exists():
        return None
    raw = faults.read_bytes(path)
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptionError(f"{path}: manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CorruptionError(f"{path}: manifest is not a JSON object")
    version = manifest.get("manifest_version")
    if version not in (1, 2, MANIFEST_VERSION):
        raise CorruptionError(f"{path}: unsupported manifest version {version}")
    if version >= 3:
        recorded = manifest.get("crc32")
        actual = manifest_crc(manifest)
        if recorded != actual:
            raise CorruptionError(
                f"{path}: manifest checksum mismatch: recorded "
                f"{recorded!r}, computed {actual:#010x}"
            )
    if version == 1:
        for entry in manifest.get("shards", []):
            bottom = entry.pop("bottom", None)
            entry["levels"] = [[bottom]] if bottom is not None else []
    return manifest


def referenced_runs(manifest: Dict[str, Any]) -> Dict[int, Set[str]]:
    """Per shard id, the run-file names a manifest keeps alive."""
    out: Dict[int, Set[str]] = {}
    for sid, entry in enumerate(manifest.get("shards", [])):
        live = set(entry.get("level0", []))
        for names in entry.get("levels", []):
            live.update(names)
        out[sid] = live
    return out


def save_snapshot(
    directory: str | Path,
    params: Dict[str, Any],
    shards: List[LSMStore],
) -> Dict[str, Any]:
    """Write every shard's runs plus the manifest; returns the manifest.

    ``params`` carries the engine construction parameters (universe,
    shard count, memtable limit, fanout) so :meth:`ShardedEngine.open`
    can rebuild the topology without user input. Memtables are *not*
    snapshotted — the caller flushes them first (checkpoint) or relies on
    the WAL to replay them (crash).

    Durability protocol, in order: (1) every run blob is written and
    fsynced; (2) each shard directory is fsynced so the new files'
    directory entries are durable; (3) the outgoing ``MANIFEST.json`` is
    *copied* to ``MANIFEST.prev.json`` (copied, not renamed — a crash
    between two renames would leave the directory with no current
    manifest at all, which reads as "fresh directory"); (4) the new
    manifest is written to a tmp file, fsynced, and renamed over
    ``MANIFEST.json``; (5) the root directory is fsynced, making the
    rename — the commit point — durable. A crash at *any* point leaves
    either the old or the new checkpoint fully intact.

    As each run file lands, the in-memory run is stamped with its
    :func:`stable_run_id`, so the writing process and any worker that
    later loads the same file agree on the run's shared-cache identity.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    previous = load_manifest(root)
    generation = (previous.get("generation", 0) + 1) if previous else 1
    shard_entries = []
    for sid, store in enumerate(shards):
        shard_dir = root / f"shard-{sid:04d}"
        shard_dir.mkdir(exist_ok=True)
        # Run files are generation-stamped and never overwritten: until
        # the manifest rename below commits this checkpoint, the previous
        # manifest still points at intact files, so a crash at *any*
        # point in this function leaves the old checkpoint recoverable.
        level0_names = []
        for j, run in enumerate(store.level0_runs):
            name = f"run-{generation:06d}-{j:04d}.sst"
            faults.write_bytes(shard_dir / name, run_to_bytes(run), fsync=True)
            run.shared_id = stable_run_id(sid, name)
            level0_names.append(name)
        level_names: List[List[str]] = []
        for li, level in enumerate(store.levels, start=1):
            names = []
            for j, run in enumerate(level):
                name = f"l{li}-{generation:06d}-{j:04d}.sst"
                faults.write_bytes(shard_dir / name, run_to_bytes(run), fsync=True)
                run.shared_id = stable_run_id(sid, name)
                names.append(name)
            level_names.append(names)
        shard_entries.append({"level0": level0_names, "levels": level_names})
        faults.fsync_dir(shard_dir)
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "generation": generation,
        **params,
        "shards": shard_entries,
    }
    manifest["crc32"] = manifest_crc(manifest)
    # Retain the outgoing epoch's manifest for rollback before the new
    # one commits.
    current_path = root / MANIFEST_NAME
    if current_path.exists():
        faults.write_bytes(
            root / PREV_MANIFEST_NAME, current_path.read_bytes(), fsync=True
        )
    # The atomic commit point: write-then-rename the manifest.
    tmp = root / (MANIFEST_NAME + ".tmp")
    faults.write_bytes(tmp, json.dumps(manifest, indent=1).encode(), fsync=True)
    tmp.replace(current_path)
    faults.fsync_dir(root)
    # Garbage-collect run files neither retained epoch references. The
    # previous epoch's files stay on disk so a corrupt newest checkpoint
    # can roll back to an intact one. (A GC'd file some reader still has
    # mapped stays readable through its mapping until released.)
    prev_live: Dict[int, Set[str]] = {}
    try:
        prev_manifest = load_manifest(root, name=PREV_MANIFEST_NAME)
    except CorruptionError:
        prev_manifest = None  # unreadable => not a rollback target; GC it
    if prev_manifest is not None:
        prev_live = referenced_runs(prev_manifest)
    for sid, entry in enumerate(shard_entries):
        shard_dir = root / f"shard-{sid:04d}"
        live = set(entry["level0"])
        for names in entry["levels"]:
            live.update(names)
        live |= prev_live.get(sid, set())
        for candidate in shard_dir.glob("*.sst"):
            if candidate.name not in live:
                candidate.unlink()
    return manifest


def promote_previous_epoch(directory: str | Path) -> Dict[str, Any]:
    """Roll the directory back to the retained previous checkpoint.

    Copies ``MANIFEST.prev.json`` over ``MANIFEST.json`` (write-then-
    rename, fsynced) and returns the promoted manifest. The corrupt
    current manifest is preserved as ``MANIFEST.corrupt.json`` for
    post-mortem. Raises :class:`~repro.errors.CorruptionError` if there
    is no intact previous epoch to promote.
    """
    root = Path(directory)
    prev_path = root / PREV_MANIFEST_NAME
    if not prev_path.exists():
        raise CorruptionError(
            f"{root}: no retained previous checkpoint epoch to roll back to"
        )
    manifest = load_manifest(root, name=PREV_MANIFEST_NAME)
    if manifest is None:  # pragma: no cover - exists() raced above
        raise CorruptionError(f"{root}: previous manifest vanished")
    current = root / MANIFEST_NAME
    if current.exists():
        current.replace(root / "MANIFEST.corrupt.json")
    tmp = root / (MANIFEST_NAME + ".tmp")
    faults.write_bytes(tmp, prev_path.read_bytes(), fsync=True)
    tmp.replace(current)
    faults.fsync_dir(root)
    return manifest


def load_shard(
    directory: str | Path,
    manifest: Dict[str, Any],
    shard_id: int,
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> LSMStore:
    """Rebuild one shard's :class:`LSMStore` from a snapshot manifest.

    A v4 run file is opened with ``np.memmap``: its columns become
    zero-copy views over the page cache (checksums are still verified
    eagerly — integrity before laziness), the mapping is retained as the
    run's backing, and the run is stamped with its
    :func:`stable_run_id` for the shared block cache. When a fault plan
    targets the file, loading falls back to the byte-reading seam so
    injected bit flips and EIO are observed. Legacy v1–v3 files are read
    whole, as always.

    The per-shard granularity is what the process-mode serving workers
    use: each worker owns a subset of the shards and loads only those
    from the checkpoint, read-only — every registered backend restores
    its filter byte-for-byte from the run's embedded blob, no factory
    needed. A run that *had* a filter but no blob (a custom filter type
    outside :mod:`repro.core.serialization`) follows ``missing_filter``:
    the default raises :class:`~repro.errors.ConfigError`; the workers
    pass ``"drop"`` and serve that run unfiltered (slower, never wrong).

    A referenced run file that is missing, truncated, or fails its
    checksum raises :class:`~repro.errors.CorruptionError` naming the
    file — the caller decides between rollback and surfacing the error;
    partially-loaded state is never returned.
    """
    root = Path(directory)
    entry = manifest["shards"][shard_id]
    shard_dir = root / f"shard-{shard_id:04d}"

    def load_run(name: str) -> SSTable:
        path = shard_dir / name
        try:
            if faults._active_for(path) is None:
                mapped = np.memmap(path, dtype=np.uint8, mode="r")
                run = run_from_bytes(
                    mapped, filter_factory,
                    missing_filter=missing_filter, backing=mapped,
                )
            else:
                # Fault injection targets this file: read through the
                # seam so the plan's damage is actually applied.
                run = run_from_bytes(
                    faults.read_bytes(path), filter_factory,
                    missing_filter=missing_filter,
                )
        except FileNotFoundError as exc:
            raise CorruptionError(
                f"{path}: run file referenced by the manifest is missing"
            ) from exc
        except CorruptionError as exc:
            raise CorruptionError(f"{path}: {exc}") from exc
        except ReproError:
            raise  # e.g. ConfigError: a configuration problem, not damage
        except ValueError as exc:
            # np.memmap refuses empty files; nothing valid is that short.
            raise CorruptionError(f"{path}: {exc!r}") from exc
        run.shared_id = stable_run_id(shard_id, name)
        return run

    level0 = [load_run(name) for name in entry["level0"]]
    levels = [[load_run(name) for name in names] for names in entry["levels"]]
    return LSMStore.from_runs(
        manifest["universe"],
        level0=level0,
        levels=levels,
        memtable_limit=manifest["memtable_limit"],
        compaction_fanout=manifest["compaction_fanout"],
        filter_factory=filter_factory,
        auto_compact=auto_compact,
        compaction_policy=compaction_policy,
        # Pre-TTL manifests carry no clock: restore at 0, the epoch every
        # store starts from.
        ttl_now=int(manifest.get("ttl_now", 0)),
    )


def load_shards(
    directory: str | Path,
    manifest: Dict[str, Any],
    *,
    filter_factory: Optional[FilterFactory] = None,
    auto_compact: bool = True,
    missing_filter: str = "raise",
    compaction_policy=None,
) -> List[LSMStore]:
    """Rebuild every shard's :class:`LSMStore` from a snapshot manifest."""
    return [
        load_shard(
            directory,
            manifest,
            sid,
            filter_factory=filter_factory,
            auto_compact=auto_compact,
            missing_filter=missing_filter,
            compaction_policy=compaction_policy,
        )
        for sid in range(len(manifest["shards"]))
    ]


# ----------------------------------------------------------------------
# Scrub
# ----------------------------------------------------------------------
def scrub_snapshot(directory: str | Path) -> Dict[str, Any]:
    """Verify every persisted artifact in a checkpoint directory.

    Checks, without mutating anything: the current manifest parses and
    its crc32 matches (v3); every run file each retained manifest
    references exists, passes its checksums — for a v4 run that means
    the metadata crc *and every per-block crc32*, so a flip in any
    single block is pinpointed — and parses structurally (filters are
    loaded in ``missing_filter="drop"`` mode — scrub verifies integrity,
    not configuration); the WAL's record chain is intact (a torn tail is
    reported but is *not* corruption — crash recovery tolerates it by
    design).

    Returns a report dict: ``ok`` (no corruption anywhere), per-artifact
    statuses, and an ``errors`` list naming each corrupt artifact — the
    shape the CLI ``scrub`` subcommand prints. Unlike loading, scrub
    never raises on corrupt data: its job is a complete damage survey,
    not fail-fast.
    """
    root = Path(directory)
    report: Dict[str, Any] = {
        "directory": str(root),
        "manifest": None,
        "prev_manifest": None,
        "runs_checked": 0,
        "runs_corrupt": 0,
        "wal": None,
        "errors": [],
        "ok": True,
    }

    def check_manifest(name: str) -> Optional[Dict[str, Any]]:
        try:
            manifest = load_manifest(root, name=name)
        except CorruptionError as exc:
            report["errors"].append(str(exc))
            return None
        return manifest

    manifests: List[Tuple[str, Dict[str, Any]]] = []
    for field, name in (
        ("manifest", MANIFEST_NAME),
        ("prev_manifest", PREV_MANIFEST_NAME),
    ):
        manifest = check_manifest(name)
        if manifest is None:
            exists = (root / name).exists()
            report[field] = "corrupt" if exists else "missing"
            if exists:
                report["ok"] = False
        else:
            report[field] = "ok"
            manifests.append((name, manifest))
    if report["manifest"] == "missing" and not manifests:
        # Nothing persisted at all: vacuously intact only if truly empty.
        report["ok"] = report["ok"] and not any(root.glob("shard-*/*.sst"))

    checked: Set[Path] = set()
    for source, manifest in manifests:
        for sid, names in referenced_runs(manifest).items():
            shard_dir = root / f"shard-{sid:04d}"
            for name in sorted(names):
                path = shard_dir / name
                if path in checked:
                    continue
                checked.add(path)
                report["runs_checked"] += 1
                try:
                    run_from_bytes(faults.read_bytes(path), missing_filter="drop")
                except FileNotFoundError:
                    report["runs_corrupt"] += 1
                    report["ok"] = False
                    report["errors"].append(
                        f"{path}: referenced by {source} but missing"
                    )
                except CorruptionError as exc:
                    report["runs_corrupt"] += 1
                    report["ok"] = False
                    report["errors"].append(f"{path}: {exc}")

    wal_path = root / "wal.log"
    if wal_path.exists():
        from repro.engine.wal import scan_wal_file

        records, valid_length, total_length = scan_wal_file(wal_path)
        report["wal"] = {
            "records": len(records),
            "valid_bytes": valid_length,
            "total_bytes": total_length,
            "torn_tail": valid_length < total_length,
        }
    else:
        report["wal"] = "missing"
    return report


# ----------------------------------------------------------------------
# Legacy writer (fixture generation for format-compat tests)
# ----------------------------------------------------------------------
def _run_to_bytes_v3(run: SSTable) -> bytes:
    """Serialise a run in the retired row-oriented v3 format.

    Kept (private) so the format-compatibility suite can generate
    genuine v1–v3 snapshots to prove they still reopen byte-for-byte;
    production writes always use v4.
    """
    n = len(run)
    keys = np.asarray(run.keys_view(), dtype=np.uint64)
    tombstone_mask = bytearray((n + 7) // 8)
    live_values: List[Any] = []
    for i, (_, value) in enumerate(run.entries()):
        if value is TOMBSTONE:
            tombstone_mask[i // 8] |= 1 << (i % 8)
        else:
            live_values.append(value)
    values_blob = pickle.dumps(live_values, protocol=pickle.HIGHEST_PROTOCOL)
    filter_mode, filter_blob = _filter_parts(run)
    parts = [
        _RUN_MAGIC,
        struct.pack("<H", 3),
        struct.pack("<Q", n),
        pack_int(run.universe),
        pack_words(keys),
        struct.pack("<Q", len(tombstone_mask)),
        bytes(tombstone_mask),
        struct.pack("<Q", len(values_blob)),
        values_blob,
        _bounds_part(run),
        struct.pack("<BQ", filter_mode, len(filter_blob)),
        filter_blob,
    ]
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
