"""repro.engine — a sharded, persistent, batch-query storage engine.

This package scales the single-shard in-memory :class:`repro.lsm.LSMStore`
into the system the paper motivates (§1, §6.7): a RocksDB-style store
serving heavy range-query traffic behind in-memory filters.

* :class:`~repro.engine.engine.ShardedEngine` — the façade: key-range
  sharding, WAL durability, checkpoints, batch queries;
* :class:`~repro.engine.sharding.ShardRouter` — contiguous key-range
  partitioning and cross-shard query splitting;
* :class:`~repro.engine.wal.WriteAheadLog` — torn-tail-tolerant
  durability log;
* :mod:`~repro.engine.persist` — snapshot format for runs *and* their
  filters (reopened engines answer queries identically);
* :func:`~repro.engine.batch.batch_range_empty` — vectorised emptiness
  probes through the filters' batch API;
* :class:`~repro.engine.scheduler.CompactionScheduler` — deferred
  compaction drained between batches (thread-safe queue);
* :class:`~repro.engine.service.RangeQueryService` — the concurrent
  serving layer: thread-pool query fan-out behind per-shard
  reader/writer locks, a background compaction worker, and a sharded
  block cache in front of the simulated disk;
* :class:`~repro.engine.workers.ShardWorkerPool` — process-mode back
  end: per-shard snapshot workers behind ``multiprocessing``
  shared-memory query rings, invalidated by the checkpoint-epoch
  handshake (``mode="process"`` on the service);
* :class:`~repro.engine.autotune.AutoTuner` — per-shard filter backend
  auto-tuning from live workload telemetry (range lengths + windowed
  false-positive rate), switching between the robust Grafite default
  and the heuristic backends of :mod:`repro.filters.registry` where
  they win;
* :class:`~repro.engine.planner.BatchPlanner` — the batch query
  planner: a dedup/cover-merge rewrite pass, an epoch-tagged
  negative-result cache keyed by ``runs_version``, and a cost model
  choosing scalar/columnar/process execution per sub-batch
  (``attach_planner`` on the engine; ``--plan`` on the CLI).
"""

from repro.engine.autotune import AutoTunePolicy, AutoTuner, Decision
from repro.engine.batch import (
    ColumnarPlan,
    batch_range_empty,
    route_columnar,
    shard_batch_empty,
)
from repro.engine.engine import ShardedEngine
from repro.engine.persist import (
    PREV_MANIFEST_NAME,
    load_manifest,
    load_shards,
    promote_previous_epoch,
    run_from_bytes,
    run_to_bytes,
    save_snapshot,
    scrub_snapshot,
)
from repro.engine.planner import (
    BatchPlan,
    BatchPlanner,
    CostModel,
    NegativeRangeCache,
    plan_batch,
)
from repro.engine.scheduler import CompactionScheduler, TokenBucket
from repro.engine.service import RangeQueryService, RWLock
from repro.engine.sharding import ShardRouter
from repro.engine.strings import StringView
from repro.engine.wal import OP_CLOCK, OP_DELETE, OP_PUT, WriteAheadLog
from repro.engine.workers import ShardWorkerPool, WorkerError

__all__ = [
    "AutoTunePolicy",
    "AutoTuner",
    "BatchPlan",
    "BatchPlanner",
    "ColumnarPlan",
    "CompactionScheduler",
    "CostModel",
    "Decision",
    "NegativeRangeCache",
    "OP_CLOCK",
    "OP_DELETE",
    "OP_PUT",
    "PREV_MANIFEST_NAME",
    "RWLock",
    "RangeQueryService",
    "ShardRouter",
    "ShardWorkerPool",
    "ShardedEngine",
    "StringView",
    "TokenBucket",
    "WorkerError",
    "WriteAheadLog",
    "batch_range_empty",
    "load_manifest",
    "load_shards",
    "plan_batch",
    "promote_previous_epoch",
    "route_columnar",
    "run_from_bytes",
    "run_to_bytes",
    "save_snapshot",
    "scrub_snapshot",
    "shard_batch_empty",
]
