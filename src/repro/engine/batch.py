"""Vectorised batch range-emptiness over a sharded engine.

A serving tier rarely asks one question at a time: it accumulates a
batch of range probes and wants them answered at throughput, not
per-call latency. The batch path here keeps the per-query python
overhead out of the common case:

1. queries are routed to shards in bulk (numpy on the bound arrays; only
   the rare cross-shard query takes a python split);
2. per shard, every run's filter is consulted once for the *whole*
   sub-batch via :meth:`RangeFilter.may_contain_range_batch` — for
   Grafite that is the vectorised Algorithm 2, an ``O(log(L/eps))``
   probe amortised over thousands of queries;
3. only queries some filter (or the memtable) flagged as "maybe
   non-empty" fall back to the exact early-exit
   :meth:`~repro.lsm.store.LSMStore.range_empty` — under a well-sized
   filter that is the FPR-sized minority.

Queries proven empty by the filters cost zero simulated I/O and are
credited to ``reads_avoided``, matching the scalar path's accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import InvalidQueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.engine import ShardedEngine
    from repro.lsm.store import LSMStore


def route_single_shard(
    router, los: np.ndarray, his: np.ndarray
) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]], np.ndarray]:
    """Group single-shard queries: ``({sid: (los, his, qids)}, straddler_qids)``.

    Single-shard queries (the overwhelming majority when shards are much
    wider than ranges) are grouped with pure numpy; queries straddling a
    shard boundary are returned as indices for the caller to handle —
    the engine splits them into per-shard segments, the concurrent
    service answers them atomically under all spanned shards' locks.
    """
    no_straddlers = np.zeros(0, dtype=np.int64)
    if router.num_shards == 1:  # width may be 2^64: no uint64 division
        groups = {0: (los, his, np.arange(los.size, dtype=np.int64))}
        return groups, no_straddlers
    width = np.uint64(router.shard_width)
    sid_lo = (los // width).astype(np.int64)
    sid_hi = (his // width).astype(np.int64)
    single = sid_lo == sid_hi

    per_shard: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    if single.any():
        qids = np.flatnonzero(single)
        order = np.argsort(sid_lo[qids], kind="stable")
        qids = qids[order]
        sids = sid_lo[qids]
        cuts = np.flatnonzero(np.diff(sids)) + 1
        for group in np.split(qids, cuts):
            sid = int(sid_lo[group[0]])
            per_shard[sid] = (los[group], his[group], group)
    return per_shard, np.flatnonzero(~single)


def _route_batch(
    engine: "ShardedEngine", los: np.ndarray, his: np.ndarray
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Group (sub-)queries by shard: ``sid -> (sub_los, sub_his, qids)``.

    Queries straddling a boundary are split exactly like the scalar
    router does.
    """
    router = engine.router
    singles, straddlers = route_single_shard(router, los, his)
    per_shard: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {
        sid: [group] for sid, group in singles.items()
    }
    for qid in straddlers:
        for sid, seg_lo, seg_hi in router.split(int(los[qid]), int(his[qid])):
            per_shard.setdefault(sid, []).append(
                (
                    np.asarray([seg_lo], dtype=np.uint64),
                    np.asarray([seg_hi], dtype=np.uint64),
                    np.asarray([qid], dtype=np.int64),
                )
            )
    return {
        sid: tuple(np.concatenate(parts) for parts in zip(*chunks))
        for sid, chunks in per_shard.items()
    }


def validate_batch_bounds(
    universe: int, los: np.ndarray, his: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise and validate batch bound arrays; returns uint64 copies."""
    los = np.asarray(los, dtype=np.uint64)
    his = np.asarray(his, dtype=np.uint64)
    if los.shape != his.shape or los.ndim != 1:
        raise InvalidQueryError(
            "batch queries need equal-length one-dimensional lo/hi arrays"
        )
    if los.size and bool((los > his).any()):
        raise InvalidQueryError("batch query with lo > hi")
    if los.size and universe <= 2**64 and int(his.max()) >= universe:
        raise InvalidQueryError("batch query outside the universe")
    return los, his


def shard_batch_empty(
    store: "LSMStore", q_lo: np.ndarray, q_hi: np.ndarray
) -> np.ndarray:
    """The per-shard batch kernel: emptiness of each ``[q_lo[j], q_hi[j]]``.

    Consults every run's filter once for the whole sub-batch, then
    verifies only the "maybe" minority with the exact early-exit
    :meth:`~repro.lsm.store.LSMStore.range_empty`. Returns a boolean
    array aligned with the inputs (``True`` = provably empty). This is
    the unit the concurrent service fans out: one call per (shard,
    chunk), safe under that shard's read lock.
    """
    maybe = np.zeros(q_lo.size, dtype=bool)
    # The memtable is exact (no false positives): any entry in range —
    # live or tombstone — sends the query to the verification path.
    memtable = store._memtable
    if len(memtable):
        for j in range(q_lo.size):
            for _ in memtable.scan(int(q_lo[j]), int(q_hi[j])):
                maybe[j] = True
                break
    runs = store._runs()
    for run in runs:
        if run.filter is None:
            maybe[:] = True  # unfiltered run: every probe must read it
        else:
            maybe |= run.filter.may_contain_range_batch(q_lo, q_hi)
    # Queries every filter pruned are empty with zero I/O performed:
    # one avoided read per (query, run) pair, as in the scalar path.
    clean = int((~maybe).sum())
    store.stats.reads_avoided += clean * len(runs)
    empty = np.ones(q_lo.size, dtype=bool)
    for j in np.flatnonzero(maybe):
        if not store.range_empty(int(q_lo[j]), int(q_hi[j])):
            empty[j] = False
    return empty


def batch_range_empty(
    engine: "ShardedEngine",
    los: np.ndarray,
    his: np.ndarray,
) -> np.ndarray:
    """Answer ``range_empty`` for every ``[los[i], his[i]]`` at once.

    Returns a boolean array: ``True`` means the range holds no live key
    (exact, never approximate — filters only *prune*, the maybes are
    verified by the store). Semantically identical to a loop of
    :meth:`ShardedEngine.range_empty`.
    """
    los, his = validate_batch_bounds(engine.universe, los, his)
    if los.size == 0:
        return np.zeros(0, dtype=bool)
    empty = np.ones(los.size, dtype=bool)
    for sid, (q_lo, q_hi, qid) in _route_batch(engine, los, his).items():
        sub_empty = shard_batch_empty(engine.shards[sid], q_lo, q_hi)
        empty[qid[~sub_empty]] = False
    return empty
