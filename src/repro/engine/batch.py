"""Zero-copy columnar batch range-emptiness over a sharded engine.

A serving tier rarely asks one question at a time: it accumulates a
batch of range probes and wants them answered at throughput, not
per-call latency. The batch path keeps per-query python overhead out of
the whole pipeline by moving the batch as structure-of-arrays columns:

1. routing produces a :class:`ColumnarPlan` — contiguous ``uint64``
   ``seg_lo`` / ``seg_hi`` columns plus an ``int64`` position column
   (``qid``), argsort-grouped by shard with CSR-style group offsets.
   Queries straddling a shard boundary are expanded into per-shard
   segments *inside* the same columns with one vectorised ``np.repeat``
   — no python splits, no dict-of-lists, no per-query tuples;
2. per shard, every run's filter is consulted once for the *whole*
   sub-batch via :meth:`RangeFilter.may_contain_range_batch` — for
   Grafite that is the vectorised Algorithm 2 riding on the succinct
   bulk kernels (batched ``select0`` bucket isolation, lock-step
   low-part search), an ``O(log(L/eps))`` probe amortised over
   thousands of queries; the memtable is probed with one
   ``searchsorted`` over its cached key column;
3. only queries some filter (or the memtable) flagged as "maybe
   non-empty" fall back to the exact early-exit
   :meth:`~repro.lsm.store.LSMStore.range_empty` — under a well-sized
   filter that is the FPR-sized minority;
4. per-shard verdicts are scattered back into the result bitmap by the
   position column (``empty[qid[~sub_empty]] = False``), which AND-folds
   a straddler's segments for free.

Between the caller's bound arrays and the Elias-Fano kernel no per-query
Python object is created. Queries proven empty by the filters cost zero
simulated I/O and are credited to ``reads_avoided``, matching the scalar
path's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

from repro.errors import InvalidQueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.engine import ShardedEngine
    from repro.engine.sharding import ShardRouter
    from repro.lsm.store import LSMStore


@dataclass(frozen=True)
class ColumnarPlan:
    """A routed batch in structure-of-arrays form.

    ``seg_lo`` / ``seg_hi`` / ``qid`` are parallel columns holding every
    per-shard segment of the batch, sorted by owning shard;
    ``shard_ids[g]`` owns the half-open slice
    ``starts[g]:starts[g + 1]`` of those columns. ``qid`` maps each
    segment back to the originating query position, so verdicts scatter
    back with one fancy-indexed store per shard group. A query that
    straddles shard boundaries contributes one segment per overlapped
    shard (its ``qid`` repeats); ``straddler_qids`` lists those queries
    for callers that answer them atomically instead (the concurrent
    service holds all spanned locks at once).
    """

    shard_ids: np.ndarray      # int64, ascending, one per non-empty group
    starts: np.ndarray         # int64, len(shard_ids) + 1 CSR offsets
    seg_lo: np.ndarray         # uint64 segment lower bounds
    seg_hi: np.ndarray         # uint64 segment upper bounds
    qid: np.ndarray            # int64 originating query positions
    straddler_qids: np.ndarray # int64 queries spanning > 1 shard

    def group(self, g: int) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """The g-th shard group as ``(sid, seg_lo, seg_hi, qid)`` views."""
        sl = slice(int(self.starts[g]), int(self.starts[g + 1]))
        return int(self.shard_ids[g]), self.seg_lo[sl], self.seg_hi[sl], self.qid[sl]


def route_columnar(router: "ShardRouter", los: np.ndarray, his: np.ndarray) -> ColumnarPlan:
    """Route a validated batch into a :class:`ColumnarPlan`, all-numpy.

    Straddlers are expanded with ``np.repeat`` (shards own contiguous
    ranges, so a query spanning shards ``a..b`` becomes ``b - a + 1``
    consecutive segments) and every segment is clamped against the
    router's cached per-shard bound columns. A stable argsort then
    groups the segment columns by shard.
    """
    n = int(los.size)
    no_straddlers = np.zeros(0, dtype=np.int64)
    if router.num_shards == 1:  # width may be 2^64: no uint64 division
        return ColumnarPlan(
            shard_ids=np.zeros(1, dtype=np.int64),
            starts=np.asarray([0, n], dtype=np.int64),
            seg_lo=los,
            seg_hi=his,
            qid=np.arange(n, dtype=np.int64),
            straddler_qids=no_straddlers,
        )
    width = np.uint64(router.shard_width)
    sid_lo = (los // width).astype(np.int64)
    sid_hi = (his // width).astype(np.int64)
    counts = sid_hi - sid_lo + 1
    straddlers = np.flatnonzero(counts > 1)
    if straddlers.size == 0:
        # Fast path: one segment per query, group by owning shard.
        order = np.argsort(sid_lo, kind="stable")
        seg_lo, seg_hi, qid = los[order], his[order], order.astype(np.int64)
        sids = sid_lo[order]
    else:
        rep_qid = np.repeat(np.arange(n, dtype=np.int64), counts)
        seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(rep_qid.size, dtype=np.int64) - seg_starts[rep_qid]
        sids = sid_lo[rep_qid] + within
        shard_los, shard_his = router.bounds_arrays()
        seg_lo = np.maximum(los[rep_qid], shard_los[sids])
        seg_hi = np.minimum(his[rep_qid], shard_his[sids])
        order = np.argsort(sids, kind="stable")
        seg_lo, seg_hi, qid, sids = seg_lo[order], seg_hi[order], rep_qid[order], sids[order]
    if sids.size == 0:
        return ColumnarPlan(
            shard_ids=np.zeros(0, dtype=np.int64),
            starts=np.zeros(1, dtype=np.int64),
            seg_lo=seg_lo, seg_hi=seg_hi, qid=np.zeros(0, dtype=np.int64),
            straddler_qids=no_straddlers,
        )
    cuts = np.flatnonzero(np.diff(sids)) + 1
    starts = np.concatenate(([0], cuts, [sids.size])).astype(np.int64)
    return ColumnarPlan(
        shard_ids=sids[starts[:-1]].astype(np.int64),
        starts=starts,
        seg_lo=seg_lo,
        seg_hi=seg_hi,
        qid=qid,
        straddler_qids=straddlers.astype(np.int64),
    )


def route_single_shard(
    router, los: np.ndarray, his: np.ndarray
) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]], np.ndarray]:
    """Group single-shard queries: ``({sid: (los, his, qids)}, straddler_qids)``.

    The concurrent service's view of :func:`route_columnar`: single-shard
    queries (the overwhelming majority when shards are much wider than
    ranges) come back as per-shard columns ready for fan-out; queries
    straddling a shard boundary are returned as indices for the service
    to answer atomically under all spanned shards' locks.
    """
    plan = route_columnar(router, los, his)
    straddler_set = plan.straddler_qids
    groups: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    if straddler_set.size == 0:
        for g in range(plan.shard_ids.size):
            sid, q_lo, q_hi, qid = plan.group(g)
            groups[sid] = (q_lo, q_hi, qid)
        return groups, straddler_set
    keep_mask = np.ones(int(los.size), dtype=bool)
    keep_mask[straddler_set] = False
    for g in range(plan.shard_ids.size):
        sid, q_lo, q_hi, qid = plan.group(g)
        keep = keep_mask[qid]
        if keep.any():
            groups[sid] = (q_lo[keep], q_hi[keep], qid[keep])
    return groups, straddler_set


def _as_uint64_bounds(values, name: str) -> np.ndarray:
    """Coerce one bound column to ``uint64``, rejecting lossy casts.

    A bare ``np.asarray(..., dtype=np.uint64)`` silently wraps negative
    integers modulo 2^64 (``lo = -1`` becomes ``2**64 - 1``) and
    truncates floats — both turn caller bugs into well-formed queries
    over the wrong range. Negative and non-integer inputs raise
    :class:`InvalidQueryError` instead.
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "u":
        return arr.astype(np.uint64, copy=False)
    if arr.dtype.kind == "i":
        if arr.size and bool((arr < 0).any()):
            raise InvalidQueryError(f"negative bound in batch {name} column")
        return arr.astype(np.uint64)
    if arr.size == 0:
        # np.asarray([]) defaults to float64; an empty column is fine.
        return arr.astype(np.uint64)
    if arr.dtype.kind == "O":
        # Python ints too large/mixed for a fixed-width dtype: insist on
        # integral elements (astype would happily *parse* numeric
        # strings), then let numpy range-check the per-element cast
        # instead of wrapping.
        integral = all(
            isinstance(v, (int, np.integer)) and not isinstance(v, bool)
            for v in arr.flat
        )
        try:
            if not integral:
                raise TypeError("non-integer element in object column")
            return arr.astype(np.uint64)
        except (OverflowError, TypeError, ValueError) as exc:
            raise InvalidQueryError(
                f"batch {name} column must hold non-negative integers < 2**64"
            ) from exc
    raise InvalidQueryError(
        f"batch {name} column must be integer, got dtype {arr.dtype}"
    )


def validate_batch_bounds(
    universe: int, los: np.ndarray, his: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise and validate batch bound arrays; returns uint64 copies.

    Rejects mismatched shapes, ``lo > hi``, bounds at or past the
    universe, and — via :func:`_as_uint64_bounds` — negative or
    non-integer inputs that a raw uint64 cast would silently mangle.
    """
    los = _as_uint64_bounds(los, "lo")
    his = _as_uint64_bounds(his, "hi")
    if los.shape != his.shape or los.ndim != 1:
        raise InvalidQueryError(
            "batch queries need equal-length one-dimensional lo/hi arrays"
        )
    if los.size and bool((los > his).any()):
        raise InvalidQueryError("batch query with lo > hi")
    if los.size and universe <= 2**64 and int(his.max()) >= universe:
        raise InvalidQueryError("batch query outside the universe")
    return los, his


def memtable_overlaps(store: "LSMStore", q_lo: np.ndarray, q_hi: np.ndarray) -> np.ndarray:
    """Which queries have *any* memtable entry (live or tombstone) in range.

    One ``searchsorted`` over the memtable's cached sorted key column —
    the columnar replacement for a per-query python scan. Tombstones
    count: any entry in range means the memtable has an opinion and the
    query must take the exact verification path (or, in process mode,
    stay off the snapshot worker).
    """
    memtable = store._memtable
    if not len(memtable):
        return np.zeros(q_lo.size, dtype=bool)
    keys = memtable.keys_array()
    idx = np.searchsorted(keys, q_lo, side="left")
    overlaps = np.zeros(q_lo.size, dtype=bool)
    hit = idx < keys.size
    overlaps[hit] = keys[idx[hit]] <= q_hi[hit]
    return overlaps


def shard_batch_empty(
    store: "LSMStore", q_lo: np.ndarray, q_hi: np.ndarray
) -> np.ndarray:
    """The per-shard batch kernel: emptiness of each ``[q_lo[j], q_hi[j]]``.

    Probes the memtable with one vectorised ``searchsorted``, walks the
    level topology in recency order consulting each run's filter once
    for the whole sub-batch, then verifies only the "maybe" minority
    with the exact early-exit
    :meth:`~repro.lsm.store.LSMStore.range_empty`. Before any filter is
    asked, each run's key bounds prune the sub-batch vectorially — under
    leveled compaction a level is many key-disjoint slices, so most
    queries skip most slices on this fence check alone and each slice's
    filter sees only the queries that can touch it. Returns a boolean
    array aligned with the inputs (``True`` = provably empty). This is
    the unit the concurrent service fans out: one call per (shard,
    chunk), safe under that shard's read lock.
    """
    # The memtable is exact (no false positives): any entry in range —
    # live or tombstone — sends the query to the verification path.
    maybe = memtable_overlaps(store, q_lo, q_hi)
    all_runs = store._runs()
    runs = [run for run in all_runs if run.key_bounds is not None]
    for run in runs:
        lo_bound, hi_bound = run.key_bounds
        hits = (q_lo <= np.uint64(hi_bound)) & (q_hi >= np.uint64(lo_bound))
        if not hits.any():
            continue  # the whole sub-batch misses this run/slice
        if run.filter is None:
            maybe |= hits  # unfiltered run: every overlapping probe reads it
        elif bool(hits.all()):
            maybe |= run.filter.may_contain_range_batch(q_lo, q_hi)
        else:
            idx = np.flatnonzero(hits)
            sub = run.filter.may_contain_range_batch(q_lo[idx], q_hi[idx])
            maybe[idx[sub]] = True
    # Queries every filter pruned are empty with zero I/O performed:
    # one avoided read per (query, run) pair, as in the scalar path —
    # which also credits keyless (empty) runs its fence check skips, so
    # the ledger the auto-tuner diffs must count *all* runs here too.
    clean = int((~maybe).sum())
    store.stats.reads_avoided += clean * len(all_runs)
    empty = np.ones(q_lo.size, dtype=bool)
    for j in np.flatnonzero(maybe):
        if not store.range_empty(int(q_lo[j]), int(q_hi[j])):
            empty[j] = False
    observer = store.query_observer
    if observer is not None:
        # Near-zero cost workload telemetry (two numpy reductions) for
        # the per-shard auto-tuner; never consulted for correctness.
        observer(q_lo, q_hi, empty)
    return empty


def batch_range_empty(
    engine: "ShardedEngine",
    los: np.ndarray,
    his: np.ndarray,
) -> np.ndarray:
    """Answer ``range_empty`` for every ``[los[i], his[i]]`` at once.

    Returns a boolean array: ``True`` means the range holds no live key
    (exact, never approximate — filters only *prune*, the maybes are
    verified by the store). Semantically identical to a loop of
    :meth:`ShardedEngine.range_empty`. Routing, per-shard probing and
    the scatter back to query positions all run on contiguous columns;
    a straddler's segments AND-fold through the scatter (the result
    starts ``True`` and only ever flips to ``False``).
    """
    los, his = validate_batch_bounds(engine.universe, los, his)
    if los.size == 0:
        return np.zeros(0, dtype=bool)
    plan = route_columnar(engine.router, los, his)
    empty = np.ones(los.size, dtype=bool)
    for g in range(plan.shard_ids.size):
        sid, q_lo, q_hi, qid = plan.group(g)
        sub_empty = shard_batch_empty(engine.shards[sid], q_lo, q_hi)
        empty[qid[~sub_empty]] = False
    return empty
