"""Concurrent serving layer over the sharded engine.

PR 1 left the engine single-threaded with one deliberate seam: the
:class:`~repro.engine.scheduler.CompactionScheduler` "the one a thread
pool would plug into". This module plugs it in.
:class:`RangeQueryService` wraps a :class:`~repro.engine.ShardedEngine`
with the three pieces a serving tier adds:

* **a thread pool with per-shard reader/writer locks** — shards own
  disjoint key ranges, so readers of different shards never touch the
  same state and run fully in parallel; readers of the *same* shard
  share its read lock; a writer (or the compaction worker) takes that
  shard's write lock exclusively. Cross-shard batches fan out across
  the pool, one task per (shard, chunk), and re-merge on the calling
  thread;
* **a background compaction worker** — a daemon thread that pops shards
  off the engine's :class:`CompactionScheduler` and runs one bounded
  policy-planned compaction *step* per write-lock acquisition (the
  single-threaded engine drains the queue *between* batches instead),
  keeping compaction latency off the query path — and, under the sliced
  leveled policy, keeping any single lock hold proportional to one
  step's rewrite rather than a whole-shard merge;
* **a sharded block cache** (:class:`~repro.lsm.cache.BlockCache`) in
  front of the simulated SSTable disk, attached to every shard, with
  hit/miss counters folded into the engine's
  :class:`~repro.lsm.store.IoStats`;
* optionally, with ``mode="process"``, **a pool of per-shard snapshot
  worker processes** (:mod:`repro.engine.workers`) that answer
  CPU-bound batch probes outside the GIL. Workers hold the shard's runs
  read-only from the last checkpoint and receive query columns / return
  verdict bitmaps through shared-memory rings. The parent routes a
  query to a worker only while (a) the shard's run set is unchanged
  since the checkpoint (the checkpoint-epoch handshake:
  :attr:`~repro.lsm.store.LSMStore.runs_version` must match the synced
  version — any flush or compaction invalidates) and (b) the shard's
  memtable has no entry inside the query range (checked with one
  vectorised ``searchsorted``); everything else — and all write traffic
  — stays on the locked in-process path, so results are exact under any
  interleaving.

Locking discipline (the reason the service cannot deadlock): every code
path that holds more than one shard lock acquires them in ascending
shard-id order, and the compaction worker only ever holds one. The WAL
serialises its own appends, and the scheduler its own queue, so those
can be hit from any thread.

Call the service from *outside* the pool: a service method invoked from
within one of its own query tasks would wait on the pool it is running
in. Mutations are linearised per key by the shard write lock; the
engine's I/O statistics remain best-effort under concurrent readers.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.batch import (
    memtable_overlaps,
    route_single_shard,
    shard_batch_empty,
    validate_batch_bounds,
)
from repro.engine.engine import ShardedEngine
from repro.engine.workers import ShardWorkerPool, WorkerError
from repro.errors import InvalidParameterError
from repro.lsm.cache import BlockCache, SharedBlockCache
from repro.lsm.store import IoStats


class RWLock:
    """A reader/writer lock with writer preference.

    Many readers may hold the lock together; a writer holds it alone.
    Arriving writers block *new* readers (readers already in proceed),
    so a steady stream of probes cannot starve compaction or writes —
    the failure mode a serving tier actually hits.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> None:
            self._acquire()

        def __exit__(self, *exc) -> None:
            self._release()

    def read_locked(self) -> "_Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write_locked(self) -> "_Guard":
        return self._Guard(self.acquire_write, self.release_write)


class RangeQueryService:
    """Thread-pool serving front end for a :class:`ShardedEngine`.

    Parameters
    ----------
    engine:
        The engine to serve. The service takes over its compaction
        scheduler; do not drive the engine directly (or from a second
        service) while this one is open.
    num_threads:
        Pool size for query fan-out. One extra daemon thread runs
        compactions in the background regardless.
    cache_blocks:
        Block-cache capacity (in SSTable blocks) shared by all shards;
        ``0`` disables the cache. A cache already attached to the engine
        (via :meth:`ShardedEngine.attach_block_cache`) is kept as-is and
        this parameter is ignored — the service never replaces a cache
        the caller configured.
    cache_stripes / miss_latency:
        Forwarded to :class:`~repro.lsm.cache.BlockCache`;
        ``miss_latency`` simulates the storage device on cache misses.
    compaction_poll:
        Idle back-off of the compaction worker between queue checks.
    mode:
        ``"thread"`` (default) answers batches on the thread pool alone;
        ``"process"`` adds the snapshot worker processes of
        :mod:`repro.engine.workers` for CPU-bound batch probes and
        requires a *persistent* engine (the workers open the shards from
        its checkpoint directory). Opening the service in process mode
        checkpoints the engine once so the workers start in sync.
    num_workers:
        Worker processes in process mode (default: ``num_threads``,
        capped at the shard count). Ignored in thread mode.
    shared_cache:
        Process mode only. ``True`` (default) homes the block cache in
        a :class:`~repro.lsm.cache.SharedBlockCache` shared-memory slab
        that the parent *and* every snapshot worker attach to — one
        admission warms all processes, and cache memory is one slab
        instead of one replica per worker. ``False`` keeps the legacy
        duplicated per-worker caches (each worker gets a private
        ``cache_blocks``-block replica). Ignored in thread mode and
        when the caller pre-attached a cache to the engine.
    """

    def __init__(
        self,
        engine: ShardedEngine,
        *,
        num_threads: int = 4,
        cache_blocks: int = 4096,
        cache_stripes: int = 8,
        miss_latency: float = 0.0,
        compaction_poll: float = 0.01,
        mode: str = "thread",
        num_workers: Optional[int] = None,
        shared_cache: bool = True,
    ) -> None:
        if num_threads < 1:
            raise InvalidParameterError("num_threads must be >= 1")
        if compaction_poll <= 0:
            raise InvalidParameterError("compaction_poll must be positive")
        if mode not in ("thread", "process"):
            raise InvalidParameterError(f"unknown serving mode {mode!r}")
        if mode == "process" and engine.directory is None:
            raise InvalidParameterError(
                "mode='process' needs a persistent engine: the snapshot "
                "workers open the shards from its checkpoint directory"
            )
        self._engine = engine
        self._mode = mode
        self._num_threads = int(num_threads)
        self._locks = [RWLock() for _ in engine.shards]
        self._cache: Optional[BlockCache] = engine.block_cache
        self._owns_shared_cache = False
        if self._cache is None and cache_blocks:
            if mode == "process" and shared_cache:
                self._cache = SharedBlockCache(
                    cache_blocks,
                    num_stripes=cache_stripes,
                    miss_latency=miss_latency,
                )
                self._owns_shared_cache = True
            else:
                self._cache = BlockCache(
                    cache_blocks,
                    num_stripes=cache_stripes,
                    miss_latency=miss_latency,
                )
            engine.attach_block_cache(self._cache)
        self._workers: Optional[ShardWorkerPool] = None
        self._synced_versions: List[int] = []
        self._stats_mutex = threading.Lock()
        self._worker_queries = 0
        self._local_queries = 0
        if mode == "process":
            # Seed the workers with a fresh checkpoint, then fork them
            # *before* any thread of ours exists (fork safety). Workers
            # replicate the block-cache configuration so their run reads
            # pay the same simulated device cost as the in-process path.
            try:
                engine.checkpoint()
                self._workers = ShardWorkerPool(
                    engine.directory,
                    engine.num_shards,
                    num_workers if num_workers is not None else self._num_threads,
                    cache_blocks=(
                        self._cache.capacity_blocks
                        if self._cache is not None else 0
                    ),
                    cache_stripes=(
                        self._cache.num_stripes if self._cache is not None else 4
                    ),
                    miss_latency=(
                        self._cache.miss_latency if self._cache is not None else 0.0
                    ),
                    shared_cache=(
                        self._cache
                        if isinstance(self._cache, SharedBlockCache) else None
                    ),
                )
                self._sync_workers()
            except BaseException:
                # The constructor owns the slab until __init__ returns:
                # release it (and the engine's reference to it) rather
                # than leaking the shared-memory segment.
                if self._owns_shared_cache and self._cache is not None:
                    engine.attach_block_cache(None)
                    self._cache.close()
                raise
        self._pool = ThreadPoolExecutor(
            max_workers=self._num_threads, thread_name_prefix="repro-query"
        )
        self._poll = float(compaction_poll)
        self._stop = threading.Event()
        self._closed = False
        # _work_mutex makes (queue pop, in-flight flag) transitions atomic
        # so wait_for_compactions cannot observe "queue empty" while a
        # popped shard is still being compacted.
        self._work_mutex = threading.Lock()
        self._inflight = False
        self._background_compactions = 0
        self._compactor = threading.Thread(
            target=self._compaction_loop, name="repro-compactor", daemon=True
        )
        self._compactor.start()

    def _sync_workers(self) -> None:
        """Checkpoint-epoch handshake: point workers at the new snapshot.

        Caller must hold all write locks (or be the constructor, before
        any concurrency exists): the engine was just checkpointed, so the
        on-disk generation matches the in-memory run sets, and recording
        each shard's ``runs_version`` here makes the staleness check in
        :meth:`_shard_task_process` exact.
        """
        assert self._workers is not None
        from repro.engine import persist

        manifest = persist.load_manifest(self._engine.directory)
        assert manifest is not None
        self._workers.reload(manifest["generation"])
        self._synced_versions = [
            store.runs_version for store in self._engine.shards
        ]

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("service is closed")

    def _submit(self, fn, *args):
        """``pool.submit`` that reports a racing ``close()`` coherently.

        A caller can pass :meth:`_check_open` and lose the race with a
        concurrent ``close()``; the executor then refuses new work with
        a bare ``RuntimeError``. Translate it to the same exception every
        other post-close call raises.
        """
        try:
            return self._pool.submit(fn, *args)
        except RuntimeError as exc:
            raise InvalidParameterError("service is closed") from exc

    def get(self, key: int) -> Optional[Any]:
        """Point lookup under the owning shard's read lock."""
        self._check_open()
        sid = self._engine.router.shard_of(key)
        with self._locks[sid].read_locked():
            return self._engine.shards[sid].get(key)

    def put(
        self, key: int, value: Any, *, expires_at: Optional[int] = None
    ) -> None:
        """Insert or overwrite a key under its shard's write lock."""
        self._check_open()
        sid = self._engine.router.shard_of(key)
        with self._locks[sid].write_locked():
            self._engine.put(key, value, expires_at=expires_at)

    def delete(self, key: int) -> None:
        """Delete a key under its shard's write lock."""
        self._check_open()
        sid = self._engine.router.shard_of(key)
        with self._locks[sid].write_locked():
            self._engine.delete(key)

    def range_empty(self, lo: int, hi: int) -> bool:
        """Exact emptiness probe, atomic across the shards it spans.

        All overlapped shards' read locks are taken (in id order) before
        the first segment is probed, so a cross-shard probe sees one
        consistent cut of the keyspace even while writers queue up.
        """
        self._check_open()
        router = self._engine.router
        sids = router.shards_spanning(lo, hi)
        acquired: List[RWLock] = []
        try:
            for sid in sids:
                self._locks[sid].acquire_read()
                acquired.append(self._locks[sid])
            return all(
                self._engine.shards[sid].range_empty(seg_lo, seg_hi)
                for sid, seg_lo, seg_hi in router.split(lo, hi)
            )
        finally:
            for lock in reversed(acquired):
                lock.release_read()

    def range_scan(self, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """All live pairs in ``[lo, hi]``, atomic across spanned shards.

        Same locking discipline as :meth:`range_empty`: every overlapped
        shard's read lock is held (in id order) for the whole scan, so
        the result is one consistent cut of the keyspace.
        """
        self._check_open()
        router = self._engine.router
        sids = router.shards_spanning(lo, hi)
        acquired: List[RWLock] = []
        try:
            for sid in sids:
                self._locks[sid].acquire_read()
                acquired.append(self._locks[sid])
            out: List[Tuple[int, Any]] = []
            for sid, seg_lo, seg_hi in router.split(lo, hi):
                out.extend(self._engine.shards[sid].range_scan(seg_lo, seg_hi))
            return out
        finally:
            for lock in reversed(acquired):
                lock.release_read()

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------
    def _chunks(
        self, sid: int, q_lo: np.ndarray, q_hi: np.ndarray, qid: np.ndarray, chunk: int
    ) -> Iterator[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        for start in range(0, qid.size, chunk):
            stop = start + chunk
            yield sid, q_lo[start:stop], q_hi[start:stop], qid[start:stop]

    def _shard_task(
        self, sid: int, q_lo: np.ndarray, q_hi: np.ndarray, qid: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        with self._locks[sid].read_locked():
            store = self._engine.shards[sid]
            planner = self._engine.planner
            if planner is not None:
                # Cost-model dispatch: the planner picks the execution
                # strategy per sub-batch from its observed size,
                # duplicate ratio and memtable-overlap fraction.
                mode = planner.choose_mode(
                    store, q_lo, q_hi,
                    process_available=self._workers is not None,
                )
            else:
                mode = "process" if self._workers is not None else "columnar"
            if mode == "process":
                return qid, self._shard_empty_process(sid, q_lo, q_hi)
            if mode == "scalar":
                return qid, self._shard_empty_scalar(store, q_lo, q_hi)
            return qid, shard_batch_empty(store, q_lo, q_hi)

    @staticmethod
    def _shard_empty_scalar(
        store, q_lo: np.ndarray, q_hi: np.ndarray
    ) -> np.ndarray:
        """Tiny sub-batches skip the columnar kernel's setup cost.

        A plain loop over the exact scalar path — identical verdicts
        and identical per-run ledger accounting — that still reports
        the sub-batch to the shard's query observer, so the auto-tuner
        sees the same telemetry whichever strategy the cost model
        picked.
        """
        empty = np.fromiter(
            (
                store.range_empty(int(lo), int(hi))
                for lo, hi in zip(q_lo, q_hi)
            ),
            dtype=bool,
            count=int(q_lo.size),
        )
        observer = store.query_observer
        if observer is not None:
            observer(q_lo, q_hi, empty)
        return empty

    def _shard_empty_process(
        self, sid: int, q_lo: np.ndarray, q_hi: np.ndarray
    ) -> np.ndarray:
        """Process-mode shard kernel; caller holds the shard's read lock.

        Routes the sub-batch to the shard's snapshot worker when it is
        allowed to answer — the run set is unchanged since the last
        checkpoint (epoch check) and, per query, the memtable has no
        entry in range — and answers everything else with the in-process
        exact kernel. Worker-side I/O counters fold back into the
        shard's ledger so ``stats`` stays one coherent view.
        """
        store = self._engine.shards[sid]
        assert self._workers is not None
        if store.runs_version != self._synced_versions[sid]:
            # Stale epoch: a flush/compaction changed the run set after
            # the checkpoint. Serve locally until the next checkpoint.
            with self._stats_mutex:
                self._local_queries += int(q_lo.size)
            return shard_batch_empty(store, q_lo, q_hi)
        overlap = memtable_overlaps(store, q_lo, q_hi)
        remote = ~overlap
        verdicts = np.empty(q_lo.size, dtype=bool)
        n_remote = int(remote.sum())
        if n_remote:
            try:
                rv, deltas = self._workers.query(sid, q_lo[remote], q_hi[remote])
            except WorkerError:
                # A dead worker must never fail a query: answer locally
                # (and keep doing so — the pool marks the worker down).
                with self._stats_mutex:
                    self._local_queries += int(q_lo.size)
                return shard_batch_empty(store, q_lo, q_hi)
            verdicts[remote] = rv
            observer = store.query_observer
            if observer is not None:
                # Worker-answered queries still feed the auto-tuner's
                # per-shard window (the in-process kernel reports its
                # own sub-batches from inside shard_batch_empty).
                observer(q_lo[remote], q_hi[remote], rv)
            ledger = store.stats
            # Chunked fan-out runs several tasks per shard under shared
            # read locks, so the ledger fold takes the stats mutex — the
            # '+=' on plain ints is not atomic across pool threads.
            with self._stats_mutex:
                ledger.reads_performed += deltas[0]
                ledger.reads_avoided += deltas[1]
                ledger.wasted_reads += deltas[2]
                ledger.cache_hits += deltas[3]
                ledger.cache_misses += deltas[4]
                self._worker_queries += n_remote
        if overlap.any():
            verdicts[overlap] = shard_batch_empty(
                store, q_lo[overlap], q_hi[overlap]
            )
            with self._stats_mutex:
                self._local_queries += int(overlap.sum())
        return verdicts

    def batch_range_empty(
        self, los: np.ndarray | List[int], his: np.ndarray | List[int]
    ) -> np.ndarray:
        """Vectorised ``range_empty`` over a batch, fanned out per shard.

        Queries are routed to shards in bulk, each shard's sub-batch is
        split into pool tasks (so a skewed batch still uses every
        thread), and the per-task results re-merge on the calling
        thread. The rare query that straddles a shard boundary runs as
        its own task through :meth:`range_empty`, which holds every
        spanned shard's read lock at once — so each *query* sees one
        consistent cut of the keyspace even while writers interleave
        (different queries of the batch may see different cuts, exactly
        as a loop of scalar calls would). With no concurrent writers the
        output is identical to :meth:`ShardedEngine.batch_range_empty`;
        compactions queued by interleaved writers happen on the
        background worker instead of stalling the batch.
        """
        self._check_open()
        los, his = validate_batch_bounds(self._engine.universe, los, his)
        if los.size == 0:
            return np.zeros(0, dtype=bool)
        planner = self._engine.planner
        if planner is not None:
            # The planner's passes run on the calling thread; the
            # rewritten (deduped/merged) columns fan out through the
            # same pool path. Cache consultation borrows the per-shard
            # read guards so a hit is checked against a stable
            # (runs_version, memtable) pair.
            empty = planner.execute(
                los, his, self._fanout_batch,
                lock_provider=lambda sid: self._locks[sid].read_locked(),
            )
        else:
            empty = self._fanout_batch(los, his)
        tuner = self._engine.autotuner
        if tuner is not None:
            # The serving tier's between-batches slot: any backend switch
            # lands as a factory swap plus a queued compaction, which the
            # background worker rebuilds under the shard's write lock.
            tuner.maybe_retune()
        return empty

    def _fanout_batch(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Route, chunk, fan out and re-merge one validated batch."""
        singles, straddlers = route_single_shard(self._engine.router, los, his)
        # Aim for ~2 tasks per thread so the slowest chunk cannot leave
        # the rest of the pool idle for long.
        chunk = max(64, -(-int(los.size) // (2 * self._num_threads)))
        futures = [
            self._submit(self._shard_task, *task)
            for sid, (q_lo, q_hi, qid) in singles.items()
            for task in self._chunks(sid, q_lo, q_hi, qid, chunk)
        ]
        straddler_futures = [
            (qid, self._submit(self.range_empty, int(los[qid]), int(his[qid])))
            for qid in straddlers
        ]
        empty = np.ones(los.size, dtype=bool)
        for future in futures:
            qid, sub_empty = future.result()
            empty[qid[~sub_empty]] = False
        for qid, future in straddler_futures:
            empty[qid] = future.result()
        return empty

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _all_write_locks(self) -> Iterator[None]:
        for lock in self._locks:  # ascending shard id: deadlock-free
            lock.acquire_write()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release_write()

    def flush_all(self) -> None:
        """Flush every shard's memtable (all write locks held)."""
        self._check_open()
        with self._all_write_locks():
            self._engine.flush_all()

    def advance_clock(self, now: int) -> None:
        """Advance the TTL clock with the keyspace quiesced.

        Expiry changes what every shard answers at once, so the advance
        runs under all write locks: readers observe entries age out
        atomically. Compactions it triggers (fully-expired bottom runs)
        drain on the background worker, and in process mode the bumped
        ``runs_version`` diverts batches to the exact local path until
        the next checkpoint re-syncs the snapshot workers.
        """
        self._check_open()
        with self._all_write_locks():
            self._engine.advance_clock(now)

    def checkpoint(self) -> None:
        """Snapshot the engine to disk with the keyspace quiesced.

        In process mode this is also the epoch boundary: once the
        snapshot is on disk the workers reload it synchronously, so
        shards dirtied by flushes/compactions since the previous
        checkpoint flow back onto the worker path.
        """
        self._check_open()
        with self._all_write_locks():
            self._engine.checkpoint()
            if self._workers is not None:
                self._sync_workers()

    def wait_for_compactions(self, timeout: float = 10.0) -> bool:
        """Block until the background worker has no queued or running
        compaction; returns ``False`` on timeout (or immediately, with
        the current queue state, once the service is closed — a stopped
        worker will never drain what is left)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._work_mutex:
                idle = not self._inflight and len(self._engine.scheduler) == 0
            if idle:
                return True
            remaining = deadline - time.monotonic()
            if self._closed or remaining <= 0:
                return False
            time.sleep(min(self._poll / 2, remaining))

    def _compaction_loop(self) -> None:
        """Drain the scheduler one bounded step per lock acquisition.

        The worker takes a shard's write lock for a *single*
        policy-planned compaction step — one merge unit set, one slice
        rebuild — then releases it and re-queues the shard if its policy
        still sees pressure. Queries blocked behind the writer therefore
        wait for one step's rewrite, never for a whole-shard rebuild
        (the full-merge policy's single step *is* the whole merge; the
        tiered/leveled policies exist to make the steps small).
        """
        scheduler = self._engine.scheduler
        while not self._stop.is_set():
            wait = scheduler.throttle_wait()
            if wait > 0:
                # Rate limiter in debt: the queued shards stay queued and
                # the worker sleeps until roughly the refill point (or
                # its ordinary poll, whichever comes first).
                self._stop.wait(min(self._poll, wait))
                continue
            with self._work_mutex:
                item = scheduler.pop()
                if item is not None:
                    self._inflight = True
            if item is None:
                self._stop.wait(self._poll)
                continue
            sid, store = item
            try:
                with self._locks[sid].write_locked():
                    before = store.stats.entries_compacted
                    if store.needs_compaction and store.compact_step():
                        scheduler.record_compactions(1)
                        self._background_compactions += 1
                        limiter = scheduler.rate_limiter
                        if limiter is not None:
                            limiter.debit(
                                store.stats.entries_compacted - before
                            )
            finally:
                with self._work_mutex:
                    # Re-queue *before* dropping the in-flight flag so
                    # wait_for_compactions can never observe "queue empty,
                    # nothing in flight" while steps remain.
                    if store.needs_compaction:
                        scheduler.notify(sid, store)
                    self._inflight = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, checkpoint: bool = False) -> None:
        """Stop the worker and pool; optionally checkpoint first.

        The engine itself stays usable (single-threaded) after the
        service closes; the block cache stays attached, which never
        changes results — except a service-owned *shared* cache, whose
        shared-memory slab must be unlinked: it is detached from the
        engine and destroyed once the workers borrowing it are gone.
        """
        if self._closed:
            return
        if checkpoint:
            self.checkpoint()
        self._closed = True
        self._stop.set()
        self._compactor.join(timeout=5.0)
        self._pool.shutdown(wait=True)
        if self._workers is not None:
            self._workers.close()
        if self._owns_shared_cache and self._cache is not None:
            self._engine.attach_block_cache(None)
            self._cache.close()
            self._cache = None

    def __enter__(self) -> "RangeQueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ShardedEngine:
        return self._engine

    @property
    def strings(self):
        """String-keyed facade over this service (engine needs a codec)."""
        from repro.engine.strings import StringView

        return StringView(self, self._engine.key_codec)

    @property
    def num_threads(self) -> int:
        return self._num_threads

    @property
    def mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def num_workers(self) -> int:
        """Snapshot worker processes (0 in thread mode)."""
        return self._workers.num_workers if self._workers is not None else 0

    @property
    def worker_queries(self) -> int:
        """Batch queries answered by snapshot workers (process mode)."""
        return self._worker_queries

    @property
    def local_queries(self) -> int:
        """Process-mode batch queries that fell back to the locked
        in-process path (stale epoch, memtable overlap, worker failure).
        Always 0 in thread mode — thread-mode queries are not tallied."""
        return self._local_queries

    @property
    def cache(self) -> Optional[BlockCache]:
        return self._cache

    @property
    def background_compactions(self) -> int:
        """Compactions the worker thread has run."""
        return self._background_compactions

    @property
    def stats(self) -> IoStats:
        """The engine's aggregate I/O ledger (incl. cache hits/misses)."""
        return self._engine.stats

    def stats_snapshot(self) -> dict:
        """One structured, JSON-serialisable view of the serving tier.

        Everything the ``[serve]`` summary line, the network protocol's
        ``stats`` op, and the front door's admission control read comes
        from here — queue depth and compaction backlog (the
        backpressure signals), cache hit rate, the worker/local split,
        and the engine's I/O ledger — so operators and machines see the
        same numbers. Counters are best-effort under concurrency,
        exactly like :attr:`stats`.
        """
        stats = self._engine.stats
        with self._work_mutex:
            backlog = len(self._engine.scheduler)
            inflight = self._inflight
        snapshot = {
            "mode": self._mode,
            "threads": self._num_threads,
            "workers": self.num_workers,
            "closed": self._closed,
            "compaction": {
                "queue_depth": backlog,
                "inflight": inflight,
                "backlog": backlog + int(inflight),
                "background_steps": self._background_compactions,
                "total_steps": stats.compactions,
                "throttled_steps": (
                    self._engine.scheduler.compactions_throttled
                ),
                "rate_limit": (
                    self._engine.scheduler.rate_limiter.rate
                    if self._engine.scheduler.rate_limiter is not None
                    else None
                ),
            },
            "queries": {
                "worker": self._worker_queries,
                "local": self._local_queries,
            },
            "cache": None,
            "io": {
                "reads_performed": stats.reads_performed,
                "reads_avoided": stats.reads_avoided,
                "wasted_reads": stats.wasted_reads,
                "flushes": stats.flushes,
                "entries_flushed": stats.entries_flushed,
                "entries_compacted": stats.entries_compacted,
                "bytes_compacted": stats.bytes_compacted,
                "write_amplification": stats.write_amplification,
            },
            "engine": {
                "shards": self._engine.num_shards,
                "runs": self._engine.run_count,
                "filter_bits": self._engine.filter_bits_total,
                "levels": self._engine.level_stats(),
            },
            "planner": (
                self._engine.planner.stats_snapshot()
                if self._engine.planner is not None else None
            ),
        }
        if self._cache is not None:
            snapshot["cache"] = {
                "hits": stats.cache_hits,
                "misses": stats.cache_misses,
                "hit_ratio": stats.cache_hit_ratio,
                "resident_blocks": len(self._cache),
                "capacity_blocks": self._cache.capacity_blocks,
            }
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeQueryService(mode={self._mode!r}, "
            f"threads={self._num_threads}, workers={self.num_workers}, "
            f"shards={self._engine.num_shards}, "
            f"cache={self._cache!r}, closed={self._closed})"
        )
