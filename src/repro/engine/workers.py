"""Per-shard snapshot worker processes for the process-mode service.

CPU-bound batch probes do not scale across threads in CPython: the
filter kernels are numpy-heavy but interleaved with enough interpreter
work that the GIL serialises them. This module gives
:class:`~repro.engine.service.RangeQueryService` a ``mode="process"``
back end that sidesteps the GIL entirely:

* a :class:`ShardWorkerPool` spawns ``num_workers`` child processes;
  worker ``w`` owns shards ``{sid : sid % num_workers == w}`` and loads
  them **read-only from the engine's last checkpoint** — run files plus
  their serialised filters, no WAL, no memtable, no filter factory (so
  nothing unpicklable ever crosses the process boundary);
* query payloads travel through ``multiprocessing.shared_memory`` ring
  buffers: the parent writes ``lo``/``hi`` ``uint64`` columns into a
  request slot, the worker writes a verdict bitmap (plus an I/O-stats
  delta) into the matching response slot. Only a tiny ``(tag, seq,
  slot, sid, count)`` tuple crosses the control pipe per chunk — the
  columns themselves are **never pickled**;
* the ring has ``slot_count`` slots, so the parent pipelines up to that
  many chunks per worker while earlier chunks are still being computed;
* a **checkpoint-epoch handshake** keeps workers honest: the parent
  only routes a query to a worker while the owning shard's
  :attr:`~repro.lsm.store.LSMStore.runs_version` still equals the
  version recorded when the snapshot was taken. The version keys off
  the shard's whole level topology — a flush, a tiered cascade or a
  single leveled slice rewrite all bump it — so any compaction *step*
  silently sends that shard's traffic back to the locked in-process
  path until the next checkpoint re-syncs the workers
  (:meth:`ShardWorkerPool.reload`). Workers load whatever topology the
  manifest records (old single-bottom checkpoints included) and never
  compact it: they own no policy, only read-only runs.

Workers answer *run-set* emptiness. That equals full emptiness exactly
when the shard's memtable has no entry (live or tombstone) inside the
query range — which the service checks per query column with one
``searchsorted`` — because an out-of-range tombstone cannot shadow an
in-range key. Queries with memtable overlap stay on the in-process
exact path.

Processes are started with the ``fork`` method where the platform has
it (no pickling, instant start) and ``spawn`` elsewhere; every argument
handed to a worker is a plain string/int so both work. Start workers
before spinning up unrelated threads when forking — the pool is created
in the service constructor before its compaction thread for exactly
that reason.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import warnings
from collections import deque
from multiprocessing import shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.cache import SharedBlockCache

#: Per-chunk I/O counters a worker ships back: (reads_performed,
#: reads_avoided, wasted_reads, cache_hits, cache_misses).
_STAT_FIELDS = 5

#: Backstop for a *live but hung* worker. Death is detected within one
#: poll slice regardless, so this only bounds genuine livelock; it is
#: deliberately generous because a single ring chunk can legitimately
#: take minutes when every verification pays a simulated device sleep
#: (e.g. slot_capacity x miss_latency).
_POLL_TIMEOUT = 600.0
_POLL_SLICE = 1.0  # liveness-check granularity while waiting


class WorkerError(RuntimeError):
    """A worker process died or answered out of protocol."""


def _attach(name: str, *, unregister: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment, fixing up resource tracking.

    Attaching registers the segment with the attaching process's
    resource tracker (CPython < 3.13). Under the ``spawn`` start method
    the child owns a *separate* tracker which would unlink the segment —
    and warn — at child exit even though the parent still owns it, so
    the child unregisters right away. Under ``fork`` the child shares
    the parent's tracker and must *not* unregister: the name has to stay
    registered until the parent's ``unlink``.
    """
    shm = shared_memory.SharedMemory(name=name)
    if unregister:
        try:  # pragma: no cover - tracker layout differs across builds
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    return shm


def _ring_views(
    buf_req: memoryview, buf_resp: memoryview, slot_count: int, slot_capacity: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Typed views over the two ring segments: (bounds, verdicts, stats)."""
    bounds = np.ndarray(
        (slot_count, slot_capacity, 2), dtype=np.uint64, buffer=buf_req
    )
    verdict_bytes = slot_count * slot_capacity
    verdicts = np.ndarray(
        (slot_count, slot_capacity), dtype=np.uint8, buffer=buf_resp[:verdict_bytes]
    )
    stats = np.ndarray(
        (slot_count, _STAT_FIELDS),
        dtype=np.uint64,
        buffer=buf_resp[verdict_bytes:],
    )
    return bounds, verdicts, stats


def worker_main(
    conn,
    directory: str,
    owned_sids: Sequence[int],
    req_name: str,
    resp_name: str,
    slot_count: int,
    slot_capacity: int,
    start_method: str = "fork",
    cache_blocks: int = 0,
    cache_stripes: int = 4,
    miss_latency: float = 0.0,
    shared_cache_name: Optional[str] = None,
    shared_cache_locks: Optional[Sequence[object]] = None,
) -> None:
    """Entry point of a snapshot worker process.

    Serves two requests: ``("reload", generation)`` re-opens the owned
    shards from the checkpoint directory and acks ``("ready",
    generation)``; ``("query", seq, slot, sid, count)`` answers the
    bound columns in request slot ``slot`` through the same
    :func:`~repro.engine.batch.shard_batch_empty` kernel the in-process
    path runs (memtable empty, so the verdicts are run-set emptiness)
    and acks ``("done", seq, slot, count)`` once the verdict bitmap and
    stats delta are in the response slot.

    ``cache_blocks``/``cache_stripes``/``miss_latency`` replicate the
    parent's block-cache configuration in this process, so worker-side
    run verification pays the same simulated device cost as the locked
    in-process path would (thread vs. process comparisons stay honest)
    and cache hit/miss counts ship back in the stats delta. The replica
    is per-worker and survives reloads; entries of superseded runs age
    out by LRU since run uids never repeat.

    With ``shared_cache_name`` set the worker instead *attaches* to the
    parent's :class:`~repro.lsm.cache.SharedBlockCache` slab
    (``shared_cache_locks`` are the creator's stripe locks, inherited
    through the process args): every worker — and the parent's locked
    in-process path — then reads and warms one cache, so a block
    admitted anywhere is a hit everywhere. The parent owns the slab's
    lifetime; the worker only closes its attachment.
    """
    # Imported here, not at module top: under the spawn start method the
    # child pays these imports once at boot, and under fork they are
    # already resolved — either way the hot loop below never imports.
    from repro.engine import persist
    from repro.engine.batch import shard_batch_empty
    from repro.lsm.cache import BlockCache, SharedBlockCache

    req = _attach(req_name, unregister=start_method != "fork")
    resp = _attach(resp_name, unregister=start_method != "fork")
    bounds, verdicts, stats = _ring_views(
        req.buf, resp.buf, slot_count, slot_capacity
    )
    if shared_cache_name is not None:
        cache = SharedBlockCache.attach(
            shared_cache_name,
            list(shared_cache_locks or []),
            miss_latency=miss_latency,
            unregister=start_method != "fork",
        )
    elif cache_blocks:
        cache = BlockCache(
            cache_blocks, num_stripes=cache_stripes, miss_latency=miss_latency
        )
    else:
        cache = None
    stores: Dict[int, object] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent died: nothing left to serve
                break
            tag = msg[0]
            if tag == "stop":
                break
            if tag == "reload":
                generation = msg[1]
                try:
                    manifest = persist.load_manifest(directory)
                    if manifest is None:
                        raise InvalidParameterError(f"no manifest in {directory}")
                    if manifest["generation"] != generation:
                        raise InvalidParameterError(
                            f"manifest generation {manifest['generation']} != "
                            f"expected {generation}"
                        )
                    stores = {
                        # Workers own no filter factory by design (nothing
                        # unpicklable crosses the process boundary); runs
                        # restore filters from their embedded blobs, and a
                        # custom-filtered run degrades to verification-only
                        # reads instead of failing the worker.
                        sid: persist.load_shard(
                            directory, manifest, sid, auto_compact=False,
                            missing_filter="drop",
                        )
                        for sid in owned_sids
                    }
                    for store in stores.values():
                        store.attach_cache(cache)
                    conn.send(("ready", generation))
                except Exception as exc:  # noqa: BLE001 - forwarded to parent
                    conn.send(("error", f"reload failed: {exc!r}"))
            elif tag == "query":
                _, seq, slot, sid, count = msg
                store = stores.get(sid)
                if store is None:
                    conn.send(("error", f"shard {sid} not loaded"))
                    continue
                q_lo = bounds[slot, :count, 0]
                q_hi = bounds[slot, :count, 1]
                ledger = store.stats
                before = (
                    ledger.reads_performed,
                    ledger.reads_avoided,
                    ledger.wasted_reads,
                    ledger.cache_hits,
                    ledger.cache_misses,
                )
                empty = shard_batch_empty(store, q_lo, q_hi)
                verdicts[slot, :count] = empty
                stats[slot, 0] = ledger.reads_performed - before[0]
                stats[slot, 1] = ledger.reads_avoided - before[1]
                stats[slot, 2] = ledger.wasted_reads - before[2]
                stats[slot, 3] = ledger.cache_hits - before[3]
                stats[slot, 4] = ledger.cache_misses - before[4]
                conn.send(("done", seq, slot, count))
            else:
                conn.send(("error", f"unknown request {tag!r}"))
    finally:
        conn.close()
        if isinstance(cache, SharedBlockCache):
            cache.close()  # attachment only; the parent owns the slab
        req.close()
        resp.close()


class _WorkerHandle:
    """Parent-side state for one worker process (one user at a time)."""

    __slots__ = (
        "process", "conn", "req_shm", "resp_shm",
        "bounds", "verdicts", "stats", "lock", "alive",
    )

    def __init__(self, process, conn, req_shm, resp_shm, slot_count, slot_capacity):
        self.process = process
        self.conn = conn
        self.req_shm = req_shm
        self.resp_shm = resp_shm
        self.bounds, self.verdicts, self.stats = _ring_views(
            req_shm.buf, resp_shm.buf, slot_count, slot_capacity
        )
        self.lock = threading.Lock()
        self.alive = True

    def send(self, msg) -> None:
        """One protocol request; a dead worker surfaces as WorkerError."""
        try:
            self.conn.send(msg)
        except (OSError, ValueError) as exc:  # BrokenPipeError is an OSError
            raise WorkerError(f"worker pipe send failed: {exc!r}") from exc

    def recv(self):
        """One protocol reply, failing fast on death, patiently on load.

        Polls in short slices so a dead worker surfaces within about a
        second, while a *live* worker grinding through an expensive
        chunk (simulated device sleeps) is waited on up to the hung
        backstop rather than being falsely retired.
        """
        deadline = time.monotonic() + _POLL_TIMEOUT
        try:
            while not self.conn.poll(_POLL_SLICE):
                if not self.process.is_alive():
                    raise WorkerError("worker process died")
                if time.monotonic() > deadline:
                    raise WorkerError("worker hung past the backstop timeout")
            msg = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(f"worker process died: {exc!r}") from exc
        if msg[0] == "error":
            raise WorkerError(msg[1])
        return msg


class ShardWorkerPool:
    """Read-only snapshot workers behind shared-memory query rings.

    Parameters
    ----------
    directory:
        The persistent engine's checkpoint directory.
    num_shards:
        Shard count of the engine; shards are dealt to workers
        round-robin (``sid % num_workers``).
    num_workers:
        Worker processes to spawn (capped at ``num_shards`` — an idle
        worker owning no shard would be pure overhead).
    slot_count / slot_capacity:
        Ring geometry per worker: how many chunks may be in flight and
        how many queries fit one chunk.
    cache_blocks / cache_stripes / miss_latency:
        Replicate the serving tier's block-cache configuration inside
        each worker process (``0`` blocks disables), so worker-side run
        verification pays the same simulated device cost as the
        in-process path and ships cache hit/miss counts home.
    shared_cache:
        A parent-owned :class:`~repro.lsm.cache.SharedBlockCache` every
        worker attaches to instead of building a private replica
        (``cache_blocks`` is then ignored). One slab serves all workers
        and the parent: an admission anywhere is a hit everywhere, and
        total cache memory stays one slab instead of one per process.
    """

    def __init__(
        self,
        directory: str | Path,
        num_shards: int,
        num_workers: int,
        *,
        slot_count: int = 4,
        slot_capacity: int = 8192,
        cache_blocks: int = 0,
        cache_stripes: int = 4,
        miss_latency: float = 0.0,
        shared_cache: Optional["SharedBlockCache"] = None,
    ) -> None:
        if num_workers < 1:
            raise InvalidParameterError("num_workers must be >= 1")
        if slot_count < 1 or slot_capacity < 1:
            raise InvalidParameterError("ring geometry must be positive")
        self._directory = str(directory)
        self._num_workers = min(int(num_workers), int(num_shards))
        self._slot_count = int(slot_count)
        self._slot_capacity = int(slot_capacity)
        methods = multiprocessing.get_all_start_methods()
        self._start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(self._start_method)
        self._handles: List[_WorkerHandle] = []
        self._closed = False
        req_bytes = self._slot_count * self._slot_capacity * 16
        resp_bytes = self._slot_count * (self._slot_capacity + _STAT_FIELDS * 8)
        try:
            for w in range(self._num_workers):
                owned = tuple(
                    sid for sid in range(num_shards) if sid % self._num_workers == w
                )
                # Segments created this iteration are released here on any
                # failure before they are wrapped in a handle; close()
                # below only knows about completed handles.
                req_shm = resp_shm = None
                try:
                    req_shm = shared_memory.SharedMemory(create=True, size=req_bytes)
                    resp_shm = shared_memory.SharedMemory(create=True, size=resp_bytes)
                    parent_conn, child_conn = self._ctx.Pipe()
                    process = self._ctx.Process(
                        target=worker_main,
                        args=(
                            child_conn, self._directory, owned,
                            req_shm.name, resp_shm.name,
                            self._slot_count, self._slot_capacity,
                            self._start_method,
                            0 if shared_cache is not None else int(cache_blocks),
                            int(cache_stripes), float(miss_latency),
                            shared_cache.name if shared_cache is not None else None,
                            list(shared_cache.locks) if shared_cache is not None else None,
                        ),
                        name=f"repro-shard-worker-{w}",
                        daemon=True,
                    )
                    process.start()
                except BaseException:
                    for shm in (req_shm, resp_shm):
                        if shm is not None:
                            shm.close()
                            shm.unlink()
                    raise
                child_conn.close()
                self._handles.append(
                    _WorkerHandle(
                        process, parent_conn, req_shm, resp_shm,
                        self._slot_count, self._slot_capacity,
                    )
                )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    def worker_of(self, sid: int) -> int:
        return sid % self._num_workers

    # ------------------------------------------------------------------
    # Epoch handshake
    # ------------------------------------------------------------------
    def reload(self, generation: int) -> int:
        """Synchronously re-open every worker's shards at ``generation``.

        Sends all reload commands first, then collects all acks, so the
        (file-bound) reloads overlap across workers. Must be called with
        the keyspace quiesced — the service does so under all write
        locks, right after the checkpoint that produced ``generation``.

        Failure-isolated per worker: a worker that dies or answers out
        of protocol is marked down (its shards fall back to the caller's
        in-process path at query time) while the remaining workers keep
        serving. Returns the number of workers alive afterwards; the
        caller decides whether zero is fatal.
        """
        self._check_open()
        for handle in self._handles:
            with handle.lock:
                if not handle.alive:
                    continue
                try:
                    handle.send(("reload", generation))
                except WorkerError:
                    handle.alive = False
        alive = 0
        for w, handle in enumerate(self._handles):
            with handle.lock:
                if not handle.alive:
                    continue
                try:
                    tag, got = handle.recv()
                    if tag != "ready" or got != generation:
                        raise WorkerError(f"unexpected reload ack {(tag, got)!r}")
                    alive += 1
                except (WorkerError, ValueError) as exc:
                    # Mark it down rather than raising: the protocol with
                    # this worker may be desynchronised, but every other
                    # worker acked in lockstep and stays usable.
                    handle.alive = False
                    warnings.warn(
                        f"snapshot worker {w} lost during reload ({exc}); "
                        "its shards will be served in-process",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        return alive

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise WorkerError("worker pool is closed")

    def query(
        self, sid: int, q_lo: np.ndarray, q_hi: np.ndarray
    ) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """Run-set emptiness of each ``[q_lo[j], q_hi[j]]`` on shard ``sid``.

        Streams the bound columns through the owning worker's ring —
        chunks of ``slot_capacity`` queries, up to ``slot_count`` in
        flight — and reassembles the verdict bitmap in order. Returns
        ``(verdicts, stats_delta)`` where ``stats_delta`` is the
        worker-side ``(reads_performed, reads_avoided, wasted_reads,
        cache_hits, cache_misses)`` attributable to this call. Raises
        :class:`WorkerError` if the worker died or desynchronised; the
        caller falls back to the in-process path.
        """
        self._check_open()
        handle = self._handles[self.worker_of(sid)]
        n = int(q_lo.size)
        verdicts = np.empty(n, dtype=bool)
        totals = [0] * _STAT_FIELDS
        cap = self._slot_capacity
        with handle.lock:
            if not handle.alive:
                raise WorkerError("worker previously failed")
            try:
                inflight: deque = deque()
                seq = 0
                for start in range(0, n, cap):
                    stop = min(start + cap, n)
                    if len(inflight) == self._slot_count:
                        self._collect(handle, inflight, verdicts, totals)
                    slot = seq % self._slot_count
                    count = stop - start
                    handle.bounds[slot, :count, 0] = q_lo[start:stop]
                    handle.bounds[slot, :count, 1] = q_hi[start:stop]
                    handle.send(("query", seq, slot, sid, count))
                    inflight.append((seq, slot, start, stop))
                    seq += 1
                while inflight:
                    self._collect(handle, inflight, verdicts, totals)
            except WorkerError:
                handle.alive = False
                raise
            except (ValueError, TypeError) as exc:
                # A malformed reply (e.g. a stale ack after a lost reload)
                # means the protocol stream is unusable; retire the worker
                # so the caller's local fallback takes over.
                handle.alive = False
                raise WorkerError(f"worker protocol desync: {exc!r}") from exc
        return verdicts, tuple(totals)

    def _collect(self, handle: _WorkerHandle, inflight, verdicts, totals) -> None:
        """Receive one completion and scatter its slot into the output."""
        seq, slot, start, stop = inflight.popleft()
        tag, got_seq, got_slot, count = handle.recv()
        if tag != "done" or got_seq != seq or got_slot != slot or count != stop - start:
            raise WorkerError(
                f"out-of-order reply {(tag, got_seq, got_slot, count)!r}, "
                f"expected seq {seq}"
            )
        verdicts[start:stop] = handle.verdicts[slot, :count].astype(bool)
        for f in range(_STAT_FIELDS):
            totals[f] += int(handle.stats[slot, f])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker and release the shared-memory rings."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=timeout)
            handle.conn.close()
            # Views alias the shm buffers; drop them before closing.
            handle.bounds = handle.verdicts = handle.stats = None  # type: ignore[assignment]
            for shm in (handle.req_shm, handle.resp_shm):
                try:
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - double close
                    pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardWorkerPool(workers={self._num_workers}, "
            f"ring={self._slot_count}x{self._slot_capacity}, "
            f"closed={self._closed})"
        )
