"""Deferred ("background") compaction scheduling.

With ``auto_compact=False`` an :class:`~repro.lsm.store.LSMStore` never
compacts inline: a flush that fills level 0 only raises
:attr:`~repro.lsm.store.LSMStore.needs_compaction`. The engine notifies
this scheduler on every write; the queued work is drained *between*
query batches — the same reason real engines run compaction on
background threads: a compaction in the middle of a latency-sensitive
batch would stall it. The reproduction stays single-threaded (so tests
are deterministic), but the scheduling seam is the one a thread pool
would plug into.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lsm.store import LSMStore


class CompactionScheduler:
    """FIFO queue of shards whose level 0 has reached the fanout."""

    def __init__(self) -> None:
        self._pending: Dict[int, LSMStore] = {}  # insertion-ordered
        self._drained_total = 0

    def notify(self, shard_id: int, store: LSMStore) -> None:
        """Record that ``shard_id`` may need compaction (cheap, idempotent)."""
        if store.needs_compaction and shard_id not in self._pending:
            self._pending[shard_id] = store

    def drain(self, max_compactions: Optional[int] = None) -> int:
        """Run pending compactions (all of them, or at most ``max_compactions``).

        Returns the number performed. A shard that shrank below the
        fanout since it was queued (e.g. an explicit :meth:`LSMStore.compact`)
        is skipped for free.
        """
        done = 0
        while self._pending and (max_compactions is None or done < max_compactions):
            shard_id, store = next(iter(self._pending.items()))
            del self._pending[shard_id]
            if store.needs_compaction:
                store.compact()
                done += 1
        self._drained_total += done
        return done

    @property
    def pending_shards(self) -> Tuple[int, ...]:
        """Shard ids queued for compaction, oldest first."""
        return tuple(self._pending)

    @property
    def compactions_run(self) -> int:
        """Total compactions performed through :meth:`drain`."""
        return self._drained_total

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionScheduler(pending={len(self._pending)})"
