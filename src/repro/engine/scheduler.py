"""Deferred ("background") compaction scheduling, in bounded steps.

With ``auto_compact=False`` an :class:`~repro.lsm.store.LSMStore` never
compacts inline: a flush that fills level 0 only raises
:attr:`~repro.lsm.store.LSMStore.needs_compaction` (and fires the
store's ``compaction_hook``, which the engine wires to :meth:`notify` so
even flushes the engine did not itself drive land in the queue). The
queued work is drained either *between* query batches (the
single-threaded :meth:`~repro.engine.engine.ShardedEngine.batch_range_empty`
path) or by the background compaction worker of
:class:`~repro.engine.service.RangeQueryService`.

The unit of work is one :meth:`~repro.lsm.store.LSMStore.compact_step` —
a single policy-planned rewrite (one merge, one slice rebuild), never a
whole-store merge. That is what lets the service's worker compact a
shard under its write lock without stalling queries for the duration of
a full rebuild: it takes the lock, runs one step, releases, and re-queues
the shard if the policy still sees pressure.

The queue is thread-safe: writers :meth:`notify` from pool threads while
the worker :meth:`pop`-s, so every ``_pending`` access happens under one
lock. Running the compaction itself is *not* this class's
job under concurrency — the caller must hold whatever lock makes
``store.compact_step()`` safe (:meth:`drain` is the single-threaded
convenience that skips that ceremony).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.lsm.store import LSMStore


class CompactionScheduler:
    """Thread-safe FIFO queue of shards whose level 0 reached the fanout."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Dict[int, LSMStore] = {}  # insertion-ordered
        self._drained_total = 0

    def notify(self, shard_id: int, store: LSMStore) -> None:
        """Record that ``shard_id`` may need compaction (cheap, idempotent).

        Safe to call from any thread.
        """
        if not store.needs_compaction:
            return
        with self._lock:
            self._pending.setdefault(shard_id, store)

    def pop(self) -> Optional[Tuple[int, LSMStore]]:
        """Dequeue the oldest pending shard, or ``None`` (non-blocking).

        The caller owns making the subsequent ``compact()`` safe (e.g.
        by taking the shard's write lock) and should re-check
        ``needs_compaction``: the shard may have been compacted
        explicitly since it was queued.
        """
        with self._lock:
            if not self._pending:
                return None
            shard_id = next(iter(self._pending))
            return shard_id, self._pending.pop(shard_id)

    def record_compactions(self, count: int = 1) -> None:
        """Fold compaction steps an external worker ran into the ledger."""
        with self._lock:
            self._drained_total += count

    def drain(self, max_steps: Optional[int] = None) -> int:
        """Run pending compaction steps (all, or at most ``max_steps``).

        Returns the number of bounded steps performed. A shard that
        settled since it was queued (e.g. an explicit
        :meth:`LSMStore.compact`) is skipped for free; a shard whose
        policy needs several steps runs them back to back until it
        settles or the step budget runs out — in which case it is
        re-queued so the next drain resumes it. This is the
        single-threaded path: the queue pops are synchronized, but the
        steps run on the calling thread with no shard locking.
        """
        done = 0
        while max_steps is None or done < max_steps:
            item = self.pop()
            if item is None:
                break
            shard_id, store = item
            while store.needs_compaction and (
                max_steps is None or done < max_steps
            ):
                if not store.compact_step():
                    break
                done += 1
            if store.needs_compaction:  # step budget ran out mid-shard
                self.notify(shard_id, store)
                break
        self.record_compactions(done)
        return done

    @property
    def pending_shards(self) -> Tuple[int, ...]:
        """Shard ids queued for compaction, oldest first."""
        with self._lock:
            return tuple(self._pending)

    @property
    def compactions_run(self) -> int:
        """Total compaction steps performed through :meth:`drain` or
        recorded by a background worker via :meth:`record_compactions`."""
        with self._lock:
            return self._drained_total

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionScheduler(pending={len(self)})"
