"""Deferred ("background") compaction scheduling, in bounded steps.

With ``auto_compact=False`` an :class:`~repro.lsm.store.LSMStore` never
compacts inline: a flush that fills level 0 only raises
:attr:`~repro.lsm.store.LSMStore.needs_compaction` (and fires the
store's ``compaction_hook``, which the engine wires to :meth:`notify` so
even flushes the engine did not itself drive land in the queue). The
queued work is drained either *between* query batches (the
single-threaded :meth:`~repro.engine.engine.ShardedEngine.batch_range_empty`
path) or by the background compaction worker of
:class:`~repro.engine.service.RangeQueryService`.

The unit of work is one :meth:`~repro.lsm.store.LSMStore.compact_step` —
a single policy-planned rewrite (one merge, one slice rebuild), never a
whole-store merge. That is what lets the service's worker compact a
shard under its write lock without stalling queries for the duration of
a full rebuild: it takes the lock, runs one step, releases, and re-queues
the shard if the policy still sees pressure.

The queue is thread-safe: writers :meth:`notify` from pool threads while
the worker :meth:`pop`-s, so every ``_pending`` access happens under one
lock. Running the compaction itself is *not* this class's
job under concurrency — the caller must hold whatever lock makes
``store.compact_step()`` safe (:meth:`drain` is the single-threaded
convenience that skips that ceremony).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.lsm.store import LSMStore


class TokenBucket:
    """Token-bucket rate limiter metered in *entries compacted*.

    Compaction cost is dominated by entries rewritten, not steps taken —
    a deep leveled push-down rewrites one slice's worth, a full merge
    rewrites the store — so the bucket refills at ``rate`` entries per
    second and each step *debits its actual rewrite size afterwards*.
    A step's cost is unknown before it runs, so admission is "balance is
    positive": one step may overdraw the bucket, and the debt then
    defers further steps until the refill catches up. That bounds
    sustained compaction throughput at ``rate`` while never deadlocking
    on a single step larger than the burst.

    ``clock`` is injectable (tests pass a fake monotone clock); the
    default is :func:`time.monotonic`. Thread-safe.
    """

    def __init__(
        self,
        rate: float,
        *,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise InvalidParameterError(
                f"rate must be positive entries/sec, got {rate}"
            )
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        if self.burst <= 0:
            raise InvalidParameterError("burst must be positive")
        self._clock = clock
        self._lock = threading.Lock()
        self._balance = self.burst  # may go negative after a big debit
        self._last = float(clock())

    def _refill_locked(self) -> None:
        now = float(self._clock())
        elapsed = now - self._last
        if elapsed > 0:
            self._balance = min(self.burst, self._balance + elapsed * self.rate)
            self._last = now

    def ready(self) -> bool:
        """May a compaction step start now? (Positive balance.)"""
        with self._lock:
            self._refill_locked()
            return self._balance > 0

    def debit(self, tokens: float) -> None:
        """Charge a finished step's actual entry count against the bucket."""
        if tokens <= 0:
            return
        with self._lock:
            self._refill_locked()
            self._balance -= float(tokens)

    def eta(self) -> float:
        """Seconds until the balance turns positive (0 when ready)."""
        with self._lock:
            self._refill_locked()
            if self._balance > 0:
                return 0.0
            return (-self._balance) / self.rate + 1e-9

    @property
    def balance(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._balance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBucket(rate={self.rate}, balance={self.balance:.1f})"


class CompactionScheduler:
    """Thread-safe FIFO queue of shards whose level 0 reached the fanout."""

    def __init__(self, *, rate_limiter: Optional[TokenBucket] = None) -> None:
        self._lock = threading.Lock()
        self._pending: Dict[int, LSMStore] = {}  # insertion-ordered
        self._drained_total = 0
        self._throttled_total = 0
        self._rate_limiter = rate_limiter

    def notify(self, shard_id: int, store: LSMStore) -> None:
        """Record that ``shard_id`` may need compaction (cheap, idempotent).

        Safe to call from any thread.
        """
        if not store.needs_compaction:
            return
        with self._lock:
            self._pending.setdefault(shard_id, store)

    def pop(self) -> Optional[Tuple[int, LSMStore]]:
        """Dequeue the oldest pending shard, or ``None`` (non-blocking).

        The caller owns making the subsequent ``compact()`` safe (e.g.
        by taking the shard's write lock) and should re-check
        ``needs_compaction``: the shard may have been compacted
        explicitly since it was queued.
        """
        with self._lock:
            if not self._pending:
                return None
            shard_id = next(iter(self._pending))
            return shard_id, self._pending.pop(shard_id)

    def record_compactions(self, count: int = 1) -> None:
        """Fold compaction steps an external worker ran into the ledger."""
        with self._lock:
            self._drained_total += count

    def record_throttle(self, count: int = 1) -> None:
        """Fold rate-limiter deferrals an external worker hit into the
        ledger (diagnostics only; the work stays queued)."""
        with self._lock:
            self._throttled_total += count

    @property
    def rate_limiter(self) -> Optional[TokenBucket]:
        """The compaction rate limiter, when one is configured."""
        return self._rate_limiter

    def set_rate_limiter(self, limiter: Optional[TokenBucket]) -> None:
        """Install (or remove) the compaction rate limiter.

        A single attribute store — atomic under the GIL, safe while the
        background worker is mid-drain: the worker picks the new limiter
        up on its next step admission.
        """
        self._rate_limiter = limiter

    def throttle_wait(self) -> float:
        """0 when a step may start now, else seconds until the limiter
        refills — the back-off a draining worker should sleep.

        Counts a throttle event whenever it defers, so sustained
        rate-limiting is visible in stats even when no step ever runs.
        """
        limiter = self._rate_limiter
        if limiter is None or limiter.ready():
            return 0.0
        self.record_throttle(1)
        return limiter.eta()

    def drain(self, max_steps: Optional[int] = None) -> int:
        """Run pending compaction steps (all, or at most ``max_steps``).

        Returns the number of bounded steps performed. A shard that
        settled since it was queued (e.g. an explicit
        :meth:`LSMStore.compact`) is skipped for free; a shard whose
        policy needs several steps runs them back to back until it
        settles or the step budget runs out — in which case it is
        re-queued so the next drain resumes it. This is the
        single-threaded path: the queue pops are synchronized, but the
        steps run on the calling thread with no shard locking.
        """
        done = 0
        throttled = False
        while max_steps is None or done < max_steps:
            item = self.pop()
            if item is None:
                break
            shard_id, store = item
            while store.needs_compaction and (
                max_steps is None or done < max_steps
            ):
                if self.throttle_wait() > 0:
                    # The bucket is in debt: leave the shard queued and
                    # return — drain() runs between query batches and
                    # must never sleep on the query path.
                    throttled = True
                    break
                before = store.stats.entries_compacted
                if not store.compact_step():
                    break
                done += 1
                limiter = self._rate_limiter
                if limiter is not None:
                    limiter.debit(store.stats.entries_compacted - before)
            if store.needs_compaction:  # step budget ran out mid-shard
                self.notify(shard_id, store)
                break
            if throttled:
                break
        self.record_compactions(done)
        return done

    @property
    def pending_shards(self) -> Tuple[int, ...]:
        """Shard ids queued for compaction, oldest first."""
        with self._lock:
            return tuple(self._pending)

    @property
    def compactions_run(self) -> int:
        """Total compaction steps performed through :meth:`drain` or
        recorded by a background worker via :meth:`record_compactions`."""
        with self._lock:
            return self._drained_total

    @property
    def compactions_throttled(self) -> int:
        """Times a step was deferred because the rate limiter was dry."""
        with self._lock:
            return self._throttled_total

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionScheduler(pending={len(self)})"
