"""Deferred ("background") compaction scheduling.

With ``auto_compact=False`` an :class:`~repro.lsm.store.LSMStore` never
compacts inline: a flush that fills level 0 only raises
:attr:`~repro.lsm.store.LSMStore.needs_compaction`. The engine notifies
this scheduler on every write; the queued work is drained either
*between* query batches (the single-threaded
:meth:`~repro.engine.engine.ShardedEngine.batch_range_empty` path) or by
the background compaction worker of
:class:`~repro.engine.service.RangeQueryService`, which polls
:meth:`pop` and compacts each shard under that shard's write lock — the
same reason real engines run compaction on background threads: a
compaction in the middle of a latency-sensitive batch would stall it.

The queue is thread-safe: writers :meth:`notify` from pool threads while
the worker :meth:`pop`-s, so every ``_pending`` access happens under one
lock. Running the compaction itself is *not* this class's
job under concurrency — the caller must hold whatever lock makes
``store.compact()`` safe (:meth:`drain` is the single-threaded
convenience that skips that ceremony).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.lsm.store import LSMStore


class CompactionScheduler:
    """Thread-safe FIFO queue of shards whose level 0 reached the fanout."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Dict[int, LSMStore] = {}  # insertion-ordered
        self._drained_total = 0

    def notify(self, shard_id: int, store: LSMStore) -> None:
        """Record that ``shard_id`` may need compaction (cheap, idempotent).

        Safe to call from any thread.
        """
        if not store.needs_compaction:
            return
        with self._lock:
            self._pending.setdefault(shard_id, store)

    def pop(self) -> Optional[Tuple[int, LSMStore]]:
        """Dequeue the oldest pending shard, or ``None`` (non-blocking).

        The caller owns making the subsequent ``compact()`` safe (e.g.
        by taking the shard's write lock) and should re-check
        ``needs_compaction``: the shard may have been compacted
        explicitly since it was queued.
        """
        with self._lock:
            if not self._pending:
                return None
            shard_id = next(iter(self._pending))
            return shard_id, self._pending.pop(shard_id)

    def record_compactions(self, count: int = 1) -> None:
        """Fold compactions an external worker ran into the ledger."""
        with self._lock:
            self._drained_total += count

    def drain(self, max_compactions: Optional[int] = None) -> int:
        """Run pending compactions (all of them, or at most ``max_compactions``).

        Returns the number performed. A shard that shrank below the
        fanout since it was queued (e.g. an explicit :meth:`LSMStore.compact`)
        is skipped for free. This is the single-threaded path: the queue
        pops are synchronized, but the compactions run on the calling
        thread with no shard locking.
        """
        done = 0
        while max_compactions is None or done < max_compactions:
            item = self.pop()
            if item is None:
                break
            _, store = item
            if store.needs_compaction:
                store.compact()
                done += 1
        self.record_compactions(done)
        return done

    @property
    def pending_shards(self) -> Tuple[int, ...]:
        """Shard ids queued for compaction, oldest first."""
        with self._lock:
            return tuple(self._pending)

    @property
    def compactions_run(self) -> int:
        """Total compactions performed through :meth:`drain` or recorded
        by a background worker via :meth:`record_compactions`."""
        with self._lock:
            return self._drained_total

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionScheduler(pending={len(self)})"
