"""The sharded, persistent, batch-capable storage engine.

:class:`ShardedEngine` composes the pieces of this package into the
system the paper's introduction gestures at — a key-value store serving
heavy range-query traffic behind in-memory filters:

* the universe is range-partitioned across N independent
  :class:`~repro.lsm.store.LSMStore` shards (:mod:`.sharding`), so
  writes scale out and a range query touches only the shards it
  overlaps;
* every acknowledged mutation hits a write-ahead log first
  (:mod:`.wal`); checkpoints snapshot all runs *with their filters* to a
  directory (:mod:`.persist`), and :meth:`open` recovers
  snapshot-plus-log after a crash;
* emptiness probes arrive in batches (:mod:`.batch`) and hit each run's
  filter through the vectorised batch API — Grafite's
  ``O(log(L/eps))`` query of Theorem 3.4 amortised over the batch;
* compaction is deferred to a scheduler (:mod:`.scheduler`) and drained
  between batches — or, under the concurrent serving layer
  (:mod:`.service`), by a real background compaction thread.

The engine itself is single-threaded; wrap it in a
:class:`~repro.engine.service.RangeQueryService` to serve it from a
thread pool with per-shard reader/writer locking and a block cache.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.strings import StringKeyCodec
from repro.engine import persist
from repro.engine.batch import batch_range_empty, validate_batch_bounds
from repro.engine.scheduler import CompactionScheduler, TokenBucket
from repro.engine.sharding import ShardRouter
from repro.engine.wal import OP_CLOCK, OP_DELETE, OP_PUT, WriteAheadLog
from repro.errors import CorruptionError, InvalidParameterError
from repro.filters.registry import FilterSpec
from repro.lsm.compaction import CompactionPolicy, resolve_policy
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import FilterFactory
from repro.lsm.store import IoStats, LSMStore
from repro.lsm.ttl import ExpiringValue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.autotune import AutoTuner
    from repro.engine.planner import BatchPlanner
    from repro.engine.strings import StringView
    from repro.lsm.cache import BlockCache


class ShardedEngine:
    """A sharded LSM engine with durability and batch queries.

    Parameters
    ----------
    universe:
        Exclusive key-universe bound (at most ``2^64``; the WAL and run
        formats store keys as u64).
    num_shards:
        Number of contiguous key-range partitions.
    memtable_limit / compaction_fanout / filter_factory:
        Passed through to every shard's :class:`LSMStore`.
    filter_spec:
        Alternative to ``filter_factory``: a named backend from
        :mod:`repro.filters.registry` plus its knobs. A spec (unlike a
        bare callable) is recorded in the manifest, so :meth:`open` can
        rebuild the factory without the caller re-supplying it. Passing
        both is an error.
    directory:
        ``None`` keeps the engine in memory. A path makes it persistent:
        mutations are write-ahead logged there and :meth:`checkpoint`
        snapshots the runs. Use :meth:`open` to recover an existing
        directory — passing one that already holds an engine here raises.
    sync_wal:
        fsync the WAL on every mutation (durable against power loss).
    defer_compaction:
        ``True`` (default) queues compactions on the scheduler and runs
        them between batches; ``False`` compacts inline like a bare
        :class:`LSMStore`.
    compaction:
        The per-shard compaction policy: a registered name (``"full"``,
        ``"tiered"``, ``"leveled"``), a
        :class:`~repro.lsm.compaction.CompactionPolicy` instance shared
        by every shard, or ``None`` for the backward-compatible
        full-merge default. Recorded in the manifest, so :meth:`open`
        mounts the same policy without the caller re-supplying it.
    compaction_rate:
        Optional compaction throughput ceiling in *entries rewritten
        per second*: installs a
        :class:`~repro.engine.scheduler.TokenBucket` on the scheduler,
        which defers further steps while the bucket is in debt — so
        deferred compaction cannot monopolise the shards under
        sustained ingest. ``None`` (default) leaves compaction
        unthrottled. An operational knob (like ``sync_wal``), not part
        of the manifest.
    key_codec:
        Optional :class:`~repro.core.strings.StringKeyCodec` declaring
        the engine string-keyed. Its universe must equal ``universe``;
        :attr:`strings` then exposes the string-keyed facade over the
        integer API. Recorded in the manifest, so :meth:`open` restores
        the codec without the caller re-supplying the width.
    """

    def __init__(
        self,
        universe: int = 2**64,
        *,
        num_shards: int = 4,
        memtable_limit: int = 1024,
        compaction_fanout: int = 4,
        filter_factory: Optional[FilterFactory] = None,
        filter_spec: Optional[FilterSpec] = None,
        directory: Optional[str | Path] = None,
        sync_wal: bool = False,
        defer_compaction: bool = True,
        compaction: "str | CompactionPolicy | None" = None,
        compaction_rate: Optional[float] = None,
        key_codec: Optional[StringKeyCodec] = None,
    ) -> None:
        if universe > 2**64:
            raise InvalidParameterError(
                "the engine stores keys as u64: universe must be <= 2^64"
            )
        if key_codec is not None and key_codec.universe != universe:
            raise InvalidParameterError(
                f"key_codec width {key_codec.width} implies universe "
                f"{key_codec.universe}, engine universe is {universe}"
            )
        if filter_spec is not None:
            if filter_factory is not None:
                raise InvalidParameterError(
                    "pass filter_factory or filter_spec, not both"
                )
            filter_factory = filter_spec.factory()
        self._router = ShardRouter(universe, num_shards)
        self._memtable_limit = int(memtable_limit)
        self._fanout = int(compaction_fanout)
        self._factory = filter_factory
        self._filter_spec = filter_spec
        self._autotuner: Optional["AutoTuner"] = None
        self._planner: Optional["BatchPlanner"] = None
        self._defer = bool(defer_compaction)
        self._block_cache: Optional["BlockCache"] = None
        self._scheduler = CompactionScheduler(
            rate_limiter=(
                TokenBucket(compaction_rate)
                if compaction_rate is not None else None
            )
        )
        self._policy = resolve_policy(compaction)
        self._key_codec = key_codec
        self._ttl_now = 0  # logical TTL clock; advances via advance_clock
        self._shards: List[LSMStore] = [
            LSMStore(
                universe,
                memtable_limit=memtable_limit,
                compaction_fanout=compaction_fanout,
                filter_factory=filter_factory,
                auto_compact=not self._defer,
                compaction_policy=self._policy,
            )
            for _ in range(num_shards)
        ]
        self._wire_compaction_hooks()
        self._wal: Optional[WriteAheadLog] = None
        self._directory: Optional[Path] = None
        self._rolled_back = False
        if directory is not None:
            self._directory = Path(directory)
            if persist.load_manifest(self._directory) is not None:
                raise InvalidParameterError(
                    f"{directory} already holds an engine; use ShardedEngine.open"
                )
            self._directory.mkdir(parents=True, exist_ok=True)
            # Manifest first, so a crash before the first checkpoint still
            # leaves enough topology on disk for open() to recover.
            persist.save_snapshot(self._directory, self._params(), self._shards)
            self._wal = WriteAheadLog(self._directory / "wal.log", sync=sync_wal)
            for op, key, value in self._wal.recovered:
                # A stray pre-manifest log (crash during __init__): replay.
                self._apply(op, key, value)

    def _wire_compaction_hooks(self) -> None:
        """Point every shard's flush hook at the deferred scheduler.

        With ``defer_compaction`` a flush that leaves a shard needing
        work enqueues it even when the flush was not driven through an
        engine mutation (e.g. a memtable-limit flush inside a replayed
        WAL batch, or a caller poking the store directly) — the seam
        :attr:`~repro.lsm.store.LSMStore.compaction_hook` exists for.
        """
        if not self._defer:
            return
        for sid, store in enumerate(self._shards):
            store.compaction_hook = (
                lambda s, sid=sid: self._scheduler.notify(sid, s)
            )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        filter_factory: Optional[FilterFactory] = None,
        sync_wal: bool = False,
        defer_compaction: bool = True,
        compaction_rate: Optional[float] = None,
        missing_filter: str = "raise",
    ) -> "ShardedEngine":
        """Recover a persistent engine: snapshot, then WAL replay.

        Every registered backend's filters restore byte-for-byte from
        the snapshot blobs, so reopened engines answer every query
        exactly as before the crash/shutdown. An engine created with a
        ``filter_spec`` additionally recorded it in the manifest, and
        gets its factory back automatically; an engine created with a
        bare ``filter_factory`` callable must be reopened with the same
        one. Reopening with neither, when the snapshot holds runs whose
        filters cannot be restored, raises
        :class:`~repro.errors.ConfigError` instead of silently serving
        filterless runs (``missing_filter="drop"`` opts into that).

        Corruption is never served. If the newest checkpoint fails
        verification — manifest checksum, run checksum, a referenced
        run file missing or unparseable — and the directory retains an
        intact previous epoch (``MANIFEST.prev.json``; the snapshot
        writer keeps both epochs' run files on disk), the engine rolls
        back to that epoch automatically: the previous manifest is
        promoted, the corrupt one kept as ``MANIFEST.corrupt.json``,
        the current WAL is still replayed on top, and
        :attr:`rolled_back` is ``True`` (plus a ``UserWarning`` naming
        the damage). Writes acknowledged between the two checkpoints
        and not in the current WAL are lost — that is the documented
        cost of a rolled-back epoch, and the explicit alternative to a
        silently wrong answer. With no intact epoch left, the original
        :class:`~repro.errors.CorruptionError` propagates.
        """
        directory = Path(directory)
        rolled_back = False
        try:
            manifest = persist.load_manifest(directory)
            if manifest is None:
                raise InvalidParameterError(f"no engine manifest in {directory}")
            engine = cls._mount_epoch(
                directory,
                manifest,
                filter_factory=filter_factory,
                defer_compaction=defer_compaction,
                missing_filter=missing_filter,
            )
        except CorruptionError as newest_damage:
            try:
                manifest = persist.promote_previous_epoch(directory)
                engine = cls._mount_epoch(
                    directory,
                    manifest,
                    filter_factory=filter_factory,
                    defer_compaction=defer_compaction,
                    missing_filter=missing_filter,
                )
            except CorruptionError:
                # Neither epoch is intact: surface the *newest* damage —
                # that is the checkpoint the operator thought they had.
                raise newest_damage
            rolled_back = True
            warnings.warn(
                f"newest checkpoint in {directory} failed verification "
                f"({newest_damage}); rolled back to the retained previous "
                f"epoch (generation {manifest.get('generation')}) — writes "
                "between the two checkpoints that are not in the WAL are "
                "lost",
                UserWarning,
                stacklevel=2,
            )
        engine._rolled_back = rolled_back
        engine._directory = directory
        if compaction_rate is not None:
            engine._scheduler.set_rate_limiter(TokenBucket(compaction_rate))
        engine._wal = WriteAheadLog(directory / "wal.log", sync=sync_wal)
        for op, key, value in engine._wal.recovered:
            engine._apply(op, key, value)
        if engine._defer:
            # A snapshot may hold shards already at the fanout; queue them
            # so a read-only workload still drains them between batches.
            for sid, store in enumerate(engine._shards):
                engine._scheduler.notify(sid, store)
        return engine

    @classmethod
    def _mount_epoch(
        cls,
        directory: Path,
        manifest: Dict[str, Any],
        *,
        filter_factory: Optional[FilterFactory],
        defer_compaction: bool,
        missing_filter: str,
    ) -> "ShardedEngine":
        """Build an engine from one manifest's topology (no WAL yet).

        Raises :class:`~repro.errors.CorruptionError` if any referenced
        run fails verification — the caller decides whether an earlier
        epoch can be promoted instead.
        """
        filter_spec = None
        if filter_factory is None and manifest.get("filter_spec") is not None:
            filter_spec = FilterSpec.from_params(manifest["filter_spec"])
        engine = cls(
            manifest["universe"],
            num_shards=manifest["num_shards"],
            memtable_limit=manifest["memtable_limit"],
            compaction_fanout=manifest["compaction_fanout"],
            filter_factory=filter_factory,
            filter_spec=filter_spec,
            defer_compaction=defer_compaction,
            # v1 manifests predate the policy subsystem: they reopen
            # under the default full-merge policy, exactly as written.
            compaction=resolve_policy(manifest.get("compaction")),
        )
        if filter_factory is not None and manifest.get("filter_spec") is not None:
            # A caller-supplied factory overrides what gets *mounted*, but
            # the recorded spec must survive into the next checkpoint's
            # manifest — dropping it would make a later no-factory open()
            # silently flush unfiltered runs (the cliff ConfigError exists
            # to prevent; it cannot fire here because blob-backed runs
            # restore without a factory).
            engine._filter_spec = FilterSpec.from_params(manifest["filter_spec"])
        # Pre-TTL / pre-codec manifests carry neither field: clock 0 and
        # an integer-keyed engine, exactly the semantics they were
        # written under. The shards get the restored clock themselves
        # via persist.load_shards → load_shard.
        engine._ttl_now = int(manifest.get("ttl_now", 0))
        codec_params = manifest.get("key_codec")
        if codec_params is not None:
            engine._key_codec = StringKeyCodec.from_params(codec_params)
        engine._shards = persist.load_shards(
            directory,
            manifest,
            filter_factory=engine._factory,
            auto_compact=not engine._defer,
            missing_filter=missing_filter,
            compaction_policy=engine._policy,
        )
        engine._wire_compaction_hooks()
        return engine

    def scrub(self) -> Dict[str, Any]:
        """Verify every persisted artifact of this engine's directory.

        Delegates to :func:`repro.engine.persist.scrub_snapshot`; see
        there for the report shape. Requires a persistent engine.
        """
        if self._directory is None:
            raise InvalidParameterError("scrub requires a persistent engine")
        return persist.scrub_snapshot(self._directory)

    @property
    def rolled_back(self) -> bool:
        """Whether :meth:`open` recovered by rolling back to the
        previous checkpoint epoch because the newest one was corrupt."""
        return self._rolled_back

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _apply(self, op: int, key: int, value: Any) -> None:
        """Apply a mutation to its shard without re-logging it."""
        if op == OP_CLOCK:
            # The key field carries the logical time. Replay tolerates
            # records at or behind the snapshot-restored clock (a record
            # logged just before the checkpoint that superseded it).
            if key > self._ttl_now:
                self._advance_clock_local(int(key))
            return
        sid = self._router.shard_of(key)
        store = self._shards[sid]
        if op == OP_PUT:
            store.put(key, value)
        else:
            store.delete(key)
        if self._defer:
            self._scheduler.notify(sid, store)

    def put(self, key: int, value: Any, *, expires_at: Optional[int] = None) -> None:
        """Insert or overwrite a key (logged before applied).

        ``expires_at`` stamps the entry with a logical expiry time: the
        entry stops answering every read the moment the TTL clock
        (:meth:`advance_clock`) reaches the stamp — shadowing older
        versions exactly like a tombstone — and compaction removes it
        physically later. The stamp rides the WAL and snapshot formats
        unchanged (the value is stored wrapped in
        :class:`~repro.lsm.ttl.ExpiringValue`).
        """
        self._router.shard_of(key)  # validate before the WAL sees it
        if value is TOMBSTONE:
            raise InvalidParameterError("use delete() instead of writing the tombstone")
        if expires_at is not None:
            value = ExpiringValue(value, expires_at)
        if self._wal is not None:
            self._wal.log_put(key, value)
        self._apply(OP_PUT, key, value)

    def delete(self, key: int) -> None:
        """Delete a key (logged before applied)."""
        self._router.shard_of(key)
        if self._wal is not None:
            self._wal.log_delete(key)
        self._apply(OP_DELETE, key, None)

    # ------------------------------------------------------------------
    # TTL clock
    # ------------------------------------------------------------------
    def _advance_clock_local(self, now: int) -> None:
        """Move every shard's clock forward without re-logging."""
        self._ttl_now = now
        for sid, store in enumerate(self._shards):
            store.set_ttl_now(now)
            if self._defer:
                # Expiry can create age-out work with no write traffic to
                # trigger the flush hook; queue the shard explicitly.
                self._scheduler.notify(sid, store)

    def advance_clock(self, now: int) -> None:
        """Advance the logical TTL clock (monotone; logged before applied).

        Entries whose ``expires_at`` stamp is at or below the new time
        become invisible to every read path at once, exactly; compaction
        then retires them physically — fully-expired bottom runs age out
        whole key ranges in metadata-only steps. The advance is logged
        to the WAL (and recorded in checkpoint manifests), so recovery
        can never resurrect an entry that had already expired.
        """
        now = int(now)
        if now < self._ttl_now:
            raise InvalidParameterError(
                f"TTL clock may not go backwards ({self._ttl_now} -> {now})"
            )
        if now == self._ttl_now:
            return
        if self._wal is not None:
            self._wal.log_clock(now)
        self._advance_clock_local(now)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[Any]:
        """Point lookup, routed to the owning shard."""
        return self._shards[self._router.shard_of(key)].get(key)

    def range_scan(self, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """All live pairs in ``[lo, hi]``; splits at shard boundaries.

        Shards own disjoint contiguous ranges, so per-shard results
        concatenate in key order without a merge.
        """
        out: List[Tuple[int, Any]] = []
        for sid, seg_lo, seg_hi in self._router.split(lo, hi):
            out.extend(self._shards[sid].range_scan(seg_lo, seg_hi))
        return out

    def range_empty(self, lo: int, hi: int) -> bool:
        """Exact emptiness probe; short-circuits across shards."""
        return all(
            self._shards[sid].range_empty(seg_lo, seg_hi)
            for sid, seg_lo, seg_hi in self._router.split(lo, hi)
        )

    def batch_range_empty(
        self, los: np.ndarray | List[int], his: np.ndarray | List[int]
    ) -> np.ndarray:
        """Vectorised :meth:`range_empty` over a batch of ranges.

        Drains deferred compactions first (the "between batches" slot),
        then runs the filter-pruned batch path of
        :func:`repro.engine.batch.batch_range_empty`. With an auto-tuner
        attached, the batch's workload telemetry may retarget shard
        filter factories afterwards — rebuilds happen at the *next*
        between-batches slot, never inside this one.
        """
        self.drain_compactions()
        if self._planner is not None:
            los, his = validate_batch_bounds(self.universe, los, his)
            result = self._planner.execute(
                los, his, lambda q_lo, q_hi: batch_range_empty(self, q_lo, q_hi)
            )
        else:
            result = batch_range_empty(self, los, his)
        if self._autotuner is not None:
            self._autotuner.maybe_retune()
        return result

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        """Flush every shard's memtable into level-0 runs."""
        for sid, store in enumerate(self._shards):
            store.flush()
            if self._defer:
                self._scheduler.notify(sid, store)

    def drain_compactions(self, max_steps: Optional[int] = None) -> int:
        """Run deferred compaction steps now; returns how many ran."""
        return self._scheduler.drain(max_steps)

    def attach_block_cache(self, cache: Optional["BlockCache"]) -> None:
        """Put a shared block cache in front of every shard's run reads.

        Pass ``None`` to detach. Attaching never changes query results
        (runs are immutable); it only changes which block fetches touch
        the simulated disk, visible in :attr:`stats` as
        ``cache_hits`` / ``cache_misses``.
        """
        self._block_cache = cache
        for store in self._shards:
            store.attach_cache(cache)

    def attach_autotuner(self, tuner: Optional["AutoTuner"]) -> None:
        """Install (or remove, with ``None``) a per-shard auto-tuner.

        The tuner subscribes to each shard's batch-query telemetry and
        is given a chance to retarget filter factories after every
        batch (:meth:`batch_range_empty`, or the serving layer's batch
        path). Attaching never changes query results — filters only
        prune, and the exact verification path is backend-agnostic.
        """
        if self._autotuner is not None:
            self._autotuner.detach()
        self._autotuner = tuner
        if tuner is not None:
            tuner.attach(self)

    def attach_planner(self, planner: Optional["BatchPlanner"]) -> None:
        """Install (or remove, with ``None``) a batch query planner.

        With one attached, :meth:`batch_range_empty` — here and in the
        serving layer — runs every batch through the planner's rewrite
        pass, negative-result cache, and cost model
        (:mod:`repro.engine.planner`). Attaching never changes query
        results: the planner only reuses verdicts whose validity
        conditions (``runs_version`` tag + memtable-overlap check) hold
        at consult time.
        """
        if self._planner is not None:
            self._planner.detach()
        self._planner = planner
        if planner is not None:
            planner.attach(self)

    def checkpoint(self) -> None:
        """Flush, snapshot all runs + filters to disk, reset the WAL."""
        if self._directory is None or self._wal is None:
            raise InvalidParameterError("checkpoint requires a persistent engine")
        self.flush_all()
        persist.save_snapshot(self._directory, self._params(), self._shards)
        self._wal.reset()

    def close(self, *, checkpoint: bool = True) -> None:
        """Shut down cleanly; by default checkpoints first."""
        if self._wal is not None:
            if checkpoint:
                self.checkpoint()
            self._wal.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exception, skip the checkpoint: recovery replays the WAL,
        # which is exactly the crash semantics callers are testing.
        self.close(checkpoint=exc_type is None)

    def _params(self) -> dict:
        return {
            "universe": self._router.universe,
            "num_shards": self._router.num_shards,
            "memtable_limit": self._memtable_limit,
            "compaction_fanout": self._fanout,
            "compaction": self._policy.to_params(),
            "filter_spec": (
                self._filter_spec.to_params() if self._filter_spec else None
            ),
            "ttl_now": self._ttl_now,
            "key_codec": (
                self._key_codec.to_params() if self._key_codec else None
            ),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shards(self) -> List[LSMStore]:
        return self._shards

    @property
    def scheduler(self) -> CompactionScheduler:
        return self._scheduler

    @property
    def compaction_policy(self) -> CompactionPolicy:
        """The policy every shard's compaction follows."""
        return self._policy

    def level_stats(self) -> List[Dict[str, int]]:
        """Cross-shard level topology: per level, total runs/entries
        (summed over shards) plus the policy budget when levels are
        budgeted. Row 0 is L0; depth is the deepest shard's."""
        merged: List[Dict[str, int]] = []
        for store in self._shards:
            for row in store.level_stats():
                li = row["level"]
                while len(merged) <= li:
                    merged.append({"level": len(merged), "runs": 0,
                                   "entries": 0})
                agg = merged[li]
                agg["runs"] += row["runs"]
                agg["entries"] += row["entries"]
                if "slices" in row:
                    agg["slices"] = agg.get("slices", 0) + row["slices"]
                if "budget" in row:
                    # Per-shard budget; the cross-shard ceiling is the sum.
                    agg["budget"] = agg.get("budget", 0) + row["budget"]
        return merged

    @property
    def block_cache(self) -> Optional["BlockCache"]:
        return self._block_cache

    @property
    def filter_spec(self) -> Optional[FilterSpec]:
        """The registry spec the engine was built with (``None`` for a
        bare callable factory or an unfiltered engine)."""
        return self._filter_spec

    @property
    def autotuner(self) -> Optional["AutoTuner"]:
        return self._autotuner

    @property
    def planner(self) -> Optional["BatchPlanner"]:
        """The attached batch query planner, or ``None``."""
        return self._planner

    @property
    def ttl_now(self) -> int:
        """Current logical TTL clock (see :meth:`advance_clock`)."""
        return self._ttl_now

    @property
    def key_codec(self) -> Optional[StringKeyCodec]:
        """The string-key codec the engine was built with, or ``None``."""
        return self._key_codec

    @property
    def strings(self) -> "StringView":
        """String-keyed facade over this engine (requires a key codec)."""
        from repro.engine.strings import StringView

        return StringView(self, self._key_codec)

    @property
    def universe(self) -> int:
        return self._router.universe

    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def directory(self) -> Optional[Path]:
        return self._directory

    @property
    def stats(self) -> IoStats:
        """Aggregated I/O ledger across all shards."""
        return IoStats.aggregate(store.stats for store in self._shards)

    @property
    def per_shard_stats(self) -> List[IoStats]:
        return [store.stats for store in self._shards]

    @property
    def run_count(self) -> int:
        return sum(store.run_count for store in self._shards)

    @property
    def filter_bits_total(self) -> int:
        return sum(store.filter_bits_total for store in self._shards)

    def __len__(self) -> int:
        """Number of live keys across all shards (scans; for tests/demos)."""
        return sum(len(store) for store in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._directory) if self._directory else "memory"
        return (
            f"ShardedEngine(shards={self.num_shards}, u={self.universe}, "
            f"runs={self.run_count}, at={where!r})"
        )
