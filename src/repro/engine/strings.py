"""String-keyed facade over the integer engine and its serving tiers.

:class:`StringView` wraps any target exposing the integer surface —
``put``/``delete``/``get``/``range_empty``/``range_scan``/
``batch_range_empty`` — i.e. a :class:`~repro.engine.ShardedEngine` or a
:class:`~repro.engine.service.RangeQueryService`, and translates string
keys through the engine's :class:`~repro.core.strings.StringKeyCodec`.

The translation is *exact*, not conservative: stored keys are capped at
the codec width, and under that cap every string range and prefix has an
exact integer image (see the codec's docstring). The view adds no state
of its own — the WAL, snapshots, batch kernel, planner and snapshot
workers all keep operating on u64 keys, which is precisely why
string-keyed engines inherit checkpoint/recovery parity for free.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.strings import StringKeyCodec
from repro.errors import InvalidParameterError


class StringView:
    """String-keyed operations over an integer-keyed engine or service.

    Obtain one from :attr:`ShardedEngine.strings` /
    :attr:`RangeQueryService.strings` rather than constructing directly;
    both require the engine to have been built with a ``key_codec``.
    Keys may be ``str`` (UTF-8) or ``bytes``; scans return the canonical
    ``bytes`` form (trailing NULs stripped — the encoding's one
    identification).
    """

    def __init__(self, target: Any, codec: Optional[StringKeyCodec]) -> None:
        if codec is None:
            raise InvalidParameterError(
                "string operations need an engine built with a key_codec"
            )
        self._target = target
        self._codec = codec

    @property
    def codec(self) -> StringKeyCodec:
        return self._codec

    @property
    def target(self) -> Any:
        """The wrapped engine or service."""
        return self._target

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def put(
        self, key: str | bytes, value: Any, *, expires_at: Optional[int] = None
    ) -> None:
        """Insert or overwrite a string key (TTL stamp passes through)."""
        self._target.put(self._codec.encode_key(key), value, expires_at=expires_at)

    def delete(self, key: str | bytes) -> None:
        self._target.delete(self._codec.encode_key(key))

    def get(self, key: str | bytes) -> Optional[Any]:
        return self._target.get(self._codec.encode_key(key))

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------
    def range_empty(self, lo: str | bytes, hi: str | bytes) -> bool:
        """Exact emptiness of the string range ``[lo, hi]``."""
        span = self._codec.encode_range(lo, hi)
        if span is None:
            return True  # no storable key can lie in the range
        return self._target.range_empty(*span)

    def prefix_empty(self, prefix: str | bytes) -> bool:
        """Exact "no stored key starts with ``prefix``" probe."""
        span = self._codec.encode_prefix(prefix)
        if span is None:
            return True
        return self._target.range_empty(*span)

    def range_scan(self, lo: str | bytes, hi: str | bytes) -> List[Tuple[bytes, Any]]:
        """All live pairs in ``[lo, hi]``, keys decoded to canonical bytes."""
        span = self._codec.encode_range(lo, hi)
        if span is None:
            return []
        decode = self._codec.decode_key
        return [(decode(k), v) for k, v in self._target.range_scan(*span)]

    def prefix_scan(self, prefix: str | bytes) -> List[Tuple[bytes, Any]]:
        """All live pairs whose key starts with ``prefix``."""
        span = self._codec.encode_prefix(prefix)
        if span is None:
            return []
        decode = self._codec.decode_key
        return [(decode(k), v) for k, v in self._target.range_scan(*span)]

    def batch_range_empty(
        self,
        los: Sequence[str | bytes],
        his: Sequence[str | bytes],
    ) -> np.ndarray:
        """Vectorised :meth:`range_empty` over parallel endpoint lists.

        Ranges that collapse under the width cap are trivially empty and
        never reach the engine; the rest run through the target's batch
        path (filters, planner, snapshot workers — whatever is wired).
        """
        if len(los) != len(his):
            raise InvalidParameterError(
                f"batch endpoint lists differ in length: {len(los)} vs {len(his)}"
            )
        empty = np.ones(len(los), dtype=bool)
        q_lo: List[int] = []
        q_hi: List[int] = []
        qid: List[int] = []
        for i, (lo, hi) in enumerate(zip(los, his)):
            span = self._codec.encode_range(lo, hi)
            if span is not None:
                q_lo.append(span[0])
                q_hi.append(span[1])
                qid.append(i)
        if qid:
            verdicts = self._target.batch_range_empty(q_lo, q_hi)
            empty[np.asarray(qid)] = verdicts
        return empty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringView({self._target!r}, codec={self._codec!r})"
