"""Command-line interface: ``python -m repro <command>``.

Nine commands, mirroring how the library is typically exercised:

* ``dataset`` — generate one of the §6.1 datasets and print its shape
  statistics (size, universe coverage, gap distribution);
* ``fpr`` — build any registered filter on a dataset and measure FPR
  and query time under a chosen workload (one cell of Figures 3–5);
* ``attack`` — run the adaptive adversary of §6.2/§6.7 against a filter
  and print the per-round false-positive rate;
* ``table1`` — evaluate the closed-form bounds of Table 1 for given
  parameters;
* ``engine`` — drive a mixed read/write workload against the sharded
  :class:`~repro.engine.ShardedEngine` and report throughput and the
  I/O the filters saved. ``--filter`` mounts any registered backend
  (``grafite``, ``bucketing``, ``surf``, ``rosetta``, ``proteus``,
  ``snarf``, ``rencoder``), ``--autotune`` lets the per-shard tuner
  re-pick the backend from observed traffic, and ``--compaction``
  selects the shard compaction policy (``full``/``tiered``/``leveled``);
  the report ends with one ``[engine] ...`` line carrying compaction
  step counts and measured write amplification;
* ``serve`` — the same workload through the concurrent
  :class:`~repro.engine.RangeQueryService`: thread-pool batch fan-out,
  background compaction, the block cache's hit ratio, and (with
  ``--mode process``) per-shard snapshot worker processes answering the
  CPU-bound batches outside the GIL. Ends with one ``[serve] ...``
  summary line (rendered from the service's structured
  ``stats_snapshot()``) carrying the probe throughput and cache hit
  rate in the exact form the benchmarks record. With ``--listen
  HOST:PORT`` the command instead bulk-loads the dataset and opens the
  :mod:`repro.net` front door — framed binary protocol, per-connection
  batching windows, admission control — until SIGINT/SIGTERM triggers
  the graceful drain → checkpoint → close sequence;
* ``loadgen`` — the open-loop load generator of
  :mod:`repro.net.loadgen` against a running ``serve --listen``
  server: simulated clients, Zipfian key popularity, Poisson or bursty
  arrivals, a latency histogram with the p50/p99 ladder, and one
  ``[loadgen] ...`` summary line carrying the error ledger broken down
  by class (shed / reset / timeout / remote). ``--request-timeout``
  puts a per-request deadline on every probe and ``--retries`` enables
  the client's bounded exponential-backoff retry policy;
* ``scenarios`` — run the YCSB-style scenario matrix of
  :mod:`repro.workloads.scenarios`: each ``(scenario, mode)`` pair
  replays a seeded op stream (probes, inserts, deletes, scans, TTL
  ticks, optional adversary) against the chosen serving layer *and* a
  sorted-dict oracle, emitting one ``[scenarios] ...`` line per run
  with the bit-exactness verdict; exits non-zero on any divergence;
* ``scrub`` — verify the checksums of every persisted artifact in an
  engine directory (current + previous-epoch manifests, every
  referenced run blob, the WAL record chain) without mutating
  anything; exits non-zero when corruption is found.

Every command is deterministic given ``--seed`` (``serve`` interleaves
threads, so timings vary but results do not).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.fpr import measure_fpr
from repro.analysis.harness import FILTERS, FilterConfig, build_filter
from repro.analysis.report import (
    format_planner_summary,
    format_table,
    format_write_amp,
)
from repro.analysis.theory import table1
from repro.analysis.timing import time_queries
from repro.workloads.adversary import AdaptiveAdversary
from repro.workloads.datasets import DATASETS, load_dataset
from repro.workloads.queries import correlated_queries, uncorrelated_queries


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=sorted(DATASETS), default="uniform")
    parser.add_argument("--n", type=int, default=20_000, help="number of keys")
    parser.add_argument("--universe-bits", type=int, default=48)
    parser.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grafite (SIGMOD 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("dataset", help="generate and describe a dataset")
    _add_common(p_data)

    p_fpr = sub.add_parser("fpr", help="measure a filter's FPR and query time")
    _add_common(p_fpr)
    p_fpr.add_argument("--filter", choices=sorted(FILTERS), default="Grafite")
    p_fpr.add_argument("--bits-per-key", type=float, default=16.0)
    p_fpr.add_argument("--range-size", type=int, default=32)
    p_fpr.add_argument(
        "--workload", choices=("uncorrelated", "correlated"), default="uncorrelated"
    )
    p_fpr.add_argument("--degree", type=float, default=0.8, help="correlation degree D")
    p_fpr.add_argument("--queries", type=int, default=1000)

    p_attack = sub.add_parser("attack", help="adaptive adversary vs a filter")
    _add_common(p_attack)
    p_attack.add_argument("--filter", choices=sorted(FILTERS), default="Grafite")
    p_attack.add_argument("--bits-per-key", type=float, default=16.0)
    p_attack.add_argument("--range-size", type=int, default=16)
    p_attack.add_argument("--rounds", type=int, default=4)
    p_attack.add_argument("--queries-per-round", type=int, default=400)
    p_attack.add_argument("--leaked-fraction", type=float, default=0.1)

    p_theory = sub.add_parser("table1", help="evaluate the Table 1 bounds")
    p_theory.add_argument("--n", type=int, default=200_000_000)
    p_theory.add_argument("--universe-bits", type=int, default=64)
    p_theory.add_argument("--range-size", type=int, default=2**10)
    p_theory.add_argument("--eps", type=float, default=0.01)

    p_engine = sub.add_parser(
        "engine", help="mixed read/write workload on the sharded engine"
    )
    _add_engine_args(p_engine)

    p_serve = sub.add_parser(
        "serve",
        help="the engine workload through the concurrent RangeQueryService",
    )
    _add_engine_args(p_serve)
    p_serve.add_argument(
        "--threads", type=int, default=4, help="query thread-pool size"
    )
    p_serve.add_argument(
        "--mode", choices=("thread", "process"), default="thread",
        help="batch back end: thread pool only, or per-shard snapshot "
        "worker processes (process mode requires --dir)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes in process mode (default: --threads)",
    )
    p_serve.add_argument(
        "--cache-blocks", type=int, default=4096,
        help="block-cache capacity in SSTable blocks (0 disables)",
    )
    p_serve.add_argument(
        "--miss-latency-us", type=float, default=0.0,
        help="simulated disk latency per cache miss, microseconds",
    )
    p_serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="instead of the canned workload: bulk-load the dataset and "
        "open the repro.net front door until SIGINT/SIGTERM (port 0 picks "
        "a free port; the bound address is printed)",
    )
    p_serve.add_argument(
        "--batch-window-us", type=float, default=300.0,
        help="per-connection batching window for single-range queries, "
        "microseconds (0 disables coalescing)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=512,
        help="flush a batching window early at this many queries",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=4096,
        help="admission control: shed queries beyond this many in flight",
    )
    p_serve.add_argument(
        "--max-compaction-backlog", type=int, default=None,
        help="shed queries while more shards than this await compaction",
    )
    p_serve.add_argument(
        "--max-cache-miss-rate", type=float, default=None,
        help="shed queries while the windowed cache miss rate exceeds this",
    )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a running serve --listen",
    )
    _add_common(p_loadgen)
    p_loadgen.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address printed by `repro serve --listen`",
    )
    p_loadgen.add_argument(
        "--clients", type=int, default=256,
        help="simulated open-loop client streams",
    )
    p_loadgen.add_argument(
        "--connections", type=int, default=8,
        help="pipelined sockets the clients multiplex over",
    )
    p_loadgen.add_argument(
        "--rate", type=float, default=2000.0,
        help="total offered load, queries/second",
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=5000, help="total requests to send"
    )
    p_loadgen.add_argument("--range-size", type=int, default=32)
    p_loadgen.add_argument(
        "--distribution", choices=("zipf", "uniform"), default="zipf",
        help="zipf regenerates the server's dataset locally (same "
        "--dataset/--n/--seed) to aim at hot keys",
    )
    p_loadgen.add_argument(
        "--skew", type=float, default=1.1, help="Zipf exponent"
    )
    p_loadgen.add_argument(
        "--hot", type=int, default=1024, help="hot-key set size for zipf"
    )
    p_loadgen.add_argument(
        "--arrivals", choices=("poisson", "bursty"), default="poisson"
    )
    p_loadgen.add_argument("--burst-factor", type=float, default=8.0)
    p_loadgen.add_argument("--burst-period", type=float, default=0.25)
    p_loadgen.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-request deadline in seconds (DeadlineExceeded past it)",
    )
    p_loadgen.add_argument(
        "--retries", type=int, default=0,
        help="retry transient failures (shed/reset/timeout) up to this "
        "many times with exponential backoff",
    )

    p_scn = sub.add_parser(
        "scenarios",
        help="run the YCSB-style scenario matrix with differential checks",
    )
    p_scn.add_argument(
        "names", nargs="*", default=[], metavar="SCENARIO",
        help="scenario names from the registry (default: all registered)",
    )
    p_scn.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit",
    )
    p_scn.add_argument(
        "--mode", action="append", default=None, metavar="MODE",
        help="serving mode(s) to run each scenario against (repeatable; "
        "default: engine + service; 'all' runs every mode the scenario "
        "supports)",
    )
    p_scn.add_argument("--seed", type=int, default=42)
    p_scn.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply each scenario's n_keys/n_ops (CI uses <1.0)",
    )
    p_scn.add_argument("--threads", type=int, default=4)
    p_scn.add_argument(
        "--json", action="store_true",
        help="print the structured reports as JSON after the summary lines",
    )

    p_scrub = sub.add_parser(
        "scrub",
        help="verify checksums of every persisted artifact in an engine dir",
    )
    p_scrub.add_argument(
        "--dir", required=True, metavar="PATH",
        help="engine directory (the one given to engine --dir / serve --dir)",
    )
    p_scrub.add_argument(
        "--json", action="store_true",
        help="print the raw scrub report as JSON instead of a table",
    )
    return parser


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Workload knobs shared by the ``engine`` and ``serve`` commands."""
    from repro.filters.registry import backend_names
    from repro.lsm.compaction import policy_names

    _add_common(parser)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--filter", type=str.lower, choices=backend_names() + ["none"],
        default="grafite",
        help="per-run filter backend from the registry (case-insensitive; "
        "'none' disables filtering)",
    )
    parser.add_argument(
        "--compaction", type=str.lower, choices=policy_names(), default="full",
        help="per-shard compaction policy: 'full' (seed behaviour, one "
        "bottom run), 'tiered' (size-tiered level merges), or 'leveled' "
        "(non-overlapping key-range slices, partial rewrites)",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="let the per-shard auto-tuner switch filter backends and "
        "bits/key from observed traffic (--filter sets the starting "
        "backend)",
    )
    parser.add_argument(
        "--plan", action=argparse.BooleanOptionalAction, default=True,
        help="run probe batches through the query planner — dedup/merge "
        "rewrite, negative-result cache, cost-model dispatch "
        "(--no-plan executes batches verbatim)",
    )
    parser.add_argument("--bits-per-key", type=float, default=16.0)
    parser.add_argument("--range-size", type=int, default=32)
    parser.add_argument("--memtable-limit", type=int, default=2048)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=2000)
    parser.add_argument(
        "--writes-per-batch", type=int, default=500,
        help="puts/deletes interleaved before each probe batch",
    )
    parser.add_argument(
        "--dir", default=None,
        help="directory for WAL + snapshots; omit for an in-memory engine",
    )


def _universe(args: argparse.Namespace) -> int:
    return 2**args.universe_bits


def cmd_dataset(args: argparse.Namespace) -> int:
    """Generate a dataset and print its shape statistics."""
    keys = load_dataset(args.dataset, args.n, universe=_universe(args), seed=args.seed)
    gaps = np.diff(keys.astype(np.float64))
    rows = [
        ["keys", f"{keys.size:,}"],
        ["universe", f"2^{args.universe_bits}"],
        ["min / max", f"{int(keys[0]):,} / {int(keys[-1]):,}"],
        ["mean gap", f"{gaps.mean():,.1f}" if gaps.size else "-"],
        ["median gap", f"{np.median(gaps):,.1f}" if gaps.size else "-"],
        ["max gap", f"{gaps.max():,.1f}" if gaps.size else "-"],
        ["gap skew (mean/median)", f"{gaps.mean() / max(1.0, np.median(gaps)):,.1f}" if gaps.size else "-"],
    ]
    print(format_table(["statistic", "value"], rows, title=f"dataset {args.dataset!r}"))
    return 0


def cmd_fpr(args: argparse.Namespace) -> int:
    """Build one filter, measure FPR and query time on a workload."""
    universe = _universe(args)
    keys = load_dataset(args.dataset, args.n, universe=universe, seed=args.seed)
    if args.workload == "correlated":
        queries = correlated_queries(
            keys, args.queries, args.range_size, universe,
            correlation_degree=args.degree, seed=args.seed + 1,
        )
    else:
        queries = uncorrelated_queries(
            args.queries, args.range_size, universe, keys=keys, seed=args.seed + 1
        )
    sample = queries[: max(16, len(queries) // 16)]
    cfg = FilterConfig(
        keys=keys, universe=universe, bits_per_key=args.bits_per_key,
        max_range_size=args.range_size, sample_queries=sample, seed=args.seed,
    )
    filt = build_filter(args.filter, cfg)
    fpr = measure_fpr(filt, queries)
    timing = time_queries(filt, queries)
    rows = [
        ["filter", args.filter],
        ["keys", f"{filt.key_count:,}"],
        ["bits/key (actual)", f"{filt.bits_per_key:.2f}"],
        ["workload", f"{args.workload}"
         + (f" (D={args.degree})" if args.workload == "correlated" else "")],
        ["range size", str(args.range_size)],
        ["empty queries", f"{fpr.trials:,}"],
        ["false positives", f"{fpr.false_positives:,}"],
        ["FPR", f"{fpr.fpr:.3e}"],
        ["query time", f"{timing.ns_per_op:,.0f} ns"],
    ]
    print(format_table(["metric", "value"], rows, title="fpr measurement"))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Run the adaptive adversary against a filter; print per-round FPR."""
    universe = _universe(args)
    keys = load_dataset(args.dataset, args.n, universe=universe, seed=args.seed)
    sample = uncorrelated_queries(
        64, args.range_size, universe, keys=keys, seed=args.seed + 2
    )
    cfg = FilterConfig(
        keys=keys, universe=universe, bits_per_key=args.bits_per_key,
        max_range_size=args.range_size, sample_queries=sample, seed=args.seed,
    )
    filt = build_filter(args.filter, cfg)
    adversary = AdaptiveAdversary(
        keys, leaked_fraction=args.leaked_fraction, seed=args.seed + 3
    )
    report = adversary.attack(
        filt, rounds=args.rounds,
        queries_per_round=args.queries_per_round, range_size=args.range_size,
    )
    rows = [
        [f"round {i + 1}", f"{rate:.4f}"]
        for i, rate in enumerate(report.per_round_fpr)
    ]
    rows.append(["amplification", f"{report.amplification:.2f}x"])
    print(
        format_table(
            ["round", "FPR (backend reads / probe)"], rows,
            title=f"adaptive attack on {args.filter}",
        )
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Evaluate and print the closed-form bounds of Table 1."""
    rows = table1(args.n, 2**args.universe_bits, args.range_size, args.eps)
    printable = [
        [
            r.name,
            r.category,
            r.space_formula,
            f"{r.space_bits / args.n:.2f}" if r.space_bits is not None else "-",
            r.query_time,
        ]
        for r in rows
    ]
    print(
        format_table(
            ["structure", "class", "space formula", "bits/key", "query time"],
            printable,
            title=f"Table 1 at n={args.n:,}, L={args.range_size}, eps={args.eps}",
        )
    )
    return 0


def _engine_filter_spec(args: argparse.Namespace):
    """The registry spec behind ``--filter`` (None disables filtering)."""
    from repro.filters.registry import FilterSpec

    if args.filter == "none":
        return None
    return FilterSpec(
        backend=args.filter,
        bits_per_key=args.bits_per_key,
        max_range_size=args.range_size,
        seed=args.seed,
    )


def _drive_workload(target, args: argparse.Namespace, keys: np.ndarray) -> dict:
    """Bulk-load then run write/probe batches through ``target``.

    ``target`` is anything with the engine's mutation/probe surface —
    the :class:`ShardedEngine` itself or a :class:`RangeQueryService`
    wrapping one — so both CLI commands measure the identical workload.
    """
    universe = _universe(args)
    rng = np.random.default_rng(args.seed + 1)

    t0 = time.perf_counter()
    arrival = keys[rng.permutation(keys.size)]
    for key in arrival:
        target.put(int(key), b"v")
    target.flush_all()
    load_seconds = time.perf_counter() - t0

    # A persistent target checkpoints after the bulk load, as an operator
    # would before opening the doors — in process mode this is also what
    # hands the loaded run sets to the snapshot workers.
    if getattr(target, "engine", target).directory is not None:
        target.checkpoint()

    write_seconds = 0.0
    probe_seconds = 0.0
    probes = empties = 0
    for batch in range(args.batches):
        t0 = time.perf_counter()
        mutations = rng.integers(0, universe, args.writes_per_batch, dtype=np.uint64)
        for i, key in enumerate(mutations):
            if i % 8 == 7:
                target.delete(int(key))
            else:
                target.put(int(key), b"w")
        write_seconds += time.perf_counter() - t0
        queries = uncorrelated_queries(
            args.batch_size, args.range_size, universe,
            keys=keys, seed=args.seed + 10 + batch,
        )
        los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
        his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
        t0 = time.perf_counter()
        result = target.batch_range_empty(los, his)
        probe_seconds += time.perf_counter() - t0
        probes += result.size
        empties += int(result.sum())
    return {
        "load_seconds": load_seconds,
        "write_seconds": write_seconds,
        "probe_seconds": probe_seconds,
        "probes": probes,
        "empties": empties,
    }


def _workload_rows(engine, args: argparse.Namespace, keys, m: dict) -> list:
    """Table rows shared by the ``engine`` and ``serve`` reports."""
    stats = engine.stats
    total_writes = keys.size + args.batches * args.writes_per_batch
    tuner = engine.autotuner
    filter_cell = args.filter
    if tuner is not None:
        counts = ", ".join(
            f"{name} x{n}" for name, n in sorted(tuner.backend_counts().items())
        )
        filter_cell = (
            f"{args.filter} + autotune ({counts}; "
            f"{len(tuner.decisions)} decisions)"
        )
    planner = engine.planner
    return [
        ["universe / shards", f"2^{args.universe_bits} / {args.shards}"],
        ["filter", filter_cell],
        ["planner", format_planner_summary(
            planner.stats_snapshot() if planner is not None else None)],
        ["live keys", f"{len(engine):,}"],
        ["runs (filter bits)", f"{engine.run_count} ({engine.filter_bits_total:,})"],
        ["bulk load", f"{keys.size:,} puts, "
         + f"{keys.size / m['load_seconds']:,.0f} op/s"],
        ["mixed writes", f"{total_writes - keys.size:,} ops, "
         + (f"{(total_writes - keys.size) / m['write_seconds']:,.0f} op/s"
            if m["write_seconds"] else "-")],
        ["batch probes", f"{m['probes']:,} ({args.batches} x {args.batch_size}), "
         + (f"{m['probes'] / m['probe_seconds']:,.0f} q/s"
            if m["probe_seconds"] else "-")],
        ["empty ranges", f"{m['empties']:,} / {m['probes']:,}"],
        ["reads performed / avoided", f"{stats.reads_performed:,} / {stats.reads_avoided:,}"],
        ["wasted reads (filter FPs)", f"{stats.wasted_reads:,}"],
        ["flushes / compaction steps",
         f"{stats.flushes} / {stats.compactions} ({args.compaction})"],
        ["write amplification",
         format_write_amp(stats.entries_flushed, stats.entries_compacted,
                          stats.bytes_compacted)],
        ["durability", str(engine.directory) if engine.directory else "in-memory"],
    ]


def _build_engine(args: argparse.Namespace):
    """Construct the ShardedEngine both workload commands share."""
    from repro.engine import AutoTuner, BatchPlanner, ShardedEngine

    engine = ShardedEngine(
        _universe(args),
        num_shards=args.shards,
        memtable_limit=args.memtable_limit,
        compaction_fanout=args.fanout,
        filter_spec=_engine_filter_spec(args),
        directory=args.dir,
        compaction=args.compaction,
    )
    if args.autotune:
        engine.attach_autotuner(AutoTuner())
    if args.plan:
        engine.attach_planner(BatchPlanner())
    return engine


def cmd_engine(args: argparse.Namespace) -> int:
    """Drive a mixed read/write workload against a sharded engine."""
    universe = _universe(args)
    keys = load_dataset(args.dataset, args.n, universe=universe, seed=args.seed)
    engine = _build_engine(args)
    metrics = _drive_workload(engine, args, keys)
    rows = _workload_rows(engine, args, keys, metrics)
    print(format_table(["metric", "value"], rows, title="sharded engine workload"))
    # Machine-grepable summary mirroring what bench_compaction.py records,
    # so manual runs and the write-amp gate read the same quantities.
    stats = engine.stats
    probe_qps = (
        metrics["probes"] / metrics["probe_seconds"]
        if metrics["probe_seconds"] else 0.0
    )
    print(
        f"[engine] compaction={args.compaction} probe_qps={probe_qps:,.0f} "
        f"compaction_steps={stats.compactions} "
        f"entries_compacted={stats.entries_compacted} "
        f"bytes_compacted={stats.bytes_compacted} "
        f"write_amp={stats.write_amplification:.2f}"
    )
    if engine.directory is not None:
        engine.close()
    return 0


def _parse_hostport(spec: str) -> tuple:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.lstrip("-").isdigit():
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _serve_summary_line(
    snapshot: dict, *, probe_qps: float, compaction: str
) -> str:
    """The machine-grepable ``[serve]`` line, rendered from the
    service's structured :meth:`RangeQueryService.stats_snapshot` so the
    CLI, the protocol ``stats`` op, and the benchmarks agree on every
    number."""
    cache = snapshot["cache"] or {}
    io = snapshot["io"]
    negcache = (snapshot.get("planner") or {}).get("negative_cache") or {}
    return (
        f"[serve] mode={snapshot['mode']} threads={snapshot['threads']} "
        f"workers={snapshot['workers']} probe_qps={probe_qps:,.0f} "
        f"cache_hit_rate={cache.get('hit_ratio', 0.0):.3f} "
        f"negcache_hit_rate={negcache.get('hit_rate', 0.0):.3f} "
        f"worker_queries={snapshot['queries']['worker']} "
        f"local_queries={snapshot['queries']['local']} "
        f"compaction={compaction} "
        f"compaction_steps={snapshot['compaction']['total_steps']} "
        f"entries_compacted={io['entries_compacted']} "
        f"write_amp={io['write_amplification']:.2f}"
    )


def _serve_listen(args: argparse.Namespace) -> int:
    """``serve --listen``: bulk-load, then run the network front door.

    SIGINT/SIGTERM triggers the graceful sequence — stop accepting,
    flush every batching window, drain in-flight work and compactions,
    checkpoint (persistent engines), close — instead of a
    KeyboardInterrupt traceback.
    """
    import asyncio
    import signal

    from repro.engine import RangeQueryService
    from repro.net import NetServer, ServerConfig

    host, port = _parse_hostport(args.listen)
    universe = _universe(args)
    keys = load_dataset(args.dataset, args.n, universe=universe, seed=args.seed)
    engine = _build_engine(args)
    rng = np.random.default_rng(args.seed + 1)
    for key in keys[rng.permutation(keys.size)]:
        engine.put(int(key), b"v")
    engine.flush_all()
    if engine.directory is not None:
        engine.checkpoint()
    service = RangeQueryService(
        engine,
        num_threads=args.threads,
        cache_blocks=args.cache_blocks,
        miss_latency=args.miss_latency_us * 1e-6,
        mode=args.mode,
        num_workers=args.workers,
    )
    config = ServerConfig(
        batch_window=args.batch_window_us * 1e-6,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        max_compaction_backlog=args.max_compaction_backlog,
        max_cache_miss_rate=args.max_cache_miss_rate,
    )

    async def main() -> dict:
        server = NetServer(service, host=host, port=port, config=config)
        await server.start()
        bound_host, bound_port = server.address
        print(
            f"[serve] listening on {bound_host}:{bound_port} "
            f"(keys={keys.size:,}, window={args.batch_window_us:.0f}us, "
            f"max_inflight={args.max_inflight})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("[serve] signal received: draining", flush=True)
        await server.stop()
        return server.stats()

    server_stats = asyncio.run(main())
    service.wait_for_compactions(timeout=30.0)
    snapshot = service.stats_snapshot()
    service.close(checkpoint=engine.directory is not None)
    if engine.directory is not None:
        engine.close(checkpoint=False)
    print(_serve_summary_line(snapshot, probe_qps=0.0,
                              compaction=args.compaction))
    print(
        f"[serve] shutdown clean: connections={server_stats['connections_total']} "
        f"queries={server_stats['queries_answered']} "
        f"shed={server_stats['shed_inflight'] + server_stats['shed_overload'] + server_stats['shed_shutdown']} "
        f"protocol_errors={server_stats['protocol_errors']}"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The same workload, served concurrently by a RangeQueryService."""
    from repro.engine import RangeQueryService

    if args.listen is not None:
        if args.mode == "process" and args.dir is None:
            print(
                "serve: --mode process needs --dir (snapshot workers open "
                "the shards from the engine's checkpoint directory)",
                file=sys.stderr,
            )
            return 2
        return _serve_listen(args)
    if args.mode == "process" and args.dir is None:
        print(
            "serve: --mode process needs --dir (snapshot workers open the "
            "shards from the engine's checkpoint directory)",
            file=sys.stderr,
        )
        return 2
    universe = _universe(args)
    keys = load_dataset(args.dataset, args.n, universe=universe, seed=args.seed)
    engine = _build_engine(args)
    service = RangeQueryService(
        engine,
        num_threads=args.threads,
        cache_blocks=args.cache_blocks,
        miss_latency=args.miss_latency_us * 1e-6,
        mode=args.mode,
        num_workers=args.workers,
    )
    try:
        metrics = _drive_workload(service, args, keys)
        service.wait_for_compactions(timeout=30.0)
        stats = engine.stats
        rows = _workload_rows(engine, args, keys, metrics)
        rows.insert(1, ["mode / threads / workers",
                        f"{service.mode} / {args.threads} / {service.num_workers}"])
        rows.append(
            ["background compactions", f"{service.background_compactions}"]
        )
        if service.mode == "process":
            rows.append(
                ["worker vs local queries",
                 f"{service.worker_queries:,} / {service.local_queries:,}"]
            )
        if service.cache is not None:
            rows.append(
                ["block cache", f"{stats.cache_hits:,} hits / "
                 f"{stats.cache_misses:,} misses "
                 f"({stats.cache_hit_ratio:.0%} hit ratio, "
                 f"{len(service.cache):,} resident)"]
            )
        print(
            format_table(
                ["metric", "value"], rows, title="concurrent serving workload"
            )
        )
        # One machine-grepable summary line mirroring exactly what the
        # benchmarks measure (probe q/s over the batch wall clock and the
        # cache hit rate), so bench runs and manual runs agree.
        probe_qps = (
            metrics["probes"] / metrics["probe_seconds"]
            if metrics["probe_seconds"]
            else 0.0
        )
        print(
            _serve_summary_line(
                service.stats_snapshot(),
                probe_qps=probe_qps,
                compaction=args.compaction,
            )
        )
    finally:
        service.close()
        if engine.directory is not None:
            engine.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load generation against a running ``serve --listen``."""
    from repro.analysis.report import format_error_ledger, format_latency_histogram
    from repro.net import LoadConfig, RetryPolicy, run_loadgen

    host, port = _parse_hostport(args.connect)
    universe = _universe(args)
    keys = None
    if args.distribution == "zipf":
        # The generator aims at hot keys, so it regenerates the server's
        # dataset locally — same --dataset/--n/--seed on both sides.
        keys = load_dataset(
            args.dataset, args.n, universe=universe, seed=args.seed
        )
    cfg = LoadConfig(
        clients=args.clients,
        connections=args.connections,
        rate=args.rate,
        n_requests=args.requests,
        range_size=args.range_size,
        distribution=args.distribution,
        skew=args.skew,
        n_hot=args.hot,
        arrivals=args.arrivals,
        burst_factor=args.burst_factor,
        burst_period=args.burst_period,
        seed=args.seed,
        request_timeout=args.request_timeout,
        retry=(
            RetryPolicy(max_attempts=args.retries + 1, seed=args.seed)
            if args.retries > 0 else None
        ),
    )
    report = run_loadgen(host, port, cfg, universe=universe, keys=keys)
    rows = [
        ["target", f"{host}:{port}"],
        ["clients / connections", f"{cfg.clients} / {cfg.connections}"],
        ["distribution", f"{cfg.distribution}"
         + (f" (skew={cfg.skew}, hot={cfg.n_hot})"
            if cfg.distribution == "zipf" else "")],
        ["arrivals", f"{cfg.arrivals}"
         + (f" (x{cfg.burst_factor} bursts every {cfg.burst_period}s)"
            if cfg.arrivals == "bursty" else "")],
        ["offered load", f"{report.offered_qps:,.0f} q/s"],
        ["achieved", f"{report.achieved_qps:,.0f} q/s "
         f"({report.completed:,} of {report.sent:,} in {report.elapsed:.2f}s)"],
        ["shed", f"{report.shed:,} ({report.shed_rate:.1%})"],
        ["errors", f"{report.errors:,}"
         + (f" ({', '.join(f'{k}={v}' for k, v in sorted(report.error_classes.items()))})"
            if report.error_classes else "")],
        ["empty ranges", f"{report.empties:,}"],
    ]
    print(format_table(["metric", "value"], rows, title="open-loop load test"))
    print(
        format_latency_histogram(
            report.latencies, title="request latency (open-loop)"
        )
    )
    print(
        f"[loadgen] offered_qps={report.offered_qps:,.0f} "
        f"achieved_qps={report.achieved_qps:,.0f} "
        f"p50_ms={report.p50 * 1e3:.3f} p99_ms={report.p99 * 1e3:.3f} "
        f"shed_rate={report.shed_rate:.4f} "
        + format_error_ledger(report.shed, report.errors, report.error_classes)
    )
    return 1 if report.errors else 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Run the declarative scenario matrix with differential verification.

    Each ``(scenario, mode)`` pair replays the same seeded op stream
    against the chosen serving layer and a sorted-dict oracle; the
    summary line per run carries the bit-exactness verdict. Exits
    non-zero if any run diverged from the oracle.
    """
    import json as json_mod

    from repro.workloads.scenarios import MODES, run_scenario, scenario_names

    if args.list:
        from repro.workloads.scenarios import get_scenario

        rows = []
        for name in scenario_names():
            s = get_scenario(name)
            mix = "/".join(f"{k}:{v:g}" for k, v in sorted(s.mix.items()) if v)
            rows.append([name, s.key_type, mix, ", ".join(s.modes())])
        print(format_table(
            ["scenario", "keys", "mix", "modes"], rows, title="scenarios",
        ))
        return 0

    names = args.names or scenario_names()
    for name in names:
        if name not in scenario_names():
            print(f"unknown scenario {name!r}; registered: {scenario_names()}",
                  file=sys.stderr)
            return 2
    if args.mode is None:
        modes = ["engine", "service"]
    elif "all" in args.mode:
        modes = list(MODES)
    else:
        modes = list(dict.fromkeys(args.mode))
        for mode in modes:
            if mode not in MODES:
                print(f"unknown mode {mode!r}; choose from {MODES}",
                      file=sys.stderr)
                return 2

    reports = []
    failures = 0
    for name in names:
        from repro.workloads.scenarios import get_scenario

        supported = get_scenario(name).modes()
        for mode in modes:
            if mode not in supported:
                continue
            report = run_scenario(
                name, mode=mode, seed=args.seed,
                num_threads=args.threads, scale=args.scale,
            )
            reports.append(report)
            failures += 0 if report.ok else 1
            probe_p99 = report.latency_ms.get("probe", {}).get("p99", 0.0)
            print(
                f"[scenarios] scenario={report.scenario} mode={report.mode} "
                f"seed={report.seed} ops={report.ops} checks={report.checks} "
                f"mismatches={report.mismatches} "
                f"final_match={str(report.final_match).lower()} "
                f"fpr={report.fpr:.4f} probe_p99_ms={probe_p99:.3f} "
                f"ttl_now={report.ttl_now} live_keys={report.live_keys} "
                f"ok={str(report.ok).lower()}"
            )
    if args.json:
        print(json_mod.dumps([r.to_dict() for r in reports], indent=1))
    print(
        f"[scenarios] runs={len(reports)} failures={failures} "
        f"ok={str(failures == 0).lower()}"
    )
    return 0 if failures == 0 else 1


def cmd_scrub(args: argparse.Namespace) -> int:
    """Integrity survey of a persistent engine directory.

    Verifies the manifest checksums (current + retained previous
    epoch), every referenced run blob, and the WAL record chain —
    without opening, repairing, or mutating anything. Exit code 0 means
    every artifact verified; 1 means corruption was found (the report
    names each damaged file; ``ShardedEngine.open`` will roll back to
    the previous epoch if the damage is in the newest one).
    """
    import json as json_mod

    from repro.engine import scrub_snapshot

    report = scrub_snapshot(args.dir)
    if args.json:
        print(json_mod.dumps(report, indent=1))
    else:
        wal = report["wal"]
        wal_cell = (
            "missing" if wal == "missing" else
            f"{wal['records']} records"
            + (", torn tail (tolerated)" if wal["torn_tail"] else ", intact")
        )
        rows = [
            ["directory", report["directory"]],
            ["manifest", report["manifest"]],
            ["previous epoch", report["prev_manifest"]],
            ["runs checked", f"{report['runs_checked']:,}"],
            ["runs corrupt", f"{report['runs_corrupt']:,}"],
            ["wal", wal_cell],
            ["verdict", "intact" if report["ok"] else "CORRUPT"],
        ]
        print(format_table(["artifact", "status"], rows, title="scrub"))
        for issue in report["errors"]:
            print(f"  ! {issue}")
    print(
        f"[scrub] ok={str(report['ok']).lower()} "
        f"runs_checked={report['runs_checked']} "
        f"runs_corrupt={report['runs_corrupt']} "
        f"issues={len(report['errors'])}"
    )
    return 0 if report["ok"] else 1


_COMMANDS = {
    "dataset": cmd_dataset,
    "fpr": cmd_fpr,
    "attack": cmd_attack,
    "table1": cmd_table1,
    "engine": cmd_engine,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "scenarios": cmd_scenarios,
    "scrub": cmd_scrub,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
