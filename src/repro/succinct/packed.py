"""Fixed-width integer arrays packed into 64-bit words.

This is the storage used for the Elias-Fano "low parts" vector ``V`` of the
paper (§3): ``n`` cells of ``l`` bits each, addressable in O(1). Packing
and bulk extraction are vectorised with numpy; single-cell access uses
plain Python integers (two word reads at most, as a C implementation
would).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError

_WORD_BITS = 64


class PackedIntVector:
    """An immutable array of ``n`` unsigned integers of ``width`` bits each.

    Parameters
    ----------
    width:
        Bit width of each cell, ``0 <= width <= 64``. Width 0 is the
        degenerate case where every stored value is 0 and no space is used
        (it occurs in Elias-Fano whenever ``u <= n``).
    values:
        The integers to store; each must fit in ``width`` bits.
    """

    __slots__ = ("_width", "_n", "_words")

    def __init__(self, width: int, values: Sequence[int] | np.ndarray) -> None:
        if not 0 <= width <= 64:
            raise InvalidParameterError(f"cell width must be in [0, 64], got {width}")
        vals = np.asarray(values, dtype=np.uint64)
        self._width = int(width)
        self._n = int(vals.size)
        if width == 0:
            if vals.size and int(vals.max()) != 0:
                raise InvalidParameterError("width-0 vector can only store zeros")
            self._words = np.zeros(0, dtype=np.uint64)
            return
        if vals.size and width < 64 and int(vals.max()) >> width:
            raise InvalidParameterError(f"value does not fit in {width} bits")
        total_bits = self._n * width
        # One spare word so the spill write below never needs a bounds check.
        num_words = (total_bits + _WORD_BITS - 1) // _WORD_BITS + 1
        words = np.zeros(num_words, dtype=np.uint64)
        if self._n:
            bit_pos = np.arange(self._n, dtype=np.int64) * width
            word_idx = bit_pos // _WORD_BITS
            offsets = (bit_pos % _WORD_BITS).astype(np.uint64)
            np.bitwise_or.at(words, word_idx, vals << offsets)
            spills = (offsets.astype(np.int64) + width) > _WORD_BITS
            if spills.any():
                # When a cell straddles a word boundary, its offset is >= 1,
                # so the right shift below is by 1..63 bits — always defined.
                spill_shift = np.uint64(_WORD_BITS) - offsets[spills]
                np.bitwise_or.at(words, word_idx[spills] + 1, vals[spills] >> spill_shift)
        self._words = words

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def width(self) -> int:
        return self._width

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        if self._width == 0:
            return 0
        bit_pos = i * self._width
        word_idx, offset = divmod(bit_pos, _WORD_BITS)
        value = int(self._words[word_idx]) >> offset
        if offset + self._width > _WORD_BITS:
            value |= int(self._words[word_idx + 1]) << (_WORD_BITS - offset)
        return value & ((1 << self._width) - 1)

    def get_many(self, indices: Iterable[int]) -> np.ndarray:
        """Vectorised multi-cell read; returns a ``uint64`` array."""
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        if idx.size == 0:
            return np.zeros(0, dtype=np.uint64)
        idx = idx.astype(np.int64, copy=False)
        if idx.min() < 0 or idx.max() >= self._n:
            raise IndexError("index out of range in get_many")
        if self._width == 0:
            return np.zeros(idx.size, dtype=np.uint64)
        bit_pos = idx * self._width
        word_idx = bit_pos // _WORD_BITS
        offsets = (bit_pos % _WORD_BITS).astype(np.uint64)
        values = self._words[word_idx] >> offsets
        spills = (offsets.astype(np.int64) + self._width) > _WORD_BITS
        if spills.any():
            spill_shift = np.uint64(_WORD_BITS) - offsets[spills]
            values[spills] |= self._words[word_idx[spills] + 1] << spill_shift
        if self._width < 64:
            values &= np.uint64((1 << self._width) - 1)
        return values

    def __iter__(self) -> Iterator[int]:
        if self._n:
            yield from (int(v) for v in self.get_many(np.arange(self._n)))

    @property
    def size_in_bits(self) -> int:
        """Payload size: ``n * width`` bits."""
        return self._n * self._width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedIntVector(n={self._n}, width={self._width})"
