"""Succinct data-structure substrates.

This subpackage contains the compact building blocks the paper's data
structures are made of:

* :class:`~repro.succinct.bitvector.BitVector` — a plain bit array backed
  by ``numpy`` 64-bit words, mutable during construction;
* :class:`~repro.succinct.rank_select.RankSelect` — constant-time
  ``rank``/``select`` support built over a frozen bit vector (the classic
  Jacobson/Clark design with word-level popcount blocks and sampled
  selects);
* :class:`~repro.succinct.packed.PackedIntVector` — a fixed-width integer
  array packed into 64-bit words (the "low parts" array of Elias-Fano);
* :class:`~repro.succinct.elias_fano.EliasFano` — the quasi-succinct
  monotone sequence encoding of Elias and Fano, augmented with the
  ``predecessor`` operation used by Grafite's query algorithm (paper §3).
"""

from repro.succinct.bitvector import BitVector
from repro.succinct.elias_fano import EliasFano
from repro.succinct.packed import PackedIntVector
from repro.succinct.rank_select import RankSelect

__all__ = ["BitVector", "EliasFano", "PackedIntVector", "RankSelect"]
