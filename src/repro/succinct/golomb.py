"""Golomb-Rice coded monotone sequences.

SNARF [36] stores its sparse bit array compressed; following its design we
encode the gaps between consecutive set positions with Rice codes (the
power-of-two special case of Golomb codes, optimal for geometrically
distributed gaps) and keep a sampled directory for ``O(log t + s)`` seeks,
where ``s`` is the sampling stride.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError


class BitWriter:
    """Append-only bit buffer (little-endian within 64-bit words)."""

    __slots__ = ("_words", "_bit_length")

    def __init__(self) -> None:
        self._words: List[int] = [0]
        self._bit_length = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` low bits of ``value``."""
        if count < 0:
            raise InvalidParameterError("bit count must be >= 0")
        if count == 0:
            return
        value &= (1 << count) - 1
        offset = self._bit_length & 63
        self._words[-1] |= (value << offset) & 0xFFFFFFFFFFFFFFFF
        written = 64 - offset
        while written < count:
            self._words.append((value >> written) & 0xFFFFFFFFFFFFFFFF)
            written += 64
        self._bit_length += count
        if self._bit_length & 63 == 0:
            self._words.append(0)

    def write_unary(self, quotient: int) -> None:
        """Append ``quotient`` one-bits followed by a terminating zero."""
        while quotient >= 63:
            self.write_bits((1 << 63) - 1, 63)
            quotient -= 63
        self.write_bits((1 << quotient) - 1, quotient + 1)

    @property
    def bit_length(self) -> int:
        return self._bit_length

    def to_words(self) -> np.ndarray:
        return np.asarray(self._words, dtype=np.uint64)


class BitReader:
    """Sequential reader over a word array produced by :class:`BitWriter`."""

    __slots__ = ("_words", "position")

    def __init__(self, words: np.ndarray, position: int = 0) -> None:
        self._words = words
        self.position = int(position)

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits starting at the current position."""
        if count == 0:
            return 0
        word_idx, offset = divmod(self.position, 64)
        value = int(self._words[word_idx]) >> offset
        have = 64 - offset
        while have < count:
            word_idx += 1
            value |= int(self._words[word_idx]) << have
            have += 64
        self.position += count
        return value & ((1 << count) - 1)

    def read_unary(self) -> int:
        """Read a unary-coded quotient (ones terminated by a zero)."""
        quotient = 0
        while True:
            word_idx, offset = divmod(self.position, 64)
            chunk = int(self._words[word_idx]) >> offset
            remaining = 64 - offset
            trailing_ones = (~chunk & ((1 << remaining) - 1))
            if trailing_ones:
                run = (trailing_ones & -trailing_ones).bit_length() - 1
                self.position += run + 1
                return quotient + run
            quotient += remaining
            self.position += remaining


class GolombSequence:
    """Rice-coded strictly increasing positions with a seek directory.

    Parameters
    ----------
    positions:
        Strictly increasing non-negative integers (set-bit positions).
    universe:
        Exclusive upper bound on positions; fixes the Rice parameter
        ``b = max(0, floor(log2(universe / t)))`` — the optimum for ``t``
        uniformly scattered positions.
    sample_every:
        Directory stride: one ``(value, bit offset)`` checkpoint every
        this many elements bounds sequential decoding during seeks.
    """

    __slots__ = (
        "_t", "_universe", "_b", "_words", "_bits",
        "_dir_values", "_dir_offsets", "_stride",
    )

    def __init__(
        self,
        positions: Sequence[int] | np.ndarray,
        universe: int,
        sample_every: int = 64,
    ) -> None:
        pos = np.asarray(positions, dtype=np.uint64)
        if universe <= 0:
            raise InvalidParameterError("universe must be positive")
        if sample_every < 1:
            raise InvalidParameterError("sample_every must be >= 1")
        if pos.size:
            if int(pos.max()) >= universe:
                raise InvalidParameterError("position outside universe")
            if pos.size > 1 and bool((pos[1:] <= pos[:-1]).any()):
                raise InvalidParameterError("positions must be strictly increasing")
        self._t = int(pos.size)
        self._universe = int(universe)
        self._stride = int(sample_every)
        density = self._universe / max(1, self._t)
        self._b = max(0, int(math.floor(math.log2(density))) if density >= 1 else 0)
        writer = BitWriter()
        dir_values: List[int] = []
        dir_offsets: List[int] = []
        previous = -1
        for index, value in enumerate(int(v) for v in pos):
            if index % self._stride == 0:
                dir_values.append(value)
                dir_offsets.append(writer.bit_length)
            gap = value - previous - 1
            writer.write_unary(gap >> self._b)
            writer.write_bits(gap, self._b)
            previous = value
        self._words = writer.to_words()
        self._bits = writer.bit_length
        self._dir_values = np.asarray(dir_values, dtype=np.uint64)
        self._dir_offsets = np.asarray(dir_offsets, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._t

    @property
    def rice_parameter(self) -> int:
        return self._b

    @property
    def size_in_bits(self) -> int:
        """Code stream plus the directory (counted honestly)."""
        return self._bits + self._dir_values.size * (64 + 64)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode_from(self, block: int):
        """Yield positions starting at directory block ``block``.

        The first element of a block is re-anchored on the directory value
        (its coded gap is decoded and discarded), so blocks are
        independently seekable.
        """
        reader = BitReader(self._words, int(self._dir_offsets[block]))
        index = block * self._stride
        previous = -1
        while index < self._t:
            gap = (reader.read_unary() << self._b) | reader.read_bits(self._b)
            if index == block * self._stride:
                value = int(self._dir_values[block])
            else:
                value = previous + 1 + gap
            yield value
            previous = value
            index += 1

    def successor(self, y: int) -> Optional[int]:
        """Smallest stored position ``>= y``, or ``None``."""
        if self._t == 0 or y >= self._universe:
            return None
        block = max(0, int(np.searchsorted(self._dir_values, y, side="right")) - 1)
        for value in self._decode_from(block):
            if value >= y:
                return value
        return None

    def __iter__(self):
        if self._t:
            yield from self._decode_from(0)

    def any_in_range(self, lo: int, hi: int) -> bool:
        """True iff some stored position lies in ``[lo, hi]``."""
        if lo > hi:
            return False
        found = self.successor(max(0, lo))
        return found is not None and found <= hi
