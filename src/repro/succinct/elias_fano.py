"""The Elias-Fano quasi-succinct encoding of monotone integer sequences.

Given ``n`` non-decreasing integers from a universe ``[u]``, the encoding
(paper §3, [14, 16]) splits each value into ``l = floor(log2(u / n))`` low
bits, stored verbatim in a packed vector ``V``, and the remaining high
bits, stored in negated-unary form in a bit vector ``H`` where the i-th
value contributes a one at position ``high_i + i``. Total space is at most
``n * ceil(log2(u / n)) + 2n`` bits, plus ``o(n)`` for rank/select.

Grafite (§3) relies on three operations implemented here:

* ``access(i)`` — the i-th smallest value, via ``select1``;
* ``predecessor(y)`` — the largest stored value ``<= y``, via two
  ``select0`` calls that isolate the "bucket" of values sharing the high
  part of ``y`` followed by a binary search on at most ``2^l`` low parts
  (this is exactly the ``O(log(L / eps))`` query cost of Theorem 3.4);
* ``successor(y)`` — the smallest stored value ``>= y`` (used by tests and
  by the approximate-counting extension).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector
from repro.succinct.packed import PackedIntVector
from repro.succinct.rank_select import RankSelect


class EliasFano:
    """Elias-Fano encoding with predecessor/successor support.

    Parameters
    ----------
    values:
        Non-decreasing sequence of integers ``>= 0``. Duplicates are
        allowed (the encoding handles them natively).
    universe:
        Exclusive upper bound ``u`` on the values. Defaults to
        ``max(values) + 1``. The low-bit width is derived from ``u``, so
        passing the true universe keeps the encoding within its space
        bound even when the stored values happen to be small.
    """

    __slots__ = ("_n", "_u", "_l", "_low", "_high", "_first", "_last", "_decoded")

    def __init__(self, values: Sequence[int] | np.ndarray, universe: Optional[int] = None) -> None:
        vals = np.asarray(values, dtype=np.uint64)
        n = int(vals.size)
        if n and vals.size > 1 and bool((vals[1:] < vals[:-1]).any()):
            raise InvalidParameterError("Elias-Fano input must be non-decreasing")
        max_value = int(vals[-1]) if n else 0
        if universe is None:
            universe = max_value + 1 if n else 1
        if universe <= 0:
            raise InvalidParameterError(f"universe must be positive, got {universe}")
        if n and max_value >= universe:
            raise InvalidParameterError(
                f"value {max_value} outside declared universe [0, {universe})"
            )
        self._n = n
        self._u = int(universe)
        self._decoded: Optional[np.ndarray] = None
        if n == 0:
            self._l = 0
            self._low = PackedIntVector(0, [])
            self._high = RankSelect(BitVector(1))
            self._first = None
            self._last = None
            return
        # Low-bit width: floor(log2(u / n)) as in the paper (0 when u <= n).
        ratio = self._u // n
        self._l = ratio.bit_length() - 1 if ratio >= 1 else 0
        l_mask = np.uint64((1 << self._l) - 1) if self._l else np.uint64(0)
        lows = (vals & l_mask) if self._l else np.zeros(n, dtype=np.uint64)
        highs = (vals >> np.uint64(self._l)).astype(np.int64)
        self._low = PackedIntVector(self._l, lows)
        max_high = ((self._u - 1) >> self._l) if self._u > 0 else 0
        high_bits = BitVector.from_positions(
            n + max_high + 1, highs + np.arange(n, dtype=np.int64)
        )
        self._high = RankSelect(high_bits)
        self._first = int(vals[0])
        self._last = int(vals[-1])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def universe(self) -> int:
        return self._u

    @property
    def low_bits(self) -> int:
        """The low-part width ``l`` (the binary-search window is ``2^l``)."""
        return self._l

    @property
    def first(self) -> Optional[int]:
        """Smallest stored value, or ``None`` if the sequence is empty."""
        return self._first

    @property
    def last(self) -> Optional[int]:
        """Largest stored value, or ``None`` if the sequence is empty."""
        return self._last

    @property
    def size_in_bits(self) -> int:
        """Payload bits: low parts plus the high bit vector."""
        return self._low.size_in_bits + self._high.bitvector.size_in_bits

    @property
    def index_size_in_bits(self) -> int:
        """Auxiliary (``o(n)``) bits spent on the rank/select index."""
        return self._high.index_size_in_bits

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, i: int) -> int:
        """Return the i-th smallest stored value (0-indexed)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        high = self._high.select1(i) - i
        return (high << self._l) | self._low[i]

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self.access(i)

    # ------------------------------------------------------------------
    # Bucket isolation (shared by predecessor / successor)
    # ------------------------------------------------------------------
    def _bucket_bounds(self, p: int) -> Tuple[int, int]:
        """Return ``[i, j)``, the index range of values whose high part is ``p``.

        Values with high part ``p`` appear as a run of ones between the
        p-th and (p+1)-th zeros of ``H`` (paper §3, step 2 of Figure 2).
        """
        i = self._high.select0(p - 1) - p + 1 if p > 0 else 0
        j = self._high.select0(p) - p
        return i, j

    def bucket_bounds_batch(self, ps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_bucket_bounds` over a column of high parts.

        Each bucket is isolated with (at most) two batched ``select0``
        calls on the high bit vector — the bulk kernel the columnar batch
        pipeline runs instead of per-query zero hunting. Every ``ps[i]``
        must be a valid high part (``<= (u - 1) >> l``).
        """
        ps = np.asarray(ps, dtype=np.int64)
        j = self._high.select0_batch(ps) - ps
        i = np.zeros(ps.size, dtype=np.int64)
        positive = ps > 0
        if positive.any():
            p_pos = ps[positive]
            i[positive] = self._high.select0_batch(p_pos - 1) - p_pos + 1
        return i, j

    # ------------------------------------------------------------------
    # Predecessor / successor
    # ------------------------------------------------------------------
    def predecessor_index(self, y: int) -> Optional[Tuple[int, int]]:
        """Return ``(index, value)`` of the largest stored value ``<= y``.

        Returns ``None`` when every stored value is greater than ``y`` (or
        the sequence is empty). This doubles as a rank primitive: the
        returned index plus one is the number of stored values ``<= y``,
        which the approximate-counting extension of §3 uses directly.
        """
        if self._n == 0 or y < self._first:
            return None
        if y >= self._last:
            return self._n - 1, self._last
        p = y >> self._l
        i, j = self._bucket_bounds(p)
        y_low = y & ((1 << self._l) - 1) if self._l else 0
        if i < j and self._low[i] <= y_low:
            # Rightmost index t in [i, j) with low[t] <= y_low.
            lo, hi = i, j - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if self._low[mid] <= y_low:
                    lo = mid
                else:
                    hi = mid - 1
            return lo, (p << self._l) | self._low[lo]
        # Bucket p has no value <= y; the predecessor is the last value of
        # an earlier bucket. i >= 1 here because y >= first.
        return i - 1, self.access(i - 1)

    def predecessor(self, y: int) -> Optional[int]:
        """Return the largest stored value ``<= y``, or ``None``."""
        found = self.predecessor_index(y)
        return None if found is None else found[1]

    def successor_index(self, y: int) -> Optional[Tuple[int, int]]:
        """Return ``(index, value)`` of the smallest stored value ``>= y``."""
        if self._n == 0 or y > self._last:
            return None
        if y <= self._first:
            return 0, self._first
        p = y >> self._l
        i, j = self._bucket_bounds(p)
        y_low = y & ((1 << self._l) - 1) if self._l else 0
        if i < j and self._low[j - 1] >= y_low:
            # Leftmost index t in [i, j) with low[t] >= y_low.
            lo, hi = i, j - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if self._low[mid] >= y_low:
                    hi = mid
                else:
                    lo = mid + 1
            return lo, (p << self._l) | self._low[lo]
        # No value >= y in bucket p; take the first value of a later
        # bucket. j < n here because y <= last.
        return j, self.access(j)

    def successor(self, y: int) -> Optional[int]:
        """Return the smallest stored value ``>= y``, or ``None``."""
        found = self.successor_index(y)
        return None if found is None else found[1]

    def rank_leq(self, y: int) -> int:
        """Return the number of stored values ``<= y``."""
        found = self.predecessor_index(y)
        return 0 if found is None else found[0] + 1

    def contains_in_range(self, lo: int, hi: int) -> bool:
        """Return ``True`` iff some stored value lies in ``[lo, hi]``.

        This is the emptiness primitive both Grafite and Bucketing reduce
        to: ``predecessor(hi) >= lo``.
        """
        if lo > hi:
            return False
        pred = self.predecessor(hi)
        return pred is not None and pred >= lo

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Decode the whole sequence into a sorted ``uint64`` array (cached).

        A convenience for callers that want the raw sorted codes (tests,
        analysis). The batch query path no longer decodes: it runs
        :meth:`predecessor_index_batch` straight on the succinct
        representation, so this ``64n``-bit materialisation only happens
        on explicit request. The decode itself is vectorised — low parts
        via :meth:`PackedIntVector.get_many`, high parts by unpacking the
        ``H`` words and subtracting the index from each one-position.
        """
        if self._decoded is None:
            if self._n == 0:
                self._decoded = np.zeros(0, dtype=np.uint64)
            else:
                idx = np.arange(self._n, dtype=np.int64)
                lows = self._low.get_many(idx)
                bits = np.unpackbits(
                    self._high.bitvector.words.view(np.uint8), bitorder="little"
                )
                ones = np.flatnonzero(bits)[: self._n].astype(np.int64)
                highs = (ones - idx).astype(np.uint64)
                self._decoded = (highs << np.uint64(self._l)) | lows
        return self._decoded

    def access_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`access`: the values at the given indices.

        High parts come from one batched ``select1`` on ``H``, low parts
        from one packed-vector gather — the succinct representation is
        never decoded.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if int(idx.min()) < 0 or int(idx.max()) >= self._n:
            raise IndexError(f"index out of range [0, {self._n})")
        highs = (self._high.select1_batch(idx) - idx).astype(np.uint64)
        return (highs << np.uint64(self._l)) | self._low.get_many(idx)

    def predecessor_index_batch(
        self, ys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`predecessor_index` over a query column.

        Returns ``(indices, values)``: ``indices[i]`` is the index of the
        largest stored value ``<= ys[i]`` (``-1`` when none exists, in
        which case ``values[i]`` is meaningless). The whole batch runs the
        paper's bucket query — batched ``select0`` bucket isolation plus a
        lock-step binary search over the packed low parts — without
        decoding the sequence or touching per-query Python objects.
        """
        ys = np.asarray(ys, dtype=np.uint64)
        indices = np.full(ys.size, -1, dtype=np.int64)
        values = np.zeros(ys.size, dtype=np.uint64)
        if self._n == 0 or ys.size == 0:
            return indices, values
        first = np.uint64(self._first)
        last = np.uint64(self._last)
        at_or_above_last = ys >= last
        indices[at_or_above_last] = self._n - 1
        values[at_or_above_last] = last
        mid = (ys >= first) & ~at_or_above_last
        if not mid.any():
            return indices, values
        y = ys[mid]
        l64 = np.uint64(self._l)
        p = (y >> l64).astype(np.int64)
        i, j = self.bucket_bounds_batch(p)
        y_low = y & np.uint64((1 << self._l) - 1) if self._l else np.zeros_like(y)
        # Rightmost t in [i, j) with low[t] <= y_low, found by a lock-step
        # binary search: every active query halves its window per round,
        # each round costing one vectorised low-part gather.
        lo = i.copy()
        hi = j.copy()
        while True:
            active = lo < hi
            if not active.any():
                break
            m = (lo + hi) >> 1
            le = self._low.get_many(m[active]) <= y_low[active]
            m_act = m[active]
            lo[active] = np.where(le, m_act + 1, lo[active])
            hi[active] = np.where(le, hi[active], m_act)
        t = lo - 1
        in_bucket = t >= i
        # Bucket p empty of values <= y: the predecessor is the last value
        # of an earlier bucket, at index i - 1 (i >= 1 because y >= first).
        idx_mid = np.where(in_bucket, t, i - 1)
        vals_mid = np.empty(y.size, dtype=np.uint64)
        if in_bucket.any():
            vals_mid[in_bucket] = (
                p[in_bucket].astype(np.uint64) << l64
            ) | self._low.get_many(t[in_bucket])
        if (~in_bucket).any():
            vals_mid[~in_bucket] = self.access_batch(idx_mid[~in_bucket])
        indices[mid] = idx_mid
        values[mid] = vals_mid
        return indices, values

    def rank_leq_batch(self, ys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank_leq`: stored values ``<= ys[i]`` per query."""
        indices, _ = self.predecessor_index_batch(ys)
        return indices + 1

    def contains_in_range_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`contains_in_range` over aligned bound arrays.

        Returns a boolean array: entry ``i`` is ``True`` iff some stored
        value lies in ``[los[i], his[i]]``. Empty ranges (``lo > hi``)
        yield ``False``, mirroring the scalar method.

        Two kernels, picked by a cost model. Runs are immutable and
        probed batch after batch, so once a batch is large enough to
        amortise it the sequence is decoded once (cached: ``64n``
        transient bits) and every present and future probe becomes one
        ``searchsorted`` with a tiny constant. Small batches on
        not-yet-decoded sequences instead ride the succinct bulk kernels
        (:meth:`predecessor_index_batch`) — batched ``select0`` bucket
        isolation plus a lock-step low-part search — which allocate
        nothing proportional to ``n``. Either way there is no per-query
        Python.
        """
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        if los.shape != his.shape:
            raise InvalidParameterError("lo/hi arrays must have the same shape")
        if self._n == 0 or los.size == 0:
            return np.zeros(los.shape, dtype=bool)
        if self._decoded is not None or los.size >= 256 or 4 * los.size >= self._n:
            codes = self.to_array()
            idx = np.searchsorted(codes, his, side="right")
            pred = codes[np.maximum(idx - 1, 0)]  # valid only where idx > 0
            return (idx > 0) & (pred >= los) & (los <= his)
        indices, pred = self.predecessor_index_batch(his)
        return (indices >= 0) & (pred >= los) & (los <= his)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EliasFano(n={self._n}, u={self._u}, l={self._l})"
