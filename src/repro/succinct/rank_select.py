"""Constant-time rank and select over a frozen bit vector.

This is the classic Jacobson/Clark design [8, 20 in the paper] in its
word-RAM practical form: per-word cumulative population counts give
``rank`` in O(1), and ``select`` first locates the word with a search over
the (monotone) cumulative counts, then walks the word byte by byte with a
precomputed select-in-byte table.

In a C implementation the auxiliary arrays are the ``o(n)`` overhead the
paper's space bounds refer to; :attr:`RankSelect.index_size_in_bits`
reports what we actually allocate so benches can account for it honestly.

The batch variants (``select1_batch`` / ``select0_batch`` / ``rank1_batch``)
answer a whole query column at once: the word is located with one
``np.searchsorted`` over the (monotone) cumulative counts and the in-word
offset is resolved with a vectorised byte-table walk — no per-query Python
objects. They are the bulk kernels the columnar batch pipeline
(:mod:`repro.engine.batch` via :class:`~repro.succinct.elias_fano.EliasFano`)
is built on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector, _POPCOUNT8, popcount_words

_WORD_BITS = 64
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


def _build_select_in_byte_table() -> np.ndarray:
    """``table[b, k]`` = offset of the (k+1)-th set bit of byte ``b`` (8 if absent)."""
    table = np.full((256, 8), 8, dtype=np.uint8)
    for byte in range(256):
        k = 0
        for offset in range(8):
            if (byte >> offset) & 1:
                table[byte, k] = offset
                k += 1
    return table


_SELECT8 = _build_select_in_byte_table()

#: Shift amounts extracting the 8 bytes of a word, LSB byte first. Byte
#: extraction via shifts (not a uint8 view) keeps the kernels
#: endianness-independent.
_BYTE_SHIFTS = (np.arange(8, dtype=np.uint64) * np.uint64(8))[np.newaxis, :]


def _select_in_words_batch(words: np.ndarray, ks: np.ndarray) -> np.ndarray:
    """Vectorised in-word select: offset of the (k+1)-th set bit per word.

    ``words`` is a ``uint64`` array, ``ks`` an ``int64`` array of in-word
    ranks with ``ks[i] < popcount(words[i])``. This is the byte-table walk
    of :meth:`RankSelect._select_in_word` unrolled across the batch: byte
    popcounts come from the 256-entry table, the byte holding the target
    bit from a cumulative comparison, the final offset from the
    select-in-byte table.
    """
    word_bytes = ((words[:, np.newaxis] >> _BYTE_SHIFTS) & np.uint64(0xFF)).astype(
        np.intp
    )
    cum = np.cumsum(_POPCOUNT8[word_bytes], axis=1, dtype=np.int64)
    byte_idx = (cum <= ks[:, np.newaxis]).sum(axis=1)
    rows = np.arange(words.size)
    before = np.where(byte_idx > 0, cum[rows, np.maximum(byte_idx, 1) - 1], 0)
    within = ks - before
    return byte_idx * 8 + _SELECT8[word_bytes[rows, byte_idx], within].astype(np.int64)


class RankSelect:
    """Rank/select support structure over a :class:`BitVector`.

    The underlying bit vector must not be mutated after this structure is
    built; the cumulative counts would go stale silently.

    Operations (all 0-indexed):

    * ``rank1(i)`` — number of set bits in positions ``[0, i)``;
    * ``rank0(i)`` — number of clear bits in positions ``[0, i)``;
    * ``select1(k)`` — position of the (k+1)-th set bit;
    * ``select0(k)`` — position of the (k+1)-th clear bit.
    """

    __slots__ = ("_bv", "_cum1", "_cum0", "_num_ones", "_num_zeros")

    def __init__(self, bitvector: BitVector) -> None:
        self._bv = bitvector
        pops = popcount_words(bitvector.words)
        self._cum1 = np.concatenate(([0], np.cumsum(pops, dtype=np.int64)))
        self._cum0 = None  # zeros-before-word counts, built on first batch select0
        ones = int(self._cum1[-1])
        # Padding bits in the last word are zero, so they never inflate the
        # ones count; zeros are defined over the payload length only.
        self._num_ones = ones
        self._num_zeros = len(bitvector) - ones

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bitvector(self) -> BitVector:
        return self._bv

    @property
    def num_ones(self) -> int:
        return self._num_ones

    @property
    def num_zeros(self) -> int:
        return self._num_zeros

    @property
    def index_size_in_bits(self) -> int:
        """Bits allocated by the auxiliary rank index (the ``o(n)`` term)."""
        return self._cum1.size * 64

    # ------------------------------------------------------------------
    # Rank
    # ------------------------------------------------------------------
    def rank1(self, i: int) -> int:
        """Number of set bits in positions ``[0, i)``; ``i`` may equal ``len``."""
        if not 0 <= i <= len(self._bv):
            raise IndexError(f"rank position {i} out of range [0, {len(self._bv)}]")
        word_index, offset = divmod(i, _WORD_BITS)
        total = int(self._cum1[word_index])
        if offset:
            word = int(self._bv.words[word_index]) & ((1 << offset) - 1)
            total += bin(word).count("1")
        return total

    def rank0(self, i: int) -> int:
        """Number of clear bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    # ------------------------------------------------------------------
    # Select
    # ------------------------------------------------------------------
    def _select_in_word(self, word: int, k: int) -> int:
        """Offset of the (k+1)-th set bit inside a 64-bit ``word``."""
        offset = 0
        while True:
            byte = word & 0xFF
            count = int(_POPCOUNT8[byte])
            if k < count:
                return offset + int(_SELECT8[byte, k])
            k -= count
            word >>= 8
            offset += 8

    def select1(self, k: int) -> int:
        """Position of the (k+1)-th set bit (``k`` is 0-indexed)."""
        if not 0 <= k < self._num_ones:
            raise IndexError(f"select1 argument {k} out of range [0, {self._num_ones})")
        word_index = int(np.searchsorted(self._cum1, k, side="right")) - 1
        in_word_rank = k - int(self._cum1[word_index])
        word = int(self._bv.words[word_index])
        return word_index * _WORD_BITS + self._select_in_word(word, in_word_rank)

    def select0(self, k: int) -> int:
        """Position of the (k+1)-th clear bit (``k`` is 0-indexed)."""
        if not 0 <= k < self._num_zeros:
            raise IndexError(f"select0 argument {k} out of range [0, {self._num_zeros})")
        # Zeros before word w: 64*w - cum1[w]. Monotone in w, so binary search.
        lo, hi = 0, self._cum1.size - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            zeros_before = mid * _WORD_BITS - int(self._cum1[mid])
            if zeros_before <= k:
                lo = mid
            else:
                hi = mid
        word_index = lo
        in_word_rank = k - (word_index * _WORD_BITS - int(self._cum1[word_index]))
        word = (~int(self._bv.words[word_index])) & 0xFFFFFFFFFFFFFFFF
        return word_index * _WORD_BITS + self._select_in_word(word, in_word_rank)

    # ------------------------------------------------------------------
    # Batch kernels (the columnar hot path)
    # ------------------------------------------------------------------
    def rank1_batch(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank1` over a position column (``int64`` out)."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) > len(self._bv):
            raise IndexError(f"rank position out of range [0, {len(self._bv)}]")
        word_idx = pos // _WORD_BITS
        offsets = (pos % _WORD_BITS).astype(np.uint64)
        totals = self._cum1[word_idx].copy()
        partial = offsets > 0
        if partial.any():
            # Mask off the bits at and above the offset, popcount the rest.
            masks = (np.uint64(1) << offsets[partial]) - np.uint64(1)
            # Gather through a clipped index: positions with pos == len may
            # address one word past the payload words.
            words = self._bv.words[np.minimum(word_idx[partial], self._bv.words.size - 1)]
            totals[partial] += popcount_words(words & masks).astype(np.int64)
        return totals

    def select1_batch(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`select1`: positions of the (k+1)-th set bits.

        One ``searchsorted`` over the cumulative counts locates every
        word, one byte-table pass resolves the in-word offsets; the whole
        batch costs O(B log W) with no per-query Python.
        """
        ks = np.asarray(ks, dtype=np.int64)
        if ks.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(ks.min()) < 0 or int(ks.max()) >= self._num_ones:
            raise IndexError(f"select1 argument out of range [0, {self._num_ones})")
        word_idx = np.searchsorted(self._cum1, ks, side="right") - 1
        in_rank = ks - self._cum1[word_idx]
        words = self._bv.words[word_idx]
        return word_idx * _WORD_BITS + _select_in_words_batch(words, in_rank)

    def _zeros_cum(self) -> np.ndarray:
        """Zeros before each word boundary (lazy companion of ``_cum1``)."""
        if self._cum0 is None:
            self._cum0 = (
                np.arange(self._cum1.size, dtype=np.int64) * _WORD_BITS - self._cum1
            )
        return self._cum0

    def select0_batch(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`select0`: positions of the (k+1)-th clear bits."""
        ks = np.asarray(ks, dtype=np.int64)
        if ks.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(ks.min()) < 0 or int(ks.max()) >= self._num_zeros:
            raise IndexError(f"select0 argument out of range [0, {self._num_zeros})")
        zeros_cum = self._zeros_cum()
        word_idx = np.searchsorted(zeros_cum, ks, side="right") - 1
        in_rank = ks - zeros_cum[word_idx]
        words = ~self._bv.words[word_idx]
        return word_idx * _WORD_BITS + _select_in_words_batch(words, in_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankSelect(len={len(self._bv)}, ones={self._num_ones})"
