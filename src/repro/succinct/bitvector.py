"""A plain bit vector backed by numpy 64-bit words.

The bit vector is the lowest-level substrate in this library: Elias-Fano
high parts (Grafite §3), the Bucketing occupancy vector (§4), Bloom filter
slots, the LOUDS-Sparse encoding of the Fast Succinct Trie (SuRF, Proteus)
and the SNARF / REncoder bit arrays are all stored in instances of
:class:`BitVector`.

Bits are addressed ``0 .. len-1``; bit ``i`` lives in word ``i // 64`` at
in-word offset ``i % 64`` (little-endian within the word). The structure is
mutable so constructions can fill it in place; rank/select support is added
by freezing it into a :class:`~repro.succinct.rank_select.RankSelect`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import InvalidParameterError

_WORD_BITS = 64

# Per-byte popcount table; numpy < 2.0 has no bitwise_count ufunc, so we
# popcount through a uint8 view and a 256-entry lookup. The table also
# backs the byte-walking select kernels in rank_select regardless of the
# numpy version.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)

#: True when numpy provides the hardware-popcount ufunc (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_words_table(words: np.ndarray) -> np.ndarray:
    """Table-walk fallback: popcount through a uint8 view and a lookup."""
    as_bytes = words.view(np.uint8).reshape(-1, 8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.uint64)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Return the per-word population counts of a ``uint64`` array.

    Uses ``np.bitwise_count`` (a single hardware-popcount ufunc call) on
    numpy >= 2.0 and falls back to the per-byte table walk otherwise;
    both paths return ``uint64`` counts.
    """
    if words.dtype != np.uint64:
        raise InvalidParameterError("popcount_words expects a uint64 array")
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.uint64)
    return _popcount_words_table(words)


class BitVector:
    """A fixed-length, mutable array of bits.

    Parameters
    ----------
    length:
        Number of addressable bits. May be zero.

    Notes
    -----
    ``size_in_bits`` reports the *payload* size (``length`` bits); the
    numpy word array rounds up to a multiple of 64, which is the same
    padding a C implementation would have.
    """

    __slots__ = ("_length", "_words")

    def __init__(self, length: int) -> None:
        if length < 0:
            raise InvalidParameterError(f"bit vector length must be >= 0, got {length}")
        self._length = int(length)
        self._words = np.zeros((self._length + _WORD_BITS - 1) // _WORD_BITS, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(cls, length: int, positions: Iterable[int]) -> "BitVector":
        """Build a bit vector of ``length`` bits with the given bits set.

        ``positions`` may contain duplicates; they are idempotent.
        """
        bv = cls(length)
        pos = np.asarray(list(positions) if not isinstance(positions, np.ndarray) else positions)
        if pos.size == 0:
            return bv
        pos = pos.astype(np.int64, copy=False)
        if pos.min() < 0 or pos.max() >= length:
            raise InvalidParameterError("bit position out of range")
        words = (pos // _WORD_BITS).astype(np.int64)
        masks = np.left_shift(np.uint64(1), (pos % _WORD_BITS).astype(np.uint64))
        np.bitwise_or.at(bv._words, words, masks)
        return bv

    @classmethod
    def from_bools(cls, bits: Iterable[bool]) -> "BitVector":
        """Build a bit vector from an iterable of booleans."""
        flags = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits, dtype=bool)
        bv = cls(flags.size)
        if flags.any():
            set_positions = np.flatnonzero(flags)
            words = set_positions // _WORD_BITS
            masks = np.left_shift(np.uint64(1), (set_positions % _WORD_BITS).astype(np.uint64))
            np.bitwise_or.at(bv._words, words, masks)
        return bv

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._length:
            raise IndexError(f"bit index {i} out of range [0, {self._length})")

    def __getitem__(self, i: int) -> bool:
        self._check_index(i)
        word = int(self._words[i // _WORD_BITS])
        return bool((word >> (i % _WORD_BITS)) & 1)

    def set(self, i: int, value: bool = True) -> None:
        """Set (or clear) bit ``i``."""
        self._check_index(i)
        mask = np.uint64(1) << np.uint64(i % _WORD_BITS)
        if value:
            self._words[i // _WORD_BITS] |= mask
        else:
            self._words[i // _WORD_BITS] &= ~mask

    def set_many(self, positions: Iterable[int]) -> None:
        """Set all bits at ``positions`` (vectorised; duplicates allowed)."""
        pos = np.asarray(list(positions) if not isinstance(positions, np.ndarray) else positions)
        if pos.size == 0:
            return
        pos = pos.astype(np.int64, copy=False)
        if pos.min() < 0 or pos.max() >= self._length:
            raise InvalidParameterError("bit position out of range")
        words = pos // _WORD_BITS
        masks = np.left_shift(np.uint64(1), (pos % _WORD_BITS).astype(np.uint64))
        np.bitwise_or.at(self._words, words, masks)

    def get_many(self, positions: Iterable[int]) -> np.ndarray:
        """Return a boolean array with the values of the requested bits."""
        pos = np.asarray(list(positions) if not isinstance(positions, np.ndarray) else positions)
        if pos.size == 0:
            return np.zeros(0, dtype=bool)
        pos = pos.astype(np.int64, copy=False)
        if pos.min() < 0 or pos.max() >= self._length:
            raise InvalidParameterError("bit position out of range")
        words = self._words[pos // _WORD_BITS]
        shifts = (pos % _WORD_BITS).astype(np.uint64)
        return ((words >> shifts) & np.uint64(1)).astype(bool)

    def any_in_range(self, lo: int, hi: int) -> bool:
        """Return ``True`` iff some bit in the inclusive range ``[lo, hi]`` is set.

        Used by SNARF-style bit-array probes. Runs over whole words, so the
        cost is ``O((hi - lo) / 64)`` word operations.
        """
        if lo > hi:
            return False
        lo = max(lo, 0)
        hi = min(hi, self._length - 1)
        if lo > hi:
            return False
        first_word, last_word = lo // _WORD_BITS, hi // _WORD_BITS
        lo_off = lo % _WORD_BITS
        hi_off = hi % _WORD_BITS
        if first_word == last_word:
            mask = ((np.uint64(0xFFFFFFFFFFFFFFFF) >> np.uint64(_WORD_BITS - 1 - hi_off))
                    & (np.uint64(0xFFFFFFFFFFFFFFFF) << np.uint64(lo_off)))
            return bool(self._words[first_word] & mask)
        head = self._words[first_word] >> np.uint64(lo_off)
        if head:
            return True
        tail_mask = np.uint64(0xFFFFFFFFFFFFFFFF) >> np.uint64(_WORD_BITS - 1 - hi_off)
        if self._words[last_word] & tail_mask:
            return True
        middle = self._words[first_word + 1:last_word]
        return bool(middle.any())

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Return the number of set bits."""
        return int(popcount_words(self._words).sum())

    def iter_set_positions(self) -> Iterator[int]:
        """Yield the positions of set bits in increasing order."""
        for word_index in np.flatnonzero(self._words):
            word = int(self._words[word_index])
            base = int(word_index) * _WORD_BITS
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    @property
    def words(self) -> np.ndarray:
        """The backing ``uint64`` word array (shared, not a copy)."""
        return self._words

    @property
    def size_in_bits(self) -> int:
        """Payload size in bits (excludes word padding)."""
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(length={self._length}, ones={self.count()})"
