"""repro — a pure-Python reproduction of *Grafite: Taming Adversarial
Queries with Optimal Range Filters* (SIGMOD 2024).

Public API highlights:

* :class:`~repro.core.grafite.Grafite` — the paper's optimal range filter;
* :class:`~repro.core.bucketing.Bucketing` — the simple heuristic filter;
* :class:`~repro.core.strings.StringGrafite` — the §7 string extension;
* :mod:`repro.filters` — every baseline the paper evaluates against
  (SuRF, Rosetta, SNARF, Proteus, REncoder, ...);
* :mod:`repro.workloads` — dataset and query generators of §6.1;
* :mod:`repro.analysis` — FPR / timing / space measurement harness;
* :mod:`repro.lsm` — a mini LSM key-value store with pluggable range
  filters (the paper's motivating application);
* :mod:`repro.engine` — the scale-out layer on top of it: a sharded,
  persistent engine (:class:`~repro.engine.engine.ShardedEngine`) with
  write-ahead logging, crash recovery, vectorised batch queries, a
  concurrent serving layer and per-shard filter auto-tuning
  (:class:`~repro.engine.autotune.AutoTuner`);
* :class:`~repro.filters.registry.FilterSpec` — mount any evaluated
  filter as the engine's per-run backend.

Quick start::

    from repro import Grafite

    keys = [3, 1441, 7312, 10_000_000]
    filt = Grafite(keys, universe=2**32, eps=0.01, max_range_size=64)
    filt.may_contain_range(7300, 7320)   # True (7312 is there)
    filt.may_contain_range(8000, 8063)   # False with prob >= 1 - eps
"""

from repro.core import (
    Bucketing,
    DynamicGrafite,
    Grafite,
    HybridGrafiteBucketing,
    LocalityPreservingHash,
    PairwiseIndependentHash,
    PowerOfTwoLocalityHash,
    StringGrafite,
    WorkloadAwareBucketing,
    eps_from_bits_per_key,
)
from repro.engine import AutoTuner, RangeQueryService, ShardedEngine
from repro.errors import (
    ConfigError,
    CorruptionError,
    DeadlineExceeded,
    InvalidKeyError,
    InvalidParameterError,
    InvalidQueryError,
    NotSupportedError,
    ReproError,
)
from repro.filters import (
    BloomFilter,
    FilterSpec,
    PointProbeFilter,
    PrefixBloomFilter,
    Proteus,
    RangeFilter,
    REncoder,
    Rosetta,
    SnarfFilter,
    SuRF,
    rencoder_se,
    rencoder_ss,
)

__version__ = "1.0.0"

__all__ = [
    "AutoTuner",
    "BloomFilter",
    "Bucketing",
    "ConfigError",
    "CorruptionError",
    "DeadlineExceeded",
    "DynamicGrafite",
    "FilterSpec",
    "Grafite",
    "HybridGrafiteBucketing",
    "InvalidKeyError",
    "InvalidParameterError",
    "InvalidQueryError",
    "LocalityPreservingHash",
    "NotSupportedError",
    "PairwiseIndependentHash",
    "PointProbeFilter",
    "PowerOfTwoLocalityHash",
    "PrefixBloomFilter",
    "Proteus",
    "REncoder",
    "RangeFilter",
    "RangeQueryService",
    "ReproError",
    "Rosetta",
    "ShardedEngine",
    "SnarfFilter",
    "StringGrafite",
    "SuRF",
    "WorkloadAwareBucketing",
    "eps_from_bits_per_key",
    "rencoder_se",
    "rencoder_ss",
    "__version__",
]
