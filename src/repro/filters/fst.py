"""Fast Succinct Trie with LOUDS-Sparse encoding (SuRF's core, paper §2, [40]).

The trie is built over a sorted, prefix-free set of byte strings and
encoded level by level into three parallel per-edge arrays:

* ``labels``  — the edge's byte;
* ``has_child`` — 1 if the edge leads to an internal node, 0 for a leaf;
* ``louds``  — 1 on the first edge of each node (LOUDS delimiter).

Navigation uses rank/select: the child node of internal edge ``e`` is
``rank1(has_child, e + 1)``; the edges of node ``v`` span
``[select1(louds, v), select1(louds, v + 1))``; leaf edge ``e`` owns leaf
id ``rank0(has_child, e)``. This is exactly the LOUDS-Sparse layout of
[40, §2.2], at 10 + o(1) bits per edge, which the paper's Table 1 uses in
SuRF's space bound.

Each leaf represents the *interval* of the full-width keys extending its
(possibly truncated) prefix. The emptiness primitive exposed here —
"first leaf whose interval ends at or after ``a``" — lets SuRF and
Proteus answer range queries with zero false negatives regardless of
truncation.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankSelect


def distinguishing_prefixes(keys: Sequence[bytes]) -> List[bytes]:
    """Truncate each key at its shortest unique prefix (SuRF §2.1).

    ``keys`` must be sorted and duplicate-free byte strings of equal
    length; the result is prefix-free.
    """
    out: List[bytes] = []
    for i, key in enumerate(keys):
        lcp = 0
        if i > 0:
            lcp = max(lcp, _common_prefix_len(key, keys[i - 1]))
        if i + 1 < len(keys):
            lcp = max(lcp, _common_prefix_len(key, keys[i + 1]))
        out.append(key[: min(len(key), lcp + 1)])
    return out


def _common_prefix_len(x: bytes, y: bytes) -> int:
    limit = min(len(x), len(y))
    for i in range(limit):
        if x[i] != y[i]:
            return i
    return limit


class FastSuccinctTrie:
    """LOUDS-Sparse encoded trie over a prefix-free byte-string set.

    Parameters
    ----------
    strings:
        Sorted, prefix-free, non-empty byte strings (no duplicates).
        ``distinguishing_prefixes`` produces a valid input from any sorted
        set of equal-length keys.
    """

    def __init__(self, strings: Sequence[bytes]) -> None:
        self._num_leaves = len(strings)
        labels: List[int] = []
        has_child_flags: List[bool] = []
        louds_flags: List[bool] = []
        leaf_order: List[int] = []  # key index per leaf, in LOUDS edge order
        if strings:
            self._validate(strings)
            queue: deque[Tuple[int, int, int]] = deque([(0, len(strings), 0)])
            while queue:
                lo, hi, depth = queue.popleft()
                first_edge = True
                i = lo
                while i < hi:
                    byte = strings[i][depth]
                    j = i
                    while j < hi and strings[j][depth] == byte:
                        j += 1
                    labels.append(byte)
                    louds_flags.append(first_edge)
                    first_edge = False
                    if j - i == 1 and len(strings[i]) == depth + 1:
                        has_child_flags.append(False)
                        leaf_order.append(i)
                    else:
                        has_child_flags.append(True)
                        queue.append((i, j, depth + 1))
                    i = j
        self._labels = np.asarray(labels, dtype=np.uint8)
        self._has_child = RankSelect(BitVector.from_bools(has_child_flags))
        self._louds = RankSelect(BitVector.from_bools(louds_flags))
        self._leaf_order = np.asarray(leaf_order, dtype=np.int64)
        self._num_edges = len(labels)
        self._num_nodes = self._louds.num_ones

    @staticmethod
    def _validate(strings: Sequence[bytes]) -> None:
        for i, s in enumerate(strings):
            if not s:
                raise InvalidParameterError("empty string not allowed in the trie")
            if i:
                prev = strings[i - 1]
                if s <= prev:
                    raise InvalidParameterError("strings must be sorted and distinct")
                if s[: len(prev)] == prev:
                    raise InvalidParameterError("string set must be prefix-free")

    # ------------------------------------------------------------------
    # LOUDS navigation primitives
    # ------------------------------------------------------------------
    def _edge_range(self, node: int) -> Tuple[int, int]:
        start = self._louds.select1(node)
        if node + 1 < self._num_nodes:
            return start, self._louds.select1(node + 1)
        return start, self._num_edges

    def _child(self, edge: int) -> int:
        return self._has_child.rank1(edge + 1)

    def _leaf_id(self, edge: int) -> int:
        return self._has_child.rank0(edge)

    def _find_edge_geq(self, start: int, end: int, byte: int) -> int:
        """First edge in ``[start, end)`` whose label is ``>= byte``."""
        return start + int(
            np.searchsorted(self._labels[start:end], byte, side="left")
        )

    # ------------------------------------------------------------------
    # Leaf search
    # ------------------------------------------------------------------
    def _leftmost_leaf(self, edge: int, prefix: bytearray) -> Tuple[int, bytes]:
        """Descend first-edges from ``edge`` until a leaf; returns (id, prefix)."""
        while self._has_child.bitvector[edge]:
            prefix.append(int(self._labels[edge]))
            node = self._child(edge)
            edge, _ = self._edge_range(node)
        prefix.append(int(self._labels[edge]))
        return self._leaf_id(edge), bytes(prefix)

    def first_leaf_reaching(self, target: bytes) -> Optional[Tuple[int, bytes]]:
        """First leaf (in order) whose maximal extension is ``>= target``.

        A leaf with prefix ``p`` covers every full-width key extending
        ``p``; its maximal extension is ``p`` padded with 0xFF. The method
        returns ``(leaf_id, stored_prefix)`` for the first leaf not wholly
        below ``target``, or ``None`` when every leaf is below it. This is
        the ``moveToKeyGreaterThan`` primitive of SuRF, made conservative
        so the caller can never produce a false negative.
        """
        if self._num_leaves == 0:
            return None
        stack: List[Tuple[int, int, bytearray]] = []  # (edge, end, prefix so far)
        node = 0
        depth = 0
        prefix = bytearray()
        while True:
            start, end = self._edge_range(node)
            byte = target[depth] if depth < len(target) else 0
            idx = self._find_edge_geq(start, end, byte)
            if idx < end:
                label = int(self._labels[idx])
                if label > byte or depth >= len(target):
                    return self._leftmost_leaf(idx, bytearray(prefix))
                # label == byte: exact match on this byte
                if not self._has_child.bitvector[idx]:
                    # Leaf prefix matches target so far; its 0xFF padding
                    # dominates any remaining target bytes.
                    return self._leaf_id(idx), bytes(prefix + bytes([label]))
                stack.append((idx, end, bytearray(prefix)))
                prefix.append(label)
                node = self._child(idx)
                depth += 1
                continue
            # No candidate under this node: backtrack to the next sibling.
            while stack:
                edge, end, parent_prefix = stack.pop()
                if edge + 1 < end:
                    return self._leftmost_leaf(edge + 1, bytearray(parent_prefix))
            return None

    def contains_prefix_of(self, target: bytes) -> bool:
        """True iff some stored string is a prefix of ``target`` or equal to it."""
        node = 0
        depth = 0
        while depth < len(target):
            start, end = self._edge_range(node)
            idx = self._find_edge_geq(start, end, target[depth])
            if idx >= end or int(self._labels[idx]) != target[depth]:
                return False
            if not self._has_child.bitvector[idx]:
                return True
            node = self._child(idx)
            depth += 1
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return self._num_leaves

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def leaf_key_index(self, leaf_id: int) -> int:
        """Index (into the construction input) of the leaf's string."""
        return int(self._leaf_order[leaf_id])

    @property
    def size_in_bits(self) -> int:
        """The LOUDS-Sparse payload: 8 + 1 + 1 bits per edge, plus indexes."""
        payload = self._num_edges * 10
        index = self._has_child.index_size_in_bits + self._louds.index_size_in_bits
        return payload + index
