"""Rosetta — Robust Space-Time Optimized Range Filter (paper §2, [25]).

One Bloom filter per prefix level: level ``d`` stores every distinct
``d``-bit prefix of the keys. A range query is decomposed into maximal
dyadic intervals; each interval probes the Bloom filter of its level and,
on a positive, recursively "doubts" by decomposing into the two child
intervals of the next level, until the full key length confirms a hit.

Sizing follows [25, §3.1], as summarised in the paper's §5: the last-level
Bloom filter is sized for the target FPR ``eps``, each upper level for a
fixed FPR of ``1/(2 - eps)``, which yields roughly ``1.44 n log2(L/eps)``
bits overall. Given a space budget, we solve that allocation for ``eps``
by bisection. An optional query sample re-weights the upper levels by
observed probe frequency (the paper's "auto-tuned on a sample" setup).

Rosetta is one of the two *robust* filters in the paper's taxonomy: its
FPR does not degrade under correlated workloads, but its query cost is
``O(L log(1/eps))`` worst case — the benchmarks reproduce both facts.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter, optimal_num_hashes


def dyadic_decomposition(lo: int, hi: int) -> List[Tuple[int, int]]:
    """Split ``[lo, hi]`` into maximal aligned dyadic blocks.

    Returns ``(start, log2_size)`` pairs covering the range exactly; this
    is the classic greedy decomposition every prefix-based range filter
    (Rosetta, bloomRF, REncoder) builds on.
    """
    blocks: List[Tuple[int, int]] = []
    position = lo
    while position <= hi:
        max_align = (position & -position).bit_length() - 1 if position else 63
        level = max_align
        while level > 0 and position + (1 << level) - 1 > hi:
            level -= 1
        while position + (1 << level) - 1 > hi:  # pragma: no cover - safety
            level -= 1
        blocks.append((position, level))
        position += 1 << level
    return blocks


class Rosetta(RangeFilter):
    """The Rosetta range filter.

    Parameters
    ----------
    keys / universe:
        Key set and universe (``W = ceil(log2 u)`` prefix levels exist).
    bits_per_key:
        Space budget ``B``; the per-level allocation is solved from it.
    max_range_size:
        Design bound ``L``; the filter materialises the bottom
        ``log2(L) + 1`` levels, which is what the dyadic decomposition of
        any range of size ``<= L`` needs. Larger ranges fall back to
        enumerating top-level prefixes (capped by ``max_probes``).
    sample_queries:
        Optional iterable of ``(lo, hi)`` ranges; upper-level budgets are
        re-weighted by how often the decomposition probes each level.
    """

    name = "Rosetta"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        bits_per_key: float,
        max_range_size: int = 32,
        sample_queries: Optional[Iterable[Tuple[int, int]]] = None,
        max_probes: int = 8192,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        if bits_per_key <= 0:
            raise InvalidParameterError("bits_per_key must be positive")
        if max_range_size < 1:
            raise InvalidParameterError("max_range_size must be >= 1")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        self._W = max(1, (universe - 1).bit_length())
        self._L = int(max_range_size)
        self._max_probes = int(max_probes)
        # Stored prefix lengths: bottom log2(L)+1 levels, at least the leaf.
        depth_span = min(self._W, self._L.bit_length())
        self._levels = list(range(self._W - depth_span + 1, self._W + 1))
        self._blooms: dict[int, BloomFilter] = {}
        if self._n == 0:
            return
        budget = bits_per_key * self._n
        prefix_sets = {
            d: np.unique(arr >> np.uint64(self._W - d)) for d in self._levels
        }
        weights = self._level_weights(sample_queries)
        allocation = self._allocate_bits(prefix_sets, budget, weights)
        for d in self._levels:
            items = prefix_sets[d]
            m = max(64, allocation[d])
            k = optimal_num_hashes(m, items.size)
            self._blooms[d] = BloomFilter(m, num_hashes=k, items=items, seed=seed + d)

    # ------------------------------------------------------------------
    # Budget allocation (Rosetta §3.1 tuning, paper §5 summary)
    # ------------------------------------------------------------------
    def _level_weights(
        self, sample_queries: Optional[Iterable[Tuple[int, int]]]
    ) -> dict[int, float]:
        """Relative probe frequency of each upper level on the sample."""
        weights = {d: 1.0 for d in self._levels}
        if sample_queries is None:
            return weights
        counts = {d: 0 for d in self._levels}
        total = 0
        for lo, hi in sample_queries:
            for start, log_size in dyadic_decomposition(lo, hi):
                d = self._W - log_size
                if d in counts:
                    counts[d] += 1
                    total += 1
        if total == 0:
            return weights
        for d in self._levels[:-1]:
            # Levels probed more often deserve proportionally more bits;
            # never starve a level completely (floor at 0.25).
            weights[d] = max(0.25, counts[d] * len(self._levels) / total)
        return weights

    def _allocate_bits(
        self,
        prefix_sets: dict[int, np.ndarray],
        budget: float,
        weights: dict[int, float],
    ) -> dict[int, int]:
        """Solve the [25, §3.1] allocation for the budget by bisection.

        Last level gets ``1.44 n log2(1/eps)`` bits, each upper level ``d``
        gets ``1.44 n_d log2(2 - eps)`` bits (times its sample weight);
        total space is decreasing in ``eps``, so bisection finds the
        ``eps`` that exactly spends the budget.
        """
        leaf = self._levels[-1]
        upper = self._levels[:-1]

        def total_bits(eps: float) -> float:
            last = 1.44 * prefix_sets[leaf].size * math.log2(1.0 / eps)
            rest = sum(
                1.44 * prefix_sets[d].size * math.log2(2.0 - eps) * weights[d]
                for d in upper
            )
            return last + rest

        lo_eps, hi_eps = 1e-12, 1.0 - 1e-12
        if total_bits(hi_eps) > budget:
            # Budget cannot even cover the near-useless configuration:
            # give every level its proportional share and move on.
            sizes = {d: prefix_sets[d].size for d in self._levels}
            total = sum(sizes.values()) or 1
            return {d: max(64, int(budget * sizes[d] / total)) for d in self._levels}
        for _ in range(80):
            mid = math.sqrt(lo_eps * hi_eps)  # geometric: eps spans decades
            if total_bits(mid) > budget:
                lo_eps = mid
            else:
                hi_eps = mid
        eps = hi_eps
        allocation = {
            d: int(1.44 * prefix_sets[d].size * math.log2(2.0 - eps) * weights[d])
            for d in upper
        }
        # The leaf level receives every remaining bit of the budget.
        allocation[leaf] = max(64, int(budget - sum(allocation.values())))
        return allocation

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def levels(self) -> List[int]:
        """Stored prefix lengths, shallowest first."""
        return list(self._levels)

    @property
    def size_in_bits(self) -> int:
        return sum(b.size_in_bits for b in self._blooms.values())

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _probe_down(self, prefix: int, depth: int) -> bool:
        """Recursive doubting from a positive dyadic probe."""
        bloom = self._blooms.get(depth)
        if bloom is not None and not bloom.may_contain(prefix):
            return False
        if depth == self._W:
            return True
        return self._probe_down(prefix << 1, depth + 1) or self._probe_down(
            (prefix << 1) | 1, depth + 1
        )

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        top_depth = self._levels[0]
        probes = 0
        for start, log_size in dyadic_decomposition(lo, hi):
            depth = self._W - log_size
            if depth < top_depth:
                # Block is coarser than any stored level: enumerate its
                # top-level children (conservative cap on probe count).
                span = 1 << (top_depth - depth)
                base = (start >> (self._W - depth)) << (top_depth - depth)
                if span > self._max_probes - probes:
                    return True
                for child in range(base, base + span):
                    probes += 1
                    if self._probe_down(child, top_depth):
                        return True
            else:
                probes += 1
                if self._probe_down(start >> log_size, depth):
                    return True
        return False
