"""A classic Bloom filter over integer keys.

This is the point-filter substrate of the paper's related work (§2): the
trivial ``O(L)`` baseline probes one Bloom filter per range point, Rosetta
stacks one Bloom filter per prefix level, and Proteus embeds a prefix
Bloom filter. Double hashing (Kirsch-Mitzenmacher) derives the ``k`` probe
positions from two 64-bit hashes produced by a splitmix64-style mixer, so
inserts and probes are branch-free integer arithmetic, vectorised for
batch construction.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.succinct.bitvector import BitVector

_MASK64 = 0xFFFFFFFFFFFFFFFF

# splitmix64 constants (Steele et al.); the mixer is bijective on 64 bits.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """One round of the splitmix64 finaliser (scalar, Python ints)."""
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_M1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_M2) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(xs: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 over a ``uint64`` array (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        x = xs + np.uint64(_SM_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_SM_M1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_SM_M2)
        return x ^ (x >> np.uint64(31))


def optimal_num_hashes(num_bits: int, num_keys: int) -> int:
    """The classic optimum ``k = (m/n) ln 2``, clipped to ``[1, 16]``."""
    if num_keys <= 0:
        return 1
    k = round(num_bits / num_keys * math.log(2))
    return max(1, min(16, k))


def bits_for_fpr(num_keys: int, fpr: float) -> int:
    """Bits needed for a target FPR: ``m = -n ln(fpr) / (ln 2)^2``."""
    if not 0 < fpr < 1:
        raise InvalidParameterError(f"fpr must be in (0, 1), got {fpr}")
    return max(64, math.ceil(-num_keys * math.log(fpr) / (math.log(2) ** 2)))


class BloomFilter:
    """A standard Bloom filter on 64-bit integer items.

    Parameters
    ----------
    num_bits:
        Size ``m`` of the bit array (at least 64).
    num_hashes:
        Number of probe positions ``k``; defaults to the optimum for the
        number of items inserted at construction.
    items:
        Optional batch of integers to insert immediately (vectorised).
    seed:
        Seeds the hash mixers; probes are deterministic given the seed.
    """

    __slots__ = ("_bits", "_m", "_k", "_seed1", "_seed2", "_count")

    def __init__(
        self,
        num_bits: int,
        num_hashes: Optional[int] = None,
        items: Optional[Sequence[int] | np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        if num_bits < 1:
            raise InvalidParameterError(f"num_bits must be >= 1, got {num_bits}")
        self._m = int(num_bits)
        item_array = None
        if items is not None:
            item_array = np.asarray(items, dtype=np.uint64)
        if num_hashes is None:
            num_hashes = optimal_num_hashes(self._m, item_array.size if item_array is not None else 1)
        if num_hashes < 1:
            raise InvalidParameterError(f"num_hashes must be >= 1, got {num_hashes}")
        self._k = int(num_hashes)
        self._seed1 = splitmix64(seed * 2 + 1)
        self._seed2 = splitmix64(seed * 2 + 2)
        self._bits = BitVector(self._m)
        self._count = 0
        if item_array is not None and item_array.size:
            self.add_many(item_array)

    @classmethod
    def from_fpr(
        cls,
        items: Sequence[int] | np.ndarray,
        fpr: float,
        seed: int = 0,
    ) -> "BloomFilter":
        """Size the filter for a target false positive probability."""
        arr = np.asarray(items, dtype=np.uint64)
        m = bits_for_fpr(max(1, arr.size), fpr)
        k = max(1, min(16, round(-math.log(fpr) / math.log(2))))
        return cls(m, num_hashes=k, items=arr, seed=seed)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _hash_pair(self, item: int) -> tuple[int, int]:
        h1 = splitmix64((item ^ self._seed1) & _MASK64)
        h2 = splitmix64((item ^ self._seed2) & _MASK64) | 1  # odd => full cycle
        return h1, h2

    def _positions(self, item: int) -> list[int]:
        h1, h2 = self._hash_pair(int(item))
        return [((h1 + i * h2) & _MASK64) % self._m for i in range(self._k)]

    # ------------------------------------------------------------------
    # Updates and probes
    # ------------------------------------------------------------------
    def add(self, item: int) -> None:
        """Insert one integer item."""
        for pos in self._positions(item):
            self._bits.set(pos)
        self._count += 1

    def add_many(self, items: Sequence[int] | np.ndarray) -> None:
        """Insert a batch of integer items (vectorised)."""
        arr = np.asarray(items, dtype=np.uint64)
        if arr.size == 0:
            return
        with np.errstate(over="ignore"):
            h1 = splitmix64_array(arr ^ np.uint64(self._seed1))
            h2 = splitmix64_array(arr ^ np.uint64(self._seed2)) | np.uint64(1)
            for i in range(self._k):
                positions = ((h1 + np.uint64(i) * h2) % np.uint64(self._m)).astype(np.int64)
                self._bits.set_many(positions)
        self._count += int(arr.size)

    def may_contain(self, item: int) -> bool:
        """Return ``False`` only if ``item`` was surely never inserted."""
        h1, h2 = self._hash_pair(int(item))
        words = self._bits.words
        m = self._m
        for i in range(self._k):
            pos = ((h1 + i * h2) & _MASK64) % m
            if not (int(words[pos >> 6]) >> (pos & 63)) & 1:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        return self._m

    @property
    def num_hashes(self) -> int:
        return self._k

    @property
    def item_count(self) -> int:
        """Number of insertions performed (duplicates counted)."""
        return self._count

    @property
    def size_in_bits(self) -> int:
        return self._m

    def expected_fpr(self) -> float:
        """The textbook estimate ``(1 - e^(-k n / m))^k``."""
        if self._count == 0:
            return 0.0
        return (1.0 - math.exp(-self._k * self._count / self._m)) ** self._k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFilter(m={self._m}, k={self._k}, n={self._count})"
