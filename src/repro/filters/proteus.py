"""Proteus — a self-designing range filter (paper §2, [21]).

Proteus combines two prefix structures:

* a Fast Succinct Trie over all distinct key prefixes of a fixed length
  ``l1`` (unlike SuRF it does not truncate per key);
* a Prefix Bloom Filter over the distinct ``l2``-bit prefixes
  (``l2 > l1``).

A query first checks whether any stored ``l1``-prefix falls in the query's
``l1``-prefix range (exact at that granularity); if so, it probes the
Bloom filter for every ``l2``-prefix slot that both overlaps the query
range and extends a stored ``l1``-prefix, answering "empty" only if every
probe misses.

The pair ``(l1, l2)`` is chosen by an auto-tuner given the keys, a sample
of the query workload, and the space budget. The original paper derives
the choice from the CaRF cost model; we keep the same objective but
estimate the expected FPR of each candidate design directly on the sample
(empirical risk instead of a closed-form model — see DESIGN.md §6). The
paper itself notes Proteus is effectively "auto-tuned on (i.e. overfitted
to) the query workload"; the tuner reproduces exactly that behaviour,
including its degradation when the deployed workload shifts.

Implementation note: the sorted array of ``l1`` prefixes kept alongside
the trie is used for successor search and enumeration; it encodes the
same information as the trie (which answers membership and is what the
space accounting charges), mirroring how the reference implementation
walks its trie with an iterator.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter, optimal_num_hashes
from repro.filters.fst import FastSuccinctTrie


def _distinct_prefixes(arr: np.ndarray, shift: int) -> np.ndarray:
    if shift >= 64:
        return np.zeros(1, dtype=np.uint64) if arr.size else arr
    return np.unique(arr >> np.uint64(shift))


class Proteus(RangeFilter):
    """The Proteus range filter.

    Parameters
    ----------
    keys / universe:
        Key set and universe (``W``-bit keys, ``W`` padded to bytes for
        the trie component).
    bits_per_key:
        Total space budget shared by the trie and the Bloom filter.
    sample_queries:
        Sample of ``(lo, hi)`` ranges used by the auto-tuner. Required
        unless both ``l1`` and ``l2`` are given explicitly.
    l1 / l2:
        Explicit design override. ``l1`` must be a multiple of 8 (the
        trie is byte-oriented; 0 disables the trie), ``l1 < l2 <= W``.
    """

    name = "Proteus"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        bits_per_key: float,
        sample_queries: Optional[Iterable[Tuple[int, int]]] = None,
        l1: Optional[int] = None,
        l2: Optional[int] = None,
        max_probes: int = 2048,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        if bits_per_key <= 0:
            raise InvalidParameterError("bits_per_key must be positive")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        bit_width = max(1, (universe - 1).bit_length())
        self._W = ((bit_width + 7) // 8) * 8
        self._max_probes = int(max_probes)
        self._seed = seed
        budget = bits_per_key * max(1, self._n)
        self._prefix_cache: dict[int, np.ndarray] = {}
        if l1 is None or l2 is None:
            if sample_queries is None:
                raise InvalidParameterError(
                    "Proteus needs sample_queries unless (l1, l2) are fixed"
                )
            l1, l2 = self._tune(arr, list(sample_queries), budget)
        self._validate_design(l1, l2)
        self._l1, self._l2 = int(l1), int(l2)
        self._build(arr, budget)
        self._prefix_cache.clear()  # tuning scratch, not part of the filter

    def _validate_design(self, l1: int, l2: int) -> None:
        if l1 % 8 != 0 or not 0 <= l1 < self._W:
            raise InvalidParameterError(f"l1 must be a multiple of 8 in [0, W), got {l1}")
        if not l1 < l2 <= self._W:
            raise InvalidParameterError(f"l2 must satisfy l1 < l2 <= {self._W}, got {l2}")

    # ------------------------------------------------------------------
    # Auto-tuning
    # ------------------------------------------------------------------
    def _cached_prefixes(self, arr: np.ndarray, length: int) -> np.ndarray:
        """Distinct ``length``-bit prefixes, memoised across tuner candidates."""
        cached = self._prefix_cache.get(length)
        if cached is None:
            cached = _distinct_prefixes(arr, self._W - length)
            self._prefix_cache[length] = cached
        return cached

    def _estimate_design_fpr(
        self,
        arr: np.ndarray,
        queries: List[Tuple[int, int]],
        budget: float,
        l1: int,
        l2: int,
    ) -> Optional[float]:
        """Expected FPR of design (l1, l2) on the query sample, or None
        if the trie alone exceeds the budget."""
        W = self._W
        p1 = self._cached_prefixes(arr, l1) if l1 else None
        p2 = self._cached_prefixes(arr, l2)
        trie_bits = 0.0
        if l1:
            # LOUDS-Sparse cost: ~10 bits per edge; edges bounded by the
            # distinct prefixes at each byte depth.
            edges = sum(
                self._cached_prefixes(arr, 8 * d).size
                for d in range(1, l1 // 8 + 1)
            )
            trie_bits = 10.0 * edges
        bloom_bits = budget - trie_bits
        if bloom_bits < 64:
            return None
        k = optimal_num_hashes(int(bloom_bits), p2.size)
        gamma = (1.0 - math.exp(-k * p2.size / bloom_bits)) ** k
        total = 0.0
        for lo, hi in queries:
            if l1:
                a1, b1 = lo >> (W - l1), hi >> (W - l1)
                idx = int(np.searchsorted(p1, a1, side="left"))
                if idx >= p1.size or int(p1[idx]) > b1:
                    continue  # trie filters this query exactly
            a2, b2 = lo >> (W - l2), hi >> (W - l2)
            lo_idx = int(np.searchsorted(p2, a2, side="left"))
            hi_idx = int(np.searchsorted(p2, b2, side="right"))
            if hi_idx > lo_idx:
                # An empty query whose l2-slot holds a real key prefix is a
                # *guaranteed* false positive — the Bloom filter truthfully
                # answers "present" at slot granularity. This term is what
                # pushes the tuner towards fine prefixes on tight budgets.
                total += 1.0
                continue
            slots = b2 - a2 + 1
            total += min(1.0, min(slots, self._max_probes) * gamma)
        return total / max(1, len(queries))

    def _tune(
        self, arr: np.ndarray, queries: List[Tuple[int, int]], budget: float
    ) -> Tuple[int, int]:
        """Grid-search (l1, l2) minimising the sampled FPR estimate."""
        W = self._W
        best: Tuple[float, int, int] = (math.inf, 0, W)
        l1_grid = [l for l in range(0, W, 8)]
        for l1 in l1_grid:
            l2_candidates = sorted(
                set(range(l1 + 4, W + 1, 4)) | {W, min(W, l1 + 8)}
            )
            for l2 in l2_candidates:
                if not l1 < l2 <= W:
                    continue
                fpr = self._estimate_design_fpr(arr, queries, budget, l1, l2)
                if fpr is not None and fpr < best[0]:
                    best = (fpr, l1, l2)
        if math.isinf(best[0]):
            return 0, W  # budget too small for any trie: pure prefix Bloom
        return best[1], best[2]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, arr: np.ndarray, budget: float) -> None:
        W = self._W
        if self._n == 0:
            self._prefixes1 = np.zeros(0, dtype=np.uint64)
            self._trie = FastSuccinctTrie([])
            self._bloom = BloomFilter(64, num_hashes=1, seed=self._seed)
            return
        if self._l1:
            self._prefixes1 = _distinct_prefixes(arr, W - self._l1)
            width_bytes = self._l1 // 8
            strings = [int(p).to_bytes(width_bytes, "big") for p in self._prefixes1]
            self._trie = FastSuccinctTrie(strings)
            trie_bits = self._trie.size_in_bits
        else:
            self._prefixes1 = np.zeros(0, dtype=np.uint64)
            self._trie = FastSuccinctTrie([])
            trie_bits = 0
        prefixes2 = _distinct_prefixes(arr, W - self._l2)
        bloom_bits = max(64, int(budget - trie_bits))
        k = optimal_num_hashes(bloom_bits, prefixes2.size)
        self._bloom = BloomFilter(bloom_bits, num_hashes=k, items=prefixes2, seed=self._seed)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def design(self) -> Tuple[int, int]:
        """The (l1, l2) prefix lengths in use."""
        return self._l1, self._l2

    @property
    def size_in_bits(self) -> int:
        return self._trie.size_in_bits + self._bloom.size_in_bits

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        W = self._W
        shift2 = W - self._l2
        if self._l1:
            shift1 = W - self._l1
            a1, b1 = lo >> shift1, hi >> shift1
            idx = int(np.searchsorted(self._prefixes1, a1, side="left"))
            if idx >= self._prefixes1.size or int(self._prefixes1[idx]) > b1:
                return False  # exact at l1 granularity
            probes = 0
            # Probe l2 slots only under stored l1 prefixes overlapping the
            # query (this is the trie guiding the Bloom probes).
            while idx < self._prefixes1.size and int(self._prefixes1[idx]) <= b1:
                p1 = int(self._prefixes1[idx])
                block_lo = max(lo, p1 << shift1)
                block_hi = min(hi, ((p1 + 1) << shift1) - 1)
                slot_lo, slot_hi = block_lo >> shift2, block_hi >> shift2
                if probes + (slot_hi - slot_lo + 1) > self._max_probes:
                    return True
                for slot in range(slot_lo, slot_hi + 1):
                    probes += 1
                    if self._bloom.may_contain(slot):
                        return True
                idx += 1
            return False
        # No trie: pure prefix Bloom filter on l2 prefixes.
        slot_lo, slot_hi = lo >> shift2, hi >> shift2
        if slot_hi - slot_lo + 1 > self._max_probes:
            return True
        for slot in range(slot_lo, slot_hi + 1):
            if self._bloom.may_contain(slot):
                return True
        return False
