"""SNARF — Sparse Numerical Array-Based Range Filter (paper §2, [36]).

SNARF learns a monotone estimate of the key CDF from a sample of every
``t``-th sorted key (linear splines between samples), maps each key to a
slot ``f(x) = floor(MCDF(x) * K * n)`` of a bit array with ``K`` slots per
key, sets the slot bits, and compresses the sparse array with Rice-coded
gaps. A range query answers "not empty" iff some set bit falls in
``[f(a), f(b)]``.

Under uniform keys and queries SNARF's FPR is about ``1/K``; under
*correlated* queries the query endpoints map next to the keys' own slots
and filtering collapses — the behaviour Figure 3 documents and our
benchmarks reproduce.

The paper's Footnote 5 reports that the original SNARF implementation can
return *false negatives* due to numeric overflow in the learned model.
Our default uses exact float64 evaluation with clamping (no false
negatives); constructing with ``emulate_float32_defect=True`` evaluates
the model in float32, reproducing the defect class for study.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.succinct.golomb import GolombSequence


class SnarfFilter(RangeFilter):
    """The SNARF learned range filter.

    Parameters
    ----------
    keys / universe:
        Key set and universe.
    bits_per_key:
        Space budget ``B``; inverts the paper's ``n log2(K) + 2.4 n``
        model to pick ``K = 2^(B - 2.4)``. Mutually exclusive with ``K``.
    K:
        Directly sets the slots-per-key parameter.
    sample_stride:
        Take one spline knot every ``t`` sorted keys (SNARF's ``t``).
    emulate_float32_defect:
        Evaluate the spline in float32 (see module docstring).
    """

    name = "SNARF"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        bits_per_key: Optional[float] = None,
        K: Optional[float] = None,
        sample_stride: int = 100,
        emulate_float32_defect: bool = False,
    ) -> None:
        super().__init__(universe)
        if (bits_per_key is None) == (K is None):
            raise InvalidParameterError("pass exactly one of bits_per_key or K")
        if bits_per_key is not None:
            if bits_per_key <= 2.4:
                raise InvalidParameterError(
                    f"SNARF needs more than 2.4 bits per key, got {bits_per_key}"
                )
            K = 2.0 ** (bits_per_key - 2.4)
        if K < 1:
            raise InvalidParameterError(f"K must be >= 1, got {K}")
        if sample_stride < 1:
            raise InvalidParameterError("sample_stride must be >= 1")
        self._K = float(K)
        self._float32 = bool(emulate_float32_defect)
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        if self._n == 0:
            self._slots = 1
            self._min_key = 0
            self._max_key = 0
            self._knot_keys = np.zeros(0)
            self._knot_ranks = np.zeros(0)
            self._bits = GolombSequence([], universe=1)
            return
        # Exact span bounds: the learned model clamps outside the knots,
        # which would map every out-of-span query onto the first/last
        # key's (set) slot — a guaranteed false positive. The reference
        # implementation answers out-of-span queries exactly; these two
        # integers restore that at zero model cost.
        self._min_key = int(arr[0])
        self._max_key = int(arr[-1])
        self._slots = max(1, math.ceil(self._K * self._n))
        self._build_spline(arr, sample_stride)
        slots = np.unique(self._map_keys(arr))
        self._bits = GolombSequence(slots, universe=self._slots)

    # ------------------------------------------------------------------
    # Learned model
    # ------------------------------------------------------------------
    def _build_spline(self, sorted_keys: np.ndarray, stride: int) -> None:
        """Knots at every ``stride``-th key, plus both extremes."""
        n = sorted_keys.size
        idx = np.arange(0, n, stride)
        if idx[-1] != n - 1:
            idx = np.append(idx, n - 1)
        self._knot_keys = sorted_keys[idx].astype(np.float64)
        self._knot_ranks = idx.astype(np.float64)
        if self._float32:
            self._knot_keys = self._knot_keys.astype(np.float32)
            self._knot_ranks = self._knot_ranks.astype(np.float32)

    def _mcdf(self, values: np.ndarray) -> np.ndarray:
        """Monotone CDF estimate in [0, 1] via linear interpolation."""
        dtype = np.float32 if self._float32 else np.float64
        xs = values.astype(dtype)
        ranks = np.interp(xs, self._knot_keys, self._knot_ranks)
        return ranks / max(1, self._n - 1) if self._n > 1 else np.zeros_like(ranks)

    def _map_keys(self, values: np.ndarray) -> np.ndarray:
        """``f(x) = floor(MCDF(x) * slots)`` clamped into the array."""
        positions = np.floor(self._mcdf(values) * self._slots).astype(np.int64)
        return np.clip(positions, 0, self._slots - 1)

    def _map_scalar(self, value: int) -> int:
        return int(self._map_keys(np.asarray([value], dtype=np.float64))[0])

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def slots_per_key(self) -> float:
        """The parameter ``K``."""
        return self._K

    @property
    def size_in_bits(self) -> int:
        """Compressed bit array plus the spline knots (64+32 bits each)."""
        model_bits = self._knot_keys.size * (64 + 32)
        return self._bits.size_in_bits + model_bits

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        if hi < self._min_key or lo > self._max_key:
            return False  # outside the key span: exactly empty
        return self._bits.any_in_range(self._map_scalar(lo), self._map_scalar(hi))
