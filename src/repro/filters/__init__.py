"""Baseline range filters evaluated by the paper (§2, §6).

Every class here implements :class:`repro.filters.base.RangeFilter`, so
the measurement harness, the LSM store and the benchmarks can swap them
freely:

* :class:`~repro.filters.bloom.BloomFilter` — classic point filter
  substrate;
* :class:`~repro.filters.prefix_bloom.PrefixBloomFilter` — fixed-length
  prefix hashing;
* :class:`~repro.filters.point_probe.PointProbeFilter` — the trivial
  FPR-bounded ``O(L)`` baseline of §2;
* :class:`~repro.filters.rosetta.Rosetta` — per-level Bloom filters with
  dyadic doubting (robust);
* :class:`~repro.filters.surf.SuRF` — LOUDS-Sparse succinct trie with
  suffix bits (heuristic);
* :class:`~repro.filters.snarf.SnarfFilter` — learned-CDF bit array
  (heuristic);
* :class:`~repro.filters.proteus.Proteus` — trie + prefix Bloom hybrid
  with sample-driven self-design (heuristic);
* :class:`~repro.filters.rencoder.REncoder` (+ ``rencoder_ss`` /
  ``rencoder_se``) — local-tree bit array (robust for large ranges).

:mod:`repro.filters.registry` wraps a curated subset of these (plus the
core Grafite/Bucketing) as engine-mountable backends: a
:class:`~repro.filters.registry.FilterSpec` names the backend and its
knobs, and its factory builds one filter per flushed run.
"""

from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter
from repro.filters.fst import FastSuccinctTrie, distinguishing_prefixes
from repro.filters.point_probe import PointProbeFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.proteus import Proteus
from repro.filters.rencoder import REncoder, rencoder_se, rencoder_ss
from repro.filters.registry import BACKENDS, FilterBackend, FilterSpec, make_factory
from repro.filters.rosetta import Rosetta, dyadic_decomposition
from repro.filters.snarf import SnarfFilter
from repro.filters.surf import SuRF

__all__ = [
    "BACKENDS",
    "BloomFilter",
    "FastSuccinctTrie",
    "FilterBackend",
    "FilterSpec",
    "PointProbeFilter",
    "PrefixBloomFilter",
    "Proteus",
    "REncoder",
    "RangeFilter",
    "Rosetta",
    "SnarfFilter",
    "SuRF",
    "as_key_array",
    "distinguishing_prefixes",
    "dyadic_decomposition",
    "make_factory",
    "rencoder_se",
    "rencoder_ss",
]
