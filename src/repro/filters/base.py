"""The common range-filter interface.

Every filter in this library — Grafite, Bucketing, and all the baselines
the paper evaluates against — implements :class:`RangeFilter`, so the
measurement harness (:mod:`repro.analysis`), the LSM store
(:mod:`repro.lsm`) and the benchmarks can treat them interchangeably.

The contract mirrors Problem 1 of the paper:

* ``may_contain_range(lo, hi)`` answers "might ``[lo, hi]`` intersect the
  key set?" — ``False`` is always correct (no false negatives allowed),
  ``True`` may be a false positive;
* ``size_in_bits`` is the payload space the filter occupies, used for the
  bits-per-key axes of Figures 4–6.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import InvalidKeyError, InvalidQueryError


def as_key_array(keys: Sequence[int] | np.ndarray, universe: int) -> np.ndarray | list:
    """Validate and normalise input keys to a sorted, deduplicated sequence.

    Keys must be integers in ``[0, universe)``. The paper works with the
    *set* ``S``, so duplicates are removed here, once, for all filters.

    For universes up to ``2^64`` the result is a ``uint64`` numpy array;
    larger universes (the string-key extension encodes keys into up to
    ``2^(8*width)``) fall back to a sorted list of Python integers.
    """
    if universe <= 0:
        raise InvalidKeyError(f"universe must be positive, got {universe}")
    if universe > 2**64:
        out = sorted({int(k) for k in keys})
        if out and (out[0] < 0 or out[-1] >= universe):
            raise InvalidKeyError("key outside the declared universe")
        return out
    try:
        arr = np.asarray(keys, dtype=np.uint64)
    except (OverflowError, ValueError) as exc:
        raise InvalidKeyError(f"keys do not fit the declared universe: {exc}") from exc
    if arr.ndim != 1:
        raise InvalidKeyError("keys must be a one-dimensional sequence")
    if arr.size:
        if int(arr.max()) >= universe:
            raise InvalidKeyError(
                f"key {int(arr.max())} outside universe [0, {universe})"
            )
        arr = np.unique(arr)  # sorted + deduplicated
    return arr


class RangeFilter(abc.ABC):
    """Abstract base class for approximate range-emptiness filters."""

    #: Human-readable name used in benchmark tables (subclasses override).
    name: str = "range-filter"

    def __init__(self, universe: int) -> None:
        if universe <= 0:
            raise InvalidKeyError(f"universe must be positive, got {universe}")
        self._universe = int(universe)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        """Exclusive upper bound of the key universe ``[0, u)``."""
        return self._universe

    @property
    @abc.abstractmethod
    def key_count(self) -> int:
        """Number of distinct keys the filter was built on."""

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Payload size of the filter in bits."""

    @abc.abstractmethod
    def may_contain_range(self, lo: int, hi: int) -> bool:
        """Return ``False`` only if ``[lo, hi]`` surely contains no key."""

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    def may_contain(self, key: int) -> bool:
        """Point-query convenience: a range query of size one."""
        return self.may_contain_range(key, key)

    def may_contain_range_batch(
        self, los: Sequence[int] | np.ndarray, his: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Answer many range-emptiness queries at once.

        ``los[i]``/``his[i]`` are the bounds of query ``i``; the result is
        a boolean array aligned with them, semantically identical to
        calling :meth:`may_contain_range` per query. This base
        implementation is exactly that loop; filters with a vectorised
        hot path (:class:`~repro.core.grafite.Grafite`) override it — the
        batch layer of :mod:`repro.engine.batch` calls through this
        method so every registered filter works there, fast or not.
        """
        los_arr = np.asarray(los)
        his_arr = np.asarray(his)
        if los_arr.shape != his_arr.shape or los_arr.ndim != 1:
            raise InvalidQueryError(
                "batch queries need equal-length one-dimensional lo/hi arrays"
            )
        out = np.empty(los_arr.size, dtype=bool)
        for i in range(los_arr.size):
            out[i] = self.may_contain_range(int(los_arr[i]), int(his_arr[i]))
        return out

    @property
    def bits_per_key(self) -> float:
        """Space per key, the x-axis of the paper's Figures 4–6."""
        n = self.key_count
        return self.size_in_bits / n if n else 0.0

    def _check_range(self, lo: int, hi: int) -> None:
        """Validate a query range; raises :class:`InvalidQueryError`."""
        if lo > hi:
            raise InvalidQueryError(f"query range has lo={lo} > hi={hi}")
        if lo < 0 or hi >= self._universe:
            raise InvalidQueryError(
                f"query range [{lo}, {hi}] outside universe [0, {self._universe})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n={self.key_count}, "
            f"bits_per_key={self.bits_per_key:.2f})"
        )
