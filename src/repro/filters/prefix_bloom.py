"""Prefix Bloom Filter (paper §2, [12, 26]).

Hashes every distinct key prefix of a fixed bit-length ``l`` into a Bloom
filter. Each ``l``-bit prefix covers a universe range of ``2^(W - l)``
values, so a range query probes every prefix configuration overlapping the
query range and answers "empty" only if all probes miss.

The paper does not evaluate the standalone Prefix Bloom Filter (it is
generalised by Rosetta and Proteus), but Proteus embeds one, and we expose
it publicly both for that and for completeness of the related-work
inventory.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter


class PrefixBloomFilter(RangeFilter):
    """Bloom filter over fixed-length key prefixes.

    Parameters
    ----------
    keys:
        Input keys in ``[0, universe)``.
    universe:
        Exclusive universe bound; its bit length ``W`` fixes the prefix
        shift ``W - prefix_bits``.
    prefix_bits:
        The prefix length ``l`` in bits, ``0 < l <= W``.
    num_bits:
        Bloom array size. Either this or ``bits_per_key`` must be given.
    bits_per_key:
        Alternative sizing: ``num_bits = bits_per_key * n``.
    max_probes:
        Ranges overlapping more than this many prefixes short-circuit to
        "maybe" (the answer stays conservative; probing thousands of
        prefixes is the ``O(L)`` worst case the paper criticises).
    """

    name = "PrefixBloom"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        prefix_bits: int,
        *,
        num_bits: Optional[int] = None,
        bits_per_key: Optional[float] = None,
        max_probes: int = 4096,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        self._W = max(1, (universe - 1).bit_length())
        if not 0 < prefix_bits <= self._W:
            raise InvalidParameterError(
                f"prefix_bits must be in [1, {self._W}], got {prefix_bits}"
            )
        if (num_bits is None) == (bits_per_key is None):
            raise InvalidParameterError("pass exactly one of num_bits or bits_per_key")
        if max_probes < 1:
            raise InvalidParameterError("max_probes must be >= 1")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        self._l = int(prefix_bits)
        self._shift = self._W - self._l
        self._max_probes = int(max_probes)
        prefixes = np.unique(arr >> np.uint64(self._shift)) if self._n else arr
        if num_bits is None:
            num_bits = max(64, math.ceil(bits_per_key * max(1, self._n)))
        self._bloom = BloomFilter(num_bits, items=prefixes, seed=seed)
        self._distinct_prefixes = int(prefixes.size)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def prefix_bits(self) -> int:
        return self._l

    @property
    def distinct_prefixes(self) -> int:
        return self._distinct_prefixes

    @property
    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits

    def may_contain_prefix_of(self, key: int) -> bool:
        """Probe the single prefix covering ``key``."""
        return self._bloom.may_contain(int(key) >> self._shift)

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        first = lo >> self._shift
        last = hi >> self._shift
        if last - first + 1 > self._max_probes:
            # Too many prefixes to probe: stay conservative.
            return True
        for prefix in range(first, last + 1):
            if self._bloom.may_contain(prefix):
                return True
        return False
