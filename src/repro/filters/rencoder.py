"""REncoder — Range Encoder with local trees (paper §2, [38]).

Each key is processed 4 bits at a time. For every chunk boundary the 4-bit
chunk is viewed as a leaf of a complete binary tree with 16 leaves (31
nodes); the path from that leaf to the root is marked and the resulting
32-bit pattern is OR-ed into a shared bit array at ``k`` hashed offsets
derived from the remaining key prefix. Because one 32-bit window encodes
*five* tree depths, a query resolves four prefix bits per memory probe —
the "local encoder" idea that makes REncoder faster than Rosetta.

Queries decompose the range into dyadic blocks; each block's node is
checked in the tree recovered by AND-ing the ``k`` windows, and positives
are verified downward chunk by chunk until a full key length is confirmed
(or refuted).

Variants (§6.1 of the paper):

* :class:`REncoder` — stores every level; robust for large ranges.
* ``REncoderSS`` (``stored_levels < all``) — stores only the bottom
  levels, saving space but giving up filtering for blocks coarser than
  the stored coverage.
* ``REncoderSE`` — picks ``stored_levels`` from a sample of the query
  workload (auto-tuned, like Rosetta's and Proteus's tuning).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import splitmix64
from repro.filters.rosetta import dyadic_decomposition

_CHUNK_BITS = 4
_TREE_NODES = 31  # depths 0..4 of a 16-leaf complete binary tree


def tree_pattern(chunk: int) -> int:
    """32-bit mark pattern for the root-to-leaf path of a 4-bit chunk.

    Node (depth ``d``, value ``v``) sits at bit ``2^d - 1 + v``; the path
    marks one node per depth 0..4.
    """
    pattern = 0
    for depth in range(_CHUNK_BITS + 1):
        value = chunk >> (_CHUNK_BITS - depth)
        pattern |= 1 << ((1 << depth) - 1 + value)
    return pattern


_PATTERNS = [tree_pattern(s) for s in range(16)]


class REncoder(RangeFilter):
    """The REncoder range filter and its SS/SE variants.

    Parameters
    ----------
    keys / universe:
        Key set and universe; the key length is padded to a multiple of 4
        bits so chunks align.
    bits_per_key:
        Size of the shared bit array: ``m = bits_per_key * n``.
    stored_levels:
        Number of chunk levels materialised, counted from the *bottom*
        (leaf side). ``None`` stores all levels (base REncoder); smaller
        values give the SS variant.
    sample_queries:
        If given (and ``stored_levels`` is None), picks ``stored_levels``
        as the smallest coverage that answers the sampled ranges without
        falling back to enumeration — the SE variant.
    num_hashes:
        Windows OR-ed per (prefix, level); 1 matches the reference
        configuration at typical budgets.
    """

    name = "REncoder"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        bits_per_key: float,
        stored_levels: Optional[int] = None,
        sample_queries: Optional[Iterable[Tuple[int, int]]] = None,
        num_hashes: int = 1,
        max_probes: int = 4096,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        if bits_per_key <= 0:
            raise InvalidParameterError("bits_per_key must be positive")
        if num_hashes < 1:
            raise InvalidParameterError("num_hashes must be >= 1")
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        bit_width = max(1, (universe - 1).bit_length())
        self._W = ((bit_width + _CHUNK_BITS - 1) // _CHUNK_BITS) * _CHUNK_BITS
        self._chunks = self._W // _CHUNK_BITS
        if stored_levels is None and sample_queries is not None:
            stored_levels = self._tune_levels(sample_queries)
        if stored_levels is None:
            # Budget-aware default: each stored level costs ~5 fresh bits
            # per key (a root-to-leaf path in one tree window); keep the
            # OR-array near the classic 50% load so trees stay readable.
            # Levels beyond the coverage answer "maybe" conservatively.
            affordable = int(bits_per_key * math.log(2) / 5.0)
            stored_levels = min(self._chunks, max(3, affordable))
        if not 1 <= stored_levels <= self._chunks:
            raise InvalidParameterError(
                f"stored_levels must be in [1, {self._chunks}], got {stored_levels}"
            )
        self._stored = int(stored_levels)
        self._k = int(num_hashes)
        self._max_probes = int(max_probes)
        self._seed = seed
        self._m = max(256, math.ceil(bits_per_key * max(1, self._n)))
        self._words = np.zeros((self._m + 63) // 64 + 1, dtype=np.uint64)
        if self._n:
            self._insert_all(arr)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _tune_levels(self, sample_queries: Iterable[Tuple[int, int]]) -> int:
        """SE tuning: smallest level coverage answering the sample ranges.

        A dyadic block of ``2^j`` values needs trees for prefixes at least
        ``W - j - 4`` bits long; coverage of ``T`` bottom levels reaches
        ``j <= 4T - 1``.
        """
        needed = 1
        for lo, hi in sample_queries:
            for _, log_size in dyadic_decomposition(lo, hi):
                needed = max(needed, math.ceil((log_size + 1) / _CHUNK_BITS))
        return min(self._chunks, needed)

    def _window_offset(self, prefix: int, level: int, hash_index: int) -> int:
        """Bit offset of the (prefix, level) tree window for one hash."""
        mix = splitmix64(prefix ^ splitmix64(self._seed * 1024 + level * 16 + hash_index))
        return mix % (self._m - _TREE_NODES)

    def _or_window(self, offset: int, pattern: int) -> None:
        word, bit = divmod(offset, 64)
        self._words[word] |= np.uint64((pattern << bit) & 0xFFFFFFFFFFFFFFFF)
        if bit + 32 > 64:
            self._words[word + 1] |= np.uint64(pattern >> (64 - bit))

    def _read_window(self, offset: int) -> int:
        word, bit = divmod(offset, 64)
        value = int(self._words[word]) >> bit
        if bit + 32 > 64:
            value |= int(self._words[word + 1]) << (64 - bit)
        return value & 0xFFFFFFFF

    def _insert_all(self, arr: np.ndarray) -> None:
        for key in (int(v) for v in arr):
            # level 0 is the leaf chunk; level i covers bits [4i, 4i+4).
            for level in range(self._stored):
                chunk = (key >> (_CHUNK_BITS * level)) & 15
                prefix = key >> (_CHUNK_BITS * (level + 1))
                pattern = _PATTERNS[chunk]
                for j in range(self._k):
                    self._or_window(self._window_offset(prefix, level, j), pattern)

    # ------------------------------------------------------------------
    # Tree recovery
    # ------------------------------------------------------------------
    def _read_tree(self, prefix: int, level: int) -> int:
        """AND of the ``k`` windows for (prefix, level) — the recovered tree."""
        tree = 0xFFFFFFFF
        for j in range(self._k):
            tree &= self._read_window(self._window_offset(prefix, level, j))
            if not tree:
                break
        return tree

    def _level_of_prefix_chunks(self, chunk_count: int) -> int:
        """Level index of the tree hashed by a prefix of ``chunk_count`` chunks."""
        return self._chunks - 1 - chunk_count

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _subtree_has_key(self, prefix: int, chunk_count: int) -> bool:
        """Verify that some full key extends the chunk-aligned ``prefix``."""
        if chunk_count == self._chunks:
            return True
        level = self._level_of_prefix_chunks(chunk_count)
        if level >= self._stored:
            # Tree not materialised (SS variant): cannot refute.
            return True
        tree = self._read_tree(prefix, level)
        if not tree & 1:  # root unmarked: no key below this prefix
            return False
        for leaf in range(16):
            path = _PATTERNS[leaf]
            if tree & path == path and self._subtree_has_key(
                (prefix << _CHUNK_BITS) | leaf, chunk_count + 1
            ):
                return True
        return False

    def _check_partial(self, prefix: int, depth: int) -> bool:
        """Check a dyadic block whose prefix has ``depth`` bits."""
        if depth == 0:
            return self._n > 0
        rem = depth % _CHUNK_BITS or _CHUNK_BITS
        aligned = prefix >> rem
        chunk_count = (depth - rem) // _CHUNK_BITS
        level = self._level_of_prefix_chunks(chunk_count)
        if level >= self._stored:
            return True  # coarser than stored coverage: cannot refute
        tree = self._read_tree(aligned, level)
        node_bit = 1 << ((1 << rem) - 1 + (prefix & ((1 << rem) - 1)))
        if not tree & node_bit:
            return False
        # Enumerate marked leaves under the partial node and verify each
        # extension down to the full key length.
        lo_leaf = (prefix & ((1 << rem) - 1)) << (_CHUNK_BITS - rem)
        hi_leaf = lo_leaf + (1 << (_CHUNK_BITS - rem))
        for leaf in range(lo_leaf, hi_leaf):
            path = _PATTERNS[leaf]
            if tree & path == path and self._subtree_has_key(
                (aligned << _CHUNK_BITS) | leaf, chunk_count + 1
            ):
                return True
        return False

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        probes = 0
        for start, log_size in dyadic_decomposition(lo, hi):
            probes += 1
            if probes > self._max_probes:
                return True
            depth = self._W - log_size
            if self._check_partial(start >> log_size, depth):
                return True
        return False

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def stored_levels(self) -> int:
        return self._stored

    @property
    def total_levels(self) -> int:
        return self._chunks

    @property
    def size_in_bits(self) -> int:
        return self._m


def rencoder_ss(
    keys: Sequence[int] | np.ndarray,
    universe: int,
    *,
    bits_per_key: float,
    coverage_levels: int = 4,
    seed: int = 0,
) -> REncoder:
    """REncoderSS: bottom-``coverage_levels`` trees only (space saving)."""
    bit_width = max(1, (universe - 1).bit_length())
    chunks = (bit_width + _CHUNK_BITS - 1) // _CHUNK_BITS
    filt = REncoder(
        keys,
        universe,
        bits_per_key=bits_per_key,
        stored_levels=min(chunks, coverage_levels),
        seed=seed,
    )
    filt.name = "REncoderSS"
    return filt


def rencoder_se(
    keys: Sequence[int] | np.ndarray,
    universe: int,
    *,
    bits_per_key: float,
    sample_queries: Iterable[Tuple[int, int]],
    seed: int = 0,
) -> REncoder:
    """REncoderSE: level coverage auto-tuned on a query sample."""
    filt = REncoder(
        keys,
        universe,
        bits_per_key=bits_per_key,
        sample_queries=sample_queries,
        seed=seed,
    )
    filt.name = "REncoderSE"
    return filt
