"""SuRF — Succinct Range Filter (paper §2, [40]).

SuRF stores each key truncated at its distinguishing prefix in a
LOUDS-Sparse Fast Succinct Trie, optionally followed by ``m`` suffix bits
(real key bits, or a key hash for point queries). A range query finds the
first trie leaf whose covered key interval reaches the left endpoint and
answers "not empty" iff that interval starts at or before the right
endpoint.

Space is ``(10 + m) n + 10 z + o(n + z)`` bits with ``z`` internal nodes
(Table 1). SuRF's weakness — reproduced here and in Figure 3 — is that a
query endpoint close to a stored key shares a long prefix with it, so the
truncated trie cannot separate them and the FPR approaches 1 under
correlated workloads.

Two small conservative deviations from the reference implementation are
documented inline; both only ever *add* false positives (never false
negatives).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import splitmix64
from repro.filters.fst import FastSuccinctTrie, distinguishing_prefixes
from repro.succinct.packed import PackedIntVector

_SUFFIX_MODES = ("none", "real", "hash")


class SuRF(RangeFilter):
    """The SuRF range filter.

    Parameters
    ----------
    keys / universe:
        Key set and universe; keys are encoded big-endian over
        ``ceil(W / 8)`` bytes.
    suffix_mode:
        ``"none"`` (SuRF-Base), ``"real"`` (SuRF-Real: the next
        ``suffix_bits`` key bits follow each truncated prefix — used for
        range workloads) or ``"hash"`` (SuRF-Hash: a key-hash fragment
        checked only by point queries — the configuration the paper uses
        for point-query batches).
    suffix_bits:
        The per-key suffix length ``m``.
    """

    name = "SuRF"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        suffix_mode: str = "real",
        suffix_bits: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        if suffix_mode not in _SUFFIX_MODES:
            raise InvalidParameterError(
                f"suffix_mode must be one of {_SUFFIX_MODES}, got {suffix_mode!r}"
            )
        if suffix_bits < 0 or (suffix_mode != "none" and suffix_bits == 0):
            raise InvalidParameterError("suffix_bits must be positive for real/hash modes")
        self._mode = suffix_mode
        self._m = int(suffix_bits) if suffix_mode != "none" else 0
        self._seed = seed
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        bit_width = max(1, (universe - 1).bit_length())
        self._width_bytes = (bit_width + 7) // 8
        self._width_bits = self._width_bytes * 8
        if self._n == 0:
            self._trie = FastSuccinctTrie([])
            self._suffixes = PackedIntVector(0, [])
            return
        encoded = [int(k).to_bytes(self._width_bytes, "big") for k in arr]
        prefixes = distinguishing_prefixes(encoded)
        self._trie = FastSuccinctTrie(prefixes)
        self._suffixes = self._build_suffixes(arr, prefixes)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_suffixes(self, arr: np.ndarray, prefixes) -> PackedIntVector:
        """Per-leaf suffix bits, stored in LOUDS leaf order."""
        if self._m == 0:
            return PackedIntVector(0, [0] * self._trie.num_leaves)
        values = []
        for leaf in range(self._trie.num_leaves):
            key_index = self._trie.leaf_key_index(leaf)
            key = int(arr[key_index])
            if self._mode == "hash":
                values.append(splitmix64(key ^ self._seed) & ((1 << self._m) - 1))
            else:
                prefix_bits = 8 * len(prefixes[key_index])
                remaining = self._width_bits - prefix_bits
                if remaining >= self._m:
                    suffix = (key >> (remaining - self._m)) & ((1 << self._m) - 1)
                else:
                    suffix = (key & ((1 << remaining) - 1)) << (self._m - remaining)
                values.append(suffix)
        return PackedIntVector(self._m, values)

    # ------------------------------------------------------------------
    # Leaf interval arithmetic
    # ------------------------------------------------------------------
    def _leaf_min_key(self, leaf_id: int, prefix: bytes) -> int:
        """Smallest full-width key consistent with the leaf's stored bits."""
        prefix_bits = 8 * len(prefix)
        base = int.from_bytes(prefix, "big") << (self._width_bits - prefix_bits)
        if self._mode != "real" or self._m == 0:
            return base
        remaining = self._width_bits - prefix_bits
        suffix = self._suffixes[leaf_id]
        if remaining >= self._m:
            return base | (suffix << (remaining - self._m))
        return base | (suffix >> (self._m - remaining))

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        return self._n

    @property
    def suffix_mode(self) -> str:
        return self._mode

    @property
    def size_in_bits(self) -> int:
        return self._trie.size_in_bits + self._trie.num_leaves * self._m

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        target = int(lo).to_bytes(self._width_bytes, "big")
        found = self._trie.first_leaf_reaching(target)
        if found is None:
            return False
        leaf_id, prefix = found
        if lo == hi and self._mode == "hash":
            return self._point_check(lo, leaf_id, prefix)
        # Conservative deviation #1: the "not empty" decision compares the
        # leaf's *minimal* consistent key against hi. Real suffix bits can
        # only raise that minimum, improving filtering with no FN risk.
        return self._leaf_min_key(leaf_id, prefix) <= hi

    def _point_check(self, key: int, leaf_id: int, prefix: bytes) -> bool:
        """SuRF-Hash point query: exact prefix match plus hash-bit compare."""
        key_bytes = int(key).to_bytes(self._width_bytes, "big")
        if key_bytes[: len(prefix)] != prefix:
            # The located leaf does not cover the key's own prefix path.
            return self._leaf_min_key(leaf_id, prefix) <= key
        expected = splitmix64(key ^ self._seed) & ((1 << self._m) - 1)
        return self._suffixes[leaf_id] == expected
