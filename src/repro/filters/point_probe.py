"""The trivial FPR-bounded baseline of the paper's §2.

A point Bloom filter with false positive probability ``gamma = eps / L``
answers a range query by probing every point of the range: at most ``L``
probes, union-bounded FPR ``<= eps``, and ``n log2(L/eps) + O(n)`` bits —
the same space as Grafite but ``O(L)`` query time instead of ``O(1)``.
Table 1 lists it as the "theoretical baseline"; benchmarks use it to show
the query-time gap that motivates Grafite.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter


class PointProbeFilter(RangeFilter):
    """Point Bloom filter probed once per range point.

    Parameters
    ----------
    keys / universe:
        The key set and its universe.
    eps:
        Target FPR for ranges of size ``max_range_size``; the underlying
        Bloom filter is sized for ``gamma = eps / L``. Mutually exclusive
        with ``bits_per_key``.
    bits_per_key:
        Space budget; inverts the Bloom space formula to get ``gamma``.
    max_range_size:
        The design bound ``L`` on range sizes. Larger query ranges are
        still answered correctly (every point is probed) but lose the FPR
        guarantee, exactly like the analysis in §2.
    """

    name = "PointProbe"

    def __init__(
        self,
        keys: Sequence[int] | np.ndarray,
        universe: int,
        *,
        eps: Optional[float] = None,
        bits_per_key: Optional[float] = None,
        max_range_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(universe)
        if max_range_size < 1:
            raise InvalidParameterError(f"max_range_size must be >= 1, got {max_range_size}")
        if (eps is None) == (bits_per_key is None):
            raise InvalidParameterError("pass exactly one of eps or bits_per_key")
        self._L = int(max_range_size)
        arr = as_key_array(keys, universe)
        self._n = int(arr.size)
        if eps is not None:
            if not 0 < eps < 1:
                raise InvalidParameterError(f"eps must be in (0, 1), got {eps}")
            gamma = eps / self._L
            self._gamma = max(gamma, 1e-12)
            self._bloom = BloomFilter.from_fpr(arr if self._n else [0], self._gamma, seed=seed)
        else:
            if bits_per_key <= 0:
                raise InvalidParameterError("bits_per_key must be positive")
            num_bits = max(64, math.ceil(bits_per_key * max(1, self._n)))
            self._bloom = BloomFilter(num_bits, items=arr, seed=seed)
            self._gamma = self._bloom.expected_fpr()

    @property
    def key_count(self) -> int:
        return self._n

    @property
    def point_fpr(self) -> float:
        """The per-point probe FPR ``gamma``."""
        return self._gamma

    @property
    def max_range_size(self) -> int:
        return self._L

    @property
    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits

    def may_contain_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if self._n == 0:
            return False
        # O(L) probes: one per point of the range. This is exactly the
        # trivial solution's cost profile the paper improves on.
        for point in range(lo, hi + 1):
            if self._bloom.may_contain(point):
                return True
        return False
