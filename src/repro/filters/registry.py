"""The engine-facing filter backend registry.

The analysis harness (:mod:`repro.analysis.harness`) builds filters from
a rich :class:`FilterConfig` for figure reproduction; the *engine* needs
something narrower — a ``(keys, universe) -> RangeFilter`` factory it
can hand to every flushed run — and it needs to know, per backend, the
facts the serving layer and the auto-tuner act on:

* is the backend *robust* (distribution-free FPR bound, §6.2 taxonomy)
  or a heuristic an adversary can drive to FPR ~ 1?
* does it have a vectorised batch probe, or does it ride the generic
  :meth:`~repro.filters.base.RangeFilter.may_contain_range_batch` loop?
* can :mod:`repro.core.serialization` checkpoint it byte-for-byte?

:class:`FilterSpec` is the value that travels: a named backend plus the
construction knobs (bits/key, design range size, seed). The engine
records it in its manifest, the CLI builds one from ``--filter``, and
:mod:`repro.engine.autotune` swaps one spec for another per shard as
the observed workload shifts.

Backends whose reference construction is tuned on a query sample
(Proteus, and Rosetta's optional re-weighting) get a deterministic
synthetic sample of ``max_range_size``-length ranges here — the engine
cannot know its future workload at flush time, and determinism is what
keeps rebuilt filters identical across runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.filters.base import RangeFilter

#: The engine-side factory shape (matches ``repro.lsm.sstable.FilterFactory``).
EngineFactory = Callable[[np.ndarray, int], RangeFilter]


@dataclass(frozen=True)
class FilterBackend:
    """Registry entry: how to build a backend and what to expect of it."""

    key: str                 #: lowercase CLI name
    display_name: str        #: the name the paper's figures use
    robust: bool             #: distribution-free FPR bound (adversarial-safe)
    batch_native: bool       #: has a vectorised ``may_contain_range_batch``
    serializable: bool       #: covered by :mod:`repro.core.serialization`
    paper_figure: str        #: where the paper evaluates it
    summary: str             #: one-line behaviour note for docs/CLI help
    build: Callable[["FilterSpec", np.ndarray, int], RangeFilter]


@dataclass(frozen=True)
class FilterSpec:
    """A backend choice plus construction knobs, JSON-serialisable.

    ``max_range_size`` is the design bound ``L`` for the backends that
    take one (Grafite, Rosetta); ``seed`` fixes every hash constant so a
    rebuild from the same keys is bit-for-bit reproducible.
    """

    backend: str
    bits_per_key: float = 16.0
    max_range_size: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown filter backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        if self.bits_per_key <= 0:
            raise InvalidParameterError("bits_per_key must be positive")
        if self.max_range_size < 1:
            raise InvalidParameterError("max_range_size must be >= 1")

    @property
    def info(self) -> FilterBackend:
        return BACKENDS[self.backend]

    def factory(self) -> EngineFactory:
        """The ``(keys, universe) -> RangeFilter`` builder the LSM uses."""
        info = self.info

        def build(keys: np.ndarray, universe: int) -> RangeFilter:
            return info.build(self, keys, universe)

        return build

    def to_params(self) -> Dict[str, object]:
        """JSON-safe dict for the engine manifest."""
        return {
            "backend": self.backend,
            "bits_per_key": self.bits_per_key,
            "max_range_size": self.max_range_size,
            "seed": self.seed,
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "FilterSpec":
        """Inverse of :meth:`to_params` (manifest recovery path)."""
        return cls(
            backend=str(params["backend"]),
            bits_per_key=float(params["bits_per_key"]),
            max_range_size=int(params["max_range_size"]),
            seed=int(params["seed"]),
        )


def _synthetic_sample(
    universe: int, range_size: int, seed: int, count: int = 64
) -> List[Tuple[int, int]]:
    """Deterministic tuning sample for sample-driven backends.

    Uniform ``range_size``-length ranges: the engine has no workload to
    sample at flush time, so the self-designing backends tune against
    the uncorrelated prior (which is also where the paper shows them
    winning). Emptiness is irrelevant for tuning, only the range shape.
    """
    rng = np.random.default_rng(seed)
    span = max(1, universe - range_size)
    los = rng.integers(0, span, count, dtype=np.uint64)
    return [(int(lo), int(lo) + range_size - 1) for lo in los]


# ----------------------------------------------------------------------
# Builders (imports deferred: repro.core imports this package's modules)
# ----------------------------------------------------------------------
def _build_grafite(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.core.grafite import Grafite

    return Grafite(
        keys, universe, bits_per_key=spec.bits_per_key,
        max_range_size=spec.max_range_size, seed=spec.seed,
    )


def _build_bucketing(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.core.bucketing import Bucketing

    return Bucketing(keys, universe, bits_per_key=spec.bits_per_key)


def _build_surf(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.filters.surf import SuRF

    # The trie costs ~10 bits/key (paper §5); the rest buys real suffix
    # bits, as in the harness's SuRF-Real configuration.
    suffix_bits = max(1, int(round(spec.bits_per_key - 10)))
    return SuRF(
        keys, universe, suffix_mode="real", suffix_bits=suffix_bits, seed=spec.seed
    )


def _build_rosetta(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.filters.rosetta import Rosetta

    return Rosetta(
        keys, universe, bits_per_key=spec.bits_per_key,
        max_range_size=spec.max_range_size, seed=spec.seed,
    )


def _build_proteus(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.filters.proteus import Proteus

    return Proteus(
        keys, universe, bits_per_key=spec.bits_per_key,
        sample_queries=_synthetic_sample(universe, spec.max_range_size, spec.seed),
        seed=spec.seed,
    )


def _build_snarf(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.filters.snarf import SnarfFilter

    # SNARF's space model needs > 2.4 bits/key before K reaches 1.
    return SnarfFilter(keys, universe, bits_per_key=max(3.0, spec.bits_per_key))


def _build_rencoder(spec: FilterSpec, keys: np.ndarray, universe: int) -> RangeFilter:
    from repro.filters.rencoder import REncoder

    return REncoder(keys, universe, bits_per_key=spec.bits_per_key, seed=spec.seed)


BACKENDS: Dict[str, FilterBackend] = {
    backend.key: backend
    for backend in (
        FilterBackend(
            key="grafite", display_name="Grafite", robust=True,
            batch_native=True, serializable=True, paper_figure="Fig. 5-7",
            summary="optimal robust filter; FPR bound holds under any workload",
            build=_build_grafite,
        ),
        FilterBackend(
            key="bucketing", display_name="Bucketing", robust=False,
            batch_native=True, serializable=True, paper_figure="Fig. 4, 6",
            summary="one-bit-per-bucket heuristic; best at tiny budgets",
            build=_build_bucketing,
        ),
        FilterBackend(
            key="surf", display_name="SuRF", robust=False,
            batch_native=False, serializable=True, paper_figure="Fig. 3-4",
            summary="truncated succinct trie; collapses under correlation",
            build=_build_surf,
        ),
        FilterBackend(
            key="rosetta", display_name="Rosetta", robust=True,
            batch_native=False, serializable=True, paper_figure="Fig. 5",
            summary="per-level Blooms; robust but slow for large ranges",
            build=_build_rosetta,
        ),
        FilterBackend(
            key="proteus", display_name="Proteus", robust=False,
            batch_native=False, serializable=True, paper_figure="Fig. 4",
            summary="self-designing trie+Bloom; overfits its tuning sample",
            build=_build_proteus,
        ),
        FilterBackend(
            key="snarf", display_name="SNARF", robust=False,
            batch_native=False, serializable=True, paper_figure="Fig. 3-4",
            summary="learned-CDF bit array; strong on short uncorrelated ranges",
            build=_build_snarf,
        ),
        FilterBackend(
            key="rencoder", display_name="REncoder", robust=True,
            batch_native=False, serializable=True, paper_figure="Fig. 5",
            summary="local-tree bit array; robust for large ranges",
            build=_build_rencoder,
        ),
    )
}


def backend_names() -> List[str]:
    """Sorted lowercase backend keys (the CLI's ``--filter`` choices)."""
    return sorted(BACKENDS)


def make_factory(
    backend: str,
    *,
    bits_per_key: float = 16.0,
    max_range_size: int = 32,
    seed: int = 0,
) -> EngineFactory:
    """Convenience: a factory straight from a backend name."""
    return FilterSpec(
        backend=backend, bits_per_key=bits_per_key,
        max_range_size=max_range_size, seed=seed,
    ).factory()
