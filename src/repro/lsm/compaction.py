"""Pluggable compaction policies for the LSM store.

The seed store knew exactly one maintenance move: fold *every* run into a
single bottom run. That keeps queries cheap but makes write amplification
proportional to the whole store — every compaction rewrites all data, and
a filter-backend switch (:mod:`repro.engine.autotune`) rebuilds every
filter in one monolithic merge. This module turns the compaction axis
into a policy object the store consults, with three implementations:

* :class:`FullMergePolicy` — the seed behaviour, kept as the default for
  exact backward compatibility: one step merges all runs into a single
  bottom run, dropping tombstones.
* :class:`TieredPolicy` — size-tiered: when a level accumulates
  ``fanout`` similar-aged runs they merge into one run pushed down a
  level. Each step rewrites only one level's runs, so write
  amplification per flushed entry is ``O(levels)`` instead of
  ``O(store / memtable)``.
* :class:`LeveledPolicy` — L1 holds non-overlapping key-range *slices*
  whose owning spans partition the universe. A level-0 merge rewrites
  only the slices its keys actually land in, and rebuilds only those
  slices' filters — rewrite cost proportional to the data touched, not
  the shard. Oversized output re-splits into fresh ``slice_target``-
  sized slices during the same rewrite, so no separate split pass ever
  runs.

A policy never *executes* anything: it plans. :meth:`CompactionPolicy.plan`
inspects the level topology plus the store's pending-work flags and
returns one bounded :class:`CompactionStep` (or ``None``). The store
executes the step under its write lock
(:meth:`repro.lsm.store.LSMStore.compact_step`), the scheduler and the
serving layer's background worker drain *steps* — so a shard write lock
is never held for a whole-store rebuild.

Recency invariant every policy maintains (and relies on): level 0 is
newest-first; for each ``k``, everything in level ``k`` is newer than
everything in level ``k + 1``; within a tiered level runs are
newest-first; within a leveled level slices are key-disjoint so their
order carries no recency meaning. Tombstones are dropped only when a
step's output lands with nothing older below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.lsm.sstable import SSTable


@dataclass(frozen=True)
class MergeUnit:
    """One k-way merge inside a step.

    ``inputs`` are ordered newest first (the merge's tie-break).
    ``span`` is the owning key range of the outputs — inputs are
    restricted to it, and slice bounds of re-sliced outputs partition
    it; ``None`` means unrestricted. ``slice_target`` asks the executor
    to chunk the merged entries into runs of roughly that many entries
    (``None`` = a single output run).
    """

    inputs: Tuple[SSTable, ...]
    span: Optional[Tuple[int, int]] = None
    slice_target: Optional[int] = None


@dataclass(frozen=True)
class CompactionStep:
    """One bounded unit of compaction work, planned by a policy.

    ``kind`` is ``"merge"`` (inputs disappear, outputs land in
    ``output_level``) or ``"rebuild"`` (a single run is rewritten in
    place — same entries, same position, fresh filter from the store's
    *current* factory). ``output_level`` is 1-based into the store's
    deep levels; rebuilds ignore it and keep the run's position.
    ``clears_request`` marks the step that satisfies an explicit
    :meth:`~repro.lsm.store.LSMStore.request_compaction`.
    """

    kind: str
    units: Tuple[MergeUnit, ...]
    output_level: int
    drop_tombstones: bool
    clears_request: bool = False
    reason: str = ""


class CompactionPolicy:
    """Strategy interface: decide *what* to compact, one step at a time.

    Policies are stateless with respect to any particular store (all
    state lives in the arguments), so one instance may be shared across
    every shard of an engine. ``level0`` is newest-first; ``levels`` is
    the list of deeper levels, L1 first.
    """

    #: Registry key, recorded in engine manifests.
    name: str = "?"

    def needs_work(
        self, level0: Sequence[SSTable], levels: Sequence[Sequence[SSTable]],
        fanout: int,
    ) -> bool:
        """Structural pressure alone (ignores explicit requests)."""
        raise NotImplementedError  # pragma: no cover - interface

    def plan(
        self,
        level0: Sequence[SSTable],
        levels: Sequence[Sequence[SSTable]],
        *,
        fanout: int,
        universe: int,
        requested: bool,
        stale_uids: Set[int],
    ) -> Optional[CompactionStep]:
        """The next bounded step, or ``None`` when the store is settled."""
        raise NotImplementedError  # pragma: no cover - interface

    def to_params(self) -> Dict[str, object]:
        """JSON-safe construction parameters (for the engine manifest)."""
        return {"name": self.name}

    def _full_converge_step(
        self,
        level0: Sequence[SSTable],
        levels: Sequence[Sequence[SSTable]],
        reason: str,
    ) -> Optional[CompactionStep]:
        """One step folding every run into a single tombstone-free L1 run
        — the converge-everything move :class:`FullMergePolicy` always
        makes and the others fall back to on an explicit request."""
        inputs = list(level0)
        for level in levels:
            inputs.extend(level)
        if not inputs:
            return None
        return CompactionStep(
            kind="merge",
            units=(MergeUnit(tuple(inputs)),),
            output_level=1,
            drop_tombstones=True,
            clears_request=True,
            reason=reason,
        )

    def _rebuild_step(
        self,
        level0: Sequence[SSTable],
        levels: Sequence[Sequence[SSTable]],
        stale_uids: Set[int],
    ) -> Optional[CompactionStep]:
        """A rebuild step for the first still-live stale run, if any.

        Rebuilds go one run at a time on purpose: each step rewrites
        exactly one run's entries (and that run's filter), so the write
        lock the executor holds is bounded by a single run — the partial
        filter rebuild the auto-tuner's backend switches ride on.
        """
        if not stale_uids:
            return None
        for li, level in enumerate([list(level0)] + [list(l) for l in levels]):
            for run in level:
                if run.uid in stale_uids:
                    return CompactionStep(
                        kind="rebuild",
                        units=(MergeUnit((run,), span=run.slice_bounds),),
                        output_level=li,
                        drop_tombstones=False,
                        reason=f"filter rebuild of run {run.uid} (L{li})",
                    )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_params()})"


class FullMergePolicy(CompactionPolicy):
    """The seed behaviour: merge everything into a single bottom run.

    One step folds all runs (level 0 plus every deeper level) into one
    tombstone-free run at L1. A pending filter-rebuild request is
    satisfied by the same full merge — exactly what the seed store's
    ``compact()`` did — so engines built without naming a policy behave
    bit-for-bit as before this subsystem existed.
    """

    name = "full"

    def needs_work(self, level0, levels, fanout) -> bool:
        return len(level0) >= fanout

    def plan(self, level0, levels, *, fanout, universe, requested, stale_uids):
        if not (requested or stale_uids or self.needs_work(level0, levels, fanout)):
            return None
        return self._full_converge_step(level0, levels, "full merge")


class TieredPolicy(CompactionPolicy):
    """Size-tiered: merge a level's similar-sized runs one level down.

    Flushes stack up in level 0; when any level holds ``fanout`` runs,
    one step merges *that level only* into a single run prepended
    (newest-first) to the level below. Tombstones drop only when the
    output becomes the oldest data in the store. Merges can cascade —
    the step that fills level ``k + 1`` makes the next
    :meth:`plan` call target it — but each step stays bounded by one
    level's data.

    An explicit :meth:`~repro.lsm.store.LSMStore.request_compaction`
    (the converge-everything escape hatch, e.g. after a filter-factory
    swap on the seed path) collapses the whole store into one bottom
    run, exactly like :class:`FullMergePolicy`.
    """

    name = "tiered"

    def needs_work(self, level0, levels, fanout) -> bool:
        if len(level0) >= fanout:
            return True
        return any(len(level) >= fanout for level in levels)

    def plan(self, level0, levels, *, fanout, universe, requested, stale_uids):
        if requested:
            step = self._full_converge_step(
                level0, levels, "requested full converge"
            )
            if step is not None:
                return step
        tiers: List[List[SSTable]] = [list(level0)] + [list(l) for l in levels]
        for li, tier in enumerate(tiers):
            if len(tier) < fanout or not tier:
                continue
            deeper_empty = all(len(t) == 0 for t in tiers[li + 1:])
            return CompactionStep(
                kind="merge",
                units=(MergeUnit(tuple(tier)),),
                output_level=li + 1,
                drop_tombstones=deeper_empty,
                reason=f"tiered merge of L{li} ({len(tier)} runs)",
            )
        return self._rebuild_step(level0, levels, stale_uids)


class LeveledPolicy(CompactionPolicy):
    """Deep leveled with overlapping-range slicing: partial rewrites only.

    Every deep level is a set of key-disjoint *slices* whose owning
    spans partition ``[0, universe)``. When level 0 fills (or a converge
    is requested), one step merges **all** level-0 runs down — but only
    into the L1 slices whose owning span actually contains a level-0
    key. Untouched slices keep their runs *and their filters*;
    rewritten regions re-chunk into fresh ``slice_target``-entry slices,
    so slices never grow without bound and no separate split pass exists.

    Levels past L1 grow by *budget pressure*: level ``k`` owns a budget
    of ``l1_budget * level_fanout**(k-1)`` entries, and when it exceeds
    that, one step pushes its largest slice down into the overlapping
    slices of level ``k + 1`` — a bounded, span-restricted merge exactly
    like the L0 push-down, leaving an empty placeholder slice behind so
    the level's spans keep tiling the universe. Geometric budgets mean
    each entry is rewritten ``O(log_fanout(N))`` times on its way to the
    deepest level — classic leveled shape. Tombstones (and TTL-expired
    entries) are dropped only when a step's output level is the deepest
    holding data; anywhere shallower they must keep shadowing older
    versions below.

    Contiguous overlapped slices are rewritten as one merge unit;
    disjoint overlapped regions become separate units of the same step,
    each restricted to its own owning span — which is what keeps a
    sparse, clustered ingest from rewriting the whole keyspace.

    Filter-rebuild requests (an auto-tuner backend switch) are served by
    the shared per-run rebuild steps: only the slices tagged stale are
    rewritten, one bounded step each.
    """

    name = "leveled"

    def __init__(
        self,
        slice_target: int = 2048,
        level_fanout: int = 8,
        l1_budget: Optional[int] = None,
    ) -> None:
        if slice_target < 1:
            raise InvalidParameterError("slice_target must be >= 1")
        if level_fanout < 2:
            raise InvalidParameterError("level_fanout must be >= 2")
        self.slice_target = int(slice_target)
        self.level_fanout = int(level_fanout)
        # ``None`` keeps the single-sliced-level topology (no budgets):
        # deep levels are opt-in, so existing leveled configurations keep
        # their exact shape and write amplification.
        self.l1_budget = None if l1_budget is None else int(l1_budget)
        if self.l1_budget is not None and self.l1_budget < 1:
            raise InvalidParameterError("l1_budget must be >= 1")

    def to_params(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "slice_target": self.slice_target,
            "level_fanout": self.level_fanout,
            "l1_budget": self.l1_budget,
        }

    def level_budget(self, level: int) -> Optional[int]:
        """Entry budget of deep level ``level`` (1-based): geometric in
        ``level_fanout`` from ``l1_budget`` (``None`` when unbudgeted)."""
        if self.l1_budget is None:
            return None
        return self.l1_budget * self.level_fanout ** (level - 1)

    def needs_work(self, level0, levels, fanout) -> bool:
        if len(level0) >= fanout:
            return True
        return self._over_budget(levels) is not None

    def _over_budget(self, levels) -> Optional[int]:
        """0-based index of the shallowest deep level over its budget
        (ignoring the deepest populated level — data must settle
        somewhere), or ``None``."""
        if self.l1_budget is None:
            return None
        deepest = len(levels) - 1
        while deepest >= 0 and not levels[deepest]:
            deepest -= 1
        for li, level in enumerate(levels):
            if li >= deepest:
                break
            size = sum(len(run) for run in level)
            if size > self.level_budget(li + 1):
                return li
        # The deepest populated level may still trigger growth of a new
        # level below it once it seriously overshoots (one extra fanout
        # of slack avoids ping-ponging a freshly-grown bottom).
        if deepest >= 0:
            size = sum(len(run) for run in levels[deepest])
            if size > self.level_budget(deepest + 1) * self.level_fanout:
                return deepest
        return None

    def plan(self, level0, levels, *, fanout, universe, requested, stale_uids):
        push_l0 = len(level0) >= fanout or (requested and level0)
        if push_l0:
            slices = list(levels[0]) if levels else []
            units = self._merge_units(level0, slices, universe)
            deeper_occupied = any(len(level) > 0 for level in levels[1:])
            return CompactionStep(
                kind="merge",
                units=tuple(units),
                output_level=1,
                # Tombstones may only vanish at the deepest data: with
                # L2+ occupied they still shadow older versions there.
                drop_tombstones=not deeper_occupied,
                clears_request=True,
                reason=(
                    f"leveled merge of {len(level0)} L0 runs into "
                    f"{sum(len(u.inputs) for u in units) - len(level0) * len(units)}"
                    f" of {len(slices)} slices"
                ),
            )
        pushdown = self._pushdown_step(levels, universe)
        if pushdown is not None:
            return pushdown
        # A converge request with nothing buffered above the slices
        # is already satisfied (a factory swap expresses its rebuild
        # through the stale set, not the request flag); the executor
        # clears the flag when plan() returns None.
        return self._rebuild_step(level0, levels, stale_uids)

    def _pushdown_step(
        self, levels: Sequence[Sequence[SSTable]], universe: int
    ) -> Optional[CompactionStep]:
        """One budget-pressure step: push the over-budget level's largest
        slice into the overlapping slices one level down."""
        li = self._over_budget(levels)
        if li is None:
            return None
        level = levels[li]
        # Largest slice first (most pressure relieved per rewrite);
        # ties resolve to the lowest owning span for determinism.
        victim = max(
            level,
            key=lambda run: (
                len(run),
                -(run.slice_bounds[0] if run.slice_bounds else 0),
            ),
        )
        vspan = victim.slice_bounds or victim.key_bounds or (0, universe - 1)
        below = list(levels[li + 1]) if li + 1 < len(levels) else []
        if below:
            spans = slice_spans(below, universe)
            group = [
                run for run, (span_lo, span_hi) in zip(below, spans)
                if span_lo <= vspan[1] and vspan[0] <= span_hi
            ]
            group_spans = [
                span for span in spans
                if span[0] <= vspan[1] and vspan[0] <= span[1]
            ]
            span = (
                min(lo for lo, _ in group_spans),
                max(hi for _, hi in group_spans),
            )
            inputs = (victim, *group)
        else:
            # Growing a brand-new deepest level: the push-down's outputs
            # must tile the whole universe so later pushes route into it.
            span = (0, universe - 1)
            inputs = (victim,)
        deeper_occupied = any(len(l) > 0 for l in levels[li + 2:])
        return CompactionStep(
            kind="merge",
            units=(
                MergeUnit(inputs, span=span, slice_target=self.slice_target),
            ),
            output_level=li + 2,
            drop_tombstones=not deeper_occupied,
            reason=(
                f"budget push-down of {len(victim)}-entry slice "
                f"L{li + 1} -> L{li + 2}"
            ),
        )

    def _merge_units(
        self,
        level0: Sequence[SSTable],
        slices: List[SSTable],
        universe: int,
    ) -> List[MergeUnit]:
        """Group the L0 push-down into span-restricted merge units."""
        l0 = tuple(level0)  # newest first
        if not slices:
            return [MergeUnit(l0, span=(0, universe - 1),
                              slice_target=self.slice_target)]
        spans = slice_spans(slices, universe)
        # A slice is overlapped iff any L0 key lands in its owning span.
        # One searchsorted of every L0 key against the span lower bounds
        # routes all keys at once (the "cheap key_bounds-based overlap
        # routing" the slices exist for).
        lows = np.asarray([lo for lo, _ in spans], dtype=np.uint64)
        overlapped = np.zeros(len(slices), dtype=bool)
        for run in l0:
            keys = run.keys_view()
            if keys.size == 0:
                continue
            owner = np.searchsorted(lows, keys, side="right") - 1
            overlapped[np.unique(owner)] = True
        units: List[MergeUnit] = []
        i = 0
        while i < len(slices):
            if not overlapped[i]:
                i += 1
                continue
            j = i
            while j + 1 < len(slices) and overlapped[j + 1]:
                j += 1
            group = tuple(slices[i:j + 1])
            span = (spans[i][0], spans[j][1])
            units.append(
                MergeUnit(l0 + group, span=span, slice_target=self.slice_target)
            )
            i = j + 1
        # Every L0 key has an owning slice, so the groups jointly cover
        # all of level 0 (inputs outside a unit's span are clipped by
        # the executor).
        return units


def slice_spans(
    slices: Sequence[SSTable], universe: int
) -> List[Tuple[int, int]]:
    """The owning key spans of a leveled level, partitioning the universe.

    Each slice carries the bounds it was created with
    (:attr:`~repro.lsm.sstable.SSTable.slice_bounds`); a run adopted
    into a leveled level without them (e.g. a pre-slicing bottom run
    from an old checkpoint) falls back to spans derived from the slices'
    key bounds: slice ``i`` owns from its first key (0 for the first
    slice) up to just before slice ``i + 1``'s first key (``universe-1``
    for the last). Either way the spans tile ``[0, universe)`` with no
    gaps, so every key has exactly one owning slice.
    """
    if not slices:
        return []
    if all(s.slice_bounds is not None for s in slices):
        return [s.slice_bounds for s in slices]  # type: ignore[misc]
    lows = [0]
    for s in slices[1:]:
        bounds = s.key_bounds
        lows.append(bounds[0] if bounds else lows[-1])
    spans = []
    for i, lo in enumerate(lows):
        hi = (lows[i + 1] - 1) if i + 1 < len(lows) else universe - 1
        spans.append((lo, hi))
    return spans


#: Registry of policy names for the CLI / manifest round trip.
POLICIES = {
    FullMergePolicy.name: FullMergePolicy,
    TieredPolicy.name: TieredPolicy,
    LeveledPolicy.name: LeveledPolicy,
}


def policy_names() -> List[str]:
    """All registered compaction-policy names, sorted."""
    return sorted(POLICIES)


def resolve_policy(
    spec: "str | CompactionPolicy | Dict[str, object] | None",
) -> CompactionPolicy:
    """Coerce a name, params dict, or instance into a policy object.

    ``None`` yields the backward-compatible :class:`FullMergePolicy`.
    A dict is the :meth:`CompactionPolicy.to_params` form recorded in
    engine manifests.
    """
    if spec is None:
        return FullMergePolicy()
    if isinstance(spec, CompactionPolicy):
        return spec
    if isinstance(spec, str):
        if spec not in POLICIES:
            raise InvalidParameterError(
                f"unknown compaction policy {spec!r}; pick one of {policy_names()}"
            )
        return POLICIES[spec]()
    if isinstance(spec, dict):
        params = dict(spec)
        name = params.pop("name", None)
        if name not in POLICIES:
            raise InvalidParameterError(f"unknown compaction policy {name!r}")
        return POLICIES[name](**params)
    raise InvalidParameterError(
        f"cannot resolve a compaction policy from {type(spec).__name__}"
    )
