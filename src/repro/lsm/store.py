"""A miniature LSM key-value store with pluggable range filters.

This is the application substrate the paper's introduction motivates:
key-value stores (RocksDB-style) keep many immutable sorted runs on disk
and consult an in-memory filter per run before reading it. The store
implements:

* a memtable flushed into level-0 runs at a size threshold;
* a pluggable compaction axis (:mod:`repro.lsm.compaction`): level 0
  plus a stack of deeper levels, maintained by a
  :class:`~repro.lsm.compaction.CompactionPolicy` in bounded *steps* —
  the default :class:`~repro.lsm.compaction.FullMergePolicy` reproduces
  the seed behaviour (one bottom run, tombstones dropped there), while
  tiered and leveled policies bound how much data a single step
  rewrites;
* point gets, range scans and emptiness probes that consult each run's
  range filter first;
* an I/O ledger (:class:`IoStats`) separating necessary reads, reads
  saved by filters, and wasted reads caused by filter false positives —
  the quantity an adversary inflates when the filter is not robust
  (§1, §6.7) — plus flush/compaction write volumes, which make write
  amplification a first-class measured quantity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence,
    Tuple,
)

from repro.errors import InvalidParameterError, InvalidQueryError
from repro.lsm.compaction import (
    CompactionPolicy,
    CompactionStep,
    MergeUnit,
    resolve_policy,
)
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import FilterFactory, SSTable, merge_entries_iter
from repro.lsm.ttl import is_live, unwrap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lsm.cache import BlockCache


@dataclass
class IoStats:
    """Ledger of simulated disk accesses.

    Under a concurrent service the counters are best-effort: readers on
    the same shard may race an increment and under-count. The ledger is
    diagnostic, never consulted for correctness.
    """

    reads_performed: int = 0
    reads_avoided: int = 0
    wasted_reads: int = 0  # filter said "maybe", run had nothing in range
    flushes: int = 0
    compactions: int = 0   # bounded compaction *steps* executed
    cache_hits: int = 0    # block reads served by the block cache
    cache_misses: int = 0  # block reads that went to the simulated disk
    entries_flushed: int = 0    # entries written by memtable flushes
    entries_compacted: int = 0  # entries (re)written by compaction steps
    bytes_compacted: int = 0    # simulated bytes those rewrites cost

    @property
    def total_filter_decisions(self) -> int:
        return self.reads_performed + self.reads_avoided

    @property
    def waste_ratio(self) -> float:
        """Fraction of performed reads that were useless (filter FPs)."""
        return self.wasted_reads / self.reads_performed if self.reads_performed else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of block fetches the cache absorbed."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def write_amplification(self) -> float:
        """Total entries written per user entry flushed.

        ``(entries_flushed + entries_compacted) / entries_flushed`` —
        the classic LSM write-amp ratio at simulation granularity. 0
        before the first flush. Leveled compaction exists to keep this
        number's compaction term proportional to the data actually
        touched instead of the whole store.
        """
        if not self.entries_flushed:
            return 0.0
        return (self.entries_flushed + self.entries_compacted) / self.entries_flushed

    def merge(self, other: "IoStats") -> "IoStats":
        """Component-wise sum with ``other``; returns a new ledger."""
        return IoStats(
            reads_performed=self.reads_performed + other.reads_performed,
            reads_avoided=self.reads_avoided + other.reads_avoided,
            wasted_reads=self.wasted_reads + other.wasted_reads,
            flushes=self.flushes + other.flushes,
            compactions=self.compactions + other.compactions,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            entries_flushed=self.entries_flushed + other.entries_flushed,
            entries_compacted=self.entries_compacted + other.entries_compacted,
            bytes_compacted=self.bytes_compacted + other.bytes_compacted,
        )

    @classmethod
    def aggregate(cls, ledgers: "Iterable[IoStats]") -> "IoStats":
        """Sum many ledgers (the per-shard view of a sharded engine)."""
        total = cls()
        for ledger in ledgers:
            total = total.merge(ledger)
        return total


class LSMStore:
    """LSM key-value store over integer keys.

    Parameters
    ----------
    universe:
        Exclusive key-universe bound.
    memtable_limit:
        Flush the memtable into a level-0 run at this many entries.
    compaction_fanout:
        A level that accumulates this many runs is compaction pressure
        (level 0 for every policy; deeper levels too under tiered).
    filter_factory:
        Per-run range-filter builder ``(keys, universe) -> RangeFilter``;
        ``None`` disables filtering (every probe reads the run).
    auto_compact:
        When ``True`` (default) a flush that leaves the store needing
        compaction compacts immediately (all steps, inline). ``False``
        defers: the store only records that compaction is due
        (:attr:`needs_compaction`), fires :attr:`compaction_hook` if one
        is set, and an external scheduler — e.g.
        :class:`repro.engine.scheduler.CompactionScheduler` — runs
        bounded :meth:`compact_step` calls at convenient points.
    compaction_policy:
        A :class:`~repro.lsm.compaction.CompactionPolicy` instance, a
        registered policy name (``"full"``/``"tiered"``/``"leveled"``),
        or ``None`` for the backward-compatible full-merge default.
    """

    def __init__(
        self,
        universe: int = 2**64,
        *,
        memtable_limit: int = 1024,
        compaction_fanout: int = 4,
        filter_factory: Optional[FilterFactory] = None,
        auto_compact: bool = True,
        compaction_policy: "str | CompactionPolicy | None" = None,
    ) -> None:
        if universe <= 0:
            raise InvalidParameterError("universe must be positive")
        if memtable_limit < 1:
            raise InvalidParameterError("memtable_limit must be >= 1")
        if compaction_fanout < 2:
            raise InvalidParameterError("compaction_fanout must be >= 2")
        self.universe = int(universe)
        self._memtable_limit = int(memtable_limit)
        self._fanout = int(compaction_fanout)
        self._factory = filter_factory
        self._auto_compact = bool(auto_compact)
        self._policy = resolve_policy(compaction_policy)
        self._memtable = MemTable()
        self._level0: List[SSTable] = []  # newest first
        self._levels: List[List[SSTable]] = []  # L1, L2, ... (older, deeper)
        self._ttl_now = 0  # logical TTL clock; monotone (see set_ttl_now)
        self._runs_version = 0
        self._compaction_requested = False
        self._stale_filter_uids: set[int] = set()
        self._cache: Optional["BlockCache"] = None
        #: Optional ``(q_lo, q_hi, empty) -> None`` hook the batch kernel
        #: calls after answering a sub-batch (see repro.engine.autotune).
        self.query_observer: Optional[Any] = None
        #: Optional ``(store) -> None`` hook fired by :meth:`flush` when
        #: the store is left needing compaction under
        #: ``auto_compact=False`` — the seam an external scheduler plugs
        #: into so a deferred-compaction store can never strand a
        #: pending :meth:`request_compaction` behind a flush nobody
        #: observed (see repro.engine.scheduler).
        self.compaction_hook: Optional[Callable[["LSMStore"], None]] = None
        # Serialises mutations (put/delete/flush/compact) so a flush can
        # never tear the memtable swap out from under another writer.
        # Reader-vs-writer isolation is the *caller's* job — the service
        # layer wraps each shard in a reader/writer lock; the bare store
        # stays single-reader like the rest of the reproduction.
        self._write_lock = threading.RLock()
        self.stats = IoStats()

    @classmethod
    def from_runs(
        cls,
        universe: int,
        *,
        level0: Sequence[SSTable],
        bottom: Optional[SSTable] = None,
        levels: Optional[Sequence[Sequence[SSTable]]] = None,
        memtable_limit: int = 1024,
        compaction_fanout: int = 4,
        filter_factory: Optional[FilterFactory] = None,
        auto_compact: bool = True,
        compaction_policy: "str | CompactionPolicy | None" = None,
        ttl_now: int = 0,
    ) -> "LSMStore":
        """Rebuild a store around already-constructed runs.

        This is the recovery path of :mod:`repro.engine.persist`: runs
        (and their filters) come back from disk exactly as snapshotted,
        so queries after a reopen behave identically to before it.
        ``levels`` is the full deep-level topology (L1 first);
        ``bottom`` is the pre-slicing single-bottom shorthand kept for
        old callers and old manifests — passing both is an error.
        ``ttl_now`` restores the logical TTL clock the manifest
        recorded, so expired entries stay invisible across a reopen.
        """
        if bottom is not None and levels is not None:
            raise InvalidParameterError("pass bottom or levels, not both")
        store = cls(
            universe,
            memtable_limit=memtable_limit,
            compaction_fanout=compaction_fanout,
            filter_factory=filter_factory,
            auto_compact=auto_compact,
            compaction_policy=compaction_policy,
        )
        store._ttl_now = int(ttl_now)
        store._level0 = list(level0)
        if levels is not None:
            store._levels = [list(level) for level in levels if level]
        elif bottom is not None:
            store._levels = [[bottom]]
        return store

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.universe:
            raise InvalidQueryError(f"key {key} outside universe [0, {self.universe})")

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite a key."""
        self._check_key(key)
        if value is TOMBSTONE:
            raise InvalidParameterError("use delete() instead of writing the tombstone")
        with self._write_lock:
            self._memtable.put(key, value)
            self._maybe_flush()

    def delete(self, key: int) -> None:
        """Delete a key (tombstone until compaction)."""
        self._check_key(key)
        with self._write_lock:
            self._memtable.delete(key)
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self._memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Force the memtable into a new level-0 run.

        The whole transition — drain the memtable, install the run —
        happens under the write lock, so a concurrent writer can never
        slip an entry into the memtable between the snapshot and the
        clear (the lost-write window the unguarded version had). A flush
        that leaves the store needing compaction either compacts inline
        (``auto_compact=True``) or fires :attr:`compaction_hook`, so a
        deferred store with no engine watching it still surfaces the
        pending work.
        """
        with self._write_lock:
            entries = self._memtable.items_sorted()
            if not entries:
                return
            run = SSTable(entries, self.universe, self._factory)
            self._level0.insert(0, run)  # newest first
            self._memtable = MemTable()
            self._runs_version += 1
            self.stats.flushes += 1
            self.stats.entries_flushed += len(entries)
            if self.needs_compaction:
                if self._auto_compact:
                    self.compact()
                elif self.compaction_hook is not None:
                    self.compaction_hook(self)

    # ------------------------------------------------------------------
    # TTL clock
    # ------------------------------------------------------------------
    @property
    def ttl_now(self) -> int:
        """The logical TTL clock expiry is judged against (starts at 0)."""
        return self._ttl_now

    def _is_live(self, value: Any) -> bool:
        """Visible at the current clock: not a tombstone, not expired."""
        return value is not TOMBSTONE and is_live(value, self._ttl_now)

    def set_ttl_now(self, now: int) -> None:
        """Advance the logical TTL clock (monotone; going back raises).

        Advancing the clock can only turn entries invisible, never
        visible — which is what makes cached "empty" verdicts (the batch
        planner's negative cache) stay correct across an advance.
        ``runs_version`` is still bumped: process-mode snapshot workers
        and planner entries tagged with the old clock must re-verify, as
        their run-set view predates the new visibility cut. An advance
        that leaves aged-out work behind (a bottom run now fully
        expired) triggers compaction exactly like a flush would.
        """
        now = int(now)
        if now < self._ttl_now:
            raise InvalidParameterError(
                f"TTL clock may not go backwards ({self._ttl_now} -> {now})"
            )
        if now == self._ttl_now:
            return
        with self._write_lock:
            self._ttl_now = now
            self._runs_version += 1
            if self.needs_compaction:
                if self._auto_compact:
                    self.compact()
                elif self.compaction_hook is not None:
                    self.compaction_hook(self)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _expire_candidates(self) -> List[SSTable]:
        """Bottom-level runs that can be aged out whole at the current
        clock.

        Only the deepest level qualifies: an expired run there shadows
        nothing (there is nothing older below), so removing it cannot
        resurrect an overwritten value. Within that level, a sliced
        (leveled) topology is key-disjoint — every fully-expired slice
        is fair game — while an age-ordered (tiered/full) level may only
        shed its *oldest* run per step, since a newer expired run still
        shadows older entries of the same keys. Mixed levels (an adopted
        pre-slicing run among slices) are skipped conservatively; reads
        are exact regardless, aging out is only an optimisation.
        """
        if not self._levels:
            return []
        bottom = self._levels[-1]
        if not bottom:
            return []
        if all(run.slice_bounds is not None for run in bottom):
            return [run for run in bottom if run.fully_expired(self._ttl_now)]
        if any(run.slice_bounds is not None for run in bottom):
            return []
        oldest = bottom[-1]
        return [oldest] if oldest.fully_expired(self._ttl_now) else []

    def _plan_expire_step(self) -> Optional[CompactionStep]:
        """A metadata-only step aging out fully-expired bottom runs."""
        candidates = self._expire_candidates()
        if not candidates:
            return None
        units = tuple(
            MergeUnit((run,), span=run.slice_bounds) for run in candidates
        )
        return CompactionStep(
            kind="expire",
            units=units,
            output_level=len(self._levels),
            drop_tombstones=True,
            reason=f"aged out {len(units)} fully-expired bottom run(s) "
                   f"at t={self._ttl_now}",
        )

    def _plan_step(self) -> Optional[CompactionStep]:
        """Ask the policy for the next step; prune dangling stale uids.

        Fully-expired bottom runs are aged out before the policy is
        consulted — the expire step is policy-independent (it follows
        from the recency invariant alone) and consuming it first keeps
        the :meth:`compact` loop converging.
        """
        if self._stale_filter_uids:
            live = {run.uid for run in self._runs()}
            self._stale_filter_uids &= live
        expire = self._plan_expire_step()
        if expire is not None:
            return expire
        return self._policy.plan(
            self._level0,
            self._levels,
            fanout=self._fanout,
            universe=self.universe,
            requested=self._compaction_requested,
            stale_uids=self._stale_filter_uids,
        )

    def compact(self) -> None:
        """Run compaction steps until the policy reports the store settled.

        Under the default :class:`~repro.lsm.compaction.FullMergePolicy`
        this is exactly the seed behaviour — one step merges every run
        into a single tombstone-free bottom run, (re)built with the
        *current* filter factory, so a factory swapped in by
        :meth:`set_filter_factory` takes over every key of the store
        here, not just future flushes. Under tiered/leveled policies the
        loop may run several bounded steps back to back; callers that
        must not hold the store that long use :meth:`compact_step`.
        """
        with self._write_lock:
            while True:
                step = self._plan_step()
                if step is None:
                    self._compaction_requested = False
                    return
                self._apply_step(step)

    def compact_step(self) -> bool:
        """Execute exactly one bounded compaction step, if one is due.

        Returns ``True`` when a step ran. This is the unit the deferred
        scheduler and the serving layer's background worker drain — a
        shard write lock is held for one step's rewrite, never for a
        whole-store merge.
        """
        with self._write_lock:
            step = self._plan_step()
            if step is None:
                self._compaction_requested = False
                return False
            self._apply_step(step)
            return True

    def _apply_expire(self, step: CompactionStep) -> None:
        """Age out fully-expired bottom runs; caller holds the write lock.

        Metadata-only: no entry is read or rewritten. A sliced run is
        replaced by an empty placeholder slice holding its owning span
        (slice spans must keep tiling the universe — the same invariant
        :meth:`_build_outputs` preserves for fully-tombstoned spans); a
        non-sliced run is simply removed.
        """
        replacements: dict[int, List[SSTable]] = {}
        for unit in step.units:
            run = unit.inputs[0]
            if run.slice_bounds is not None:
                replacements[run.uid] = [
                    SSTable([], self.universe, None,
                            slice_bounds=run.slice_bounds)
                ]
            else:
                replacements[run.uid] = []
        bottom = self._levels[-1]
        self._levels[-1] = [
            out
            for run in bottom
            for out in replacements.get(run.uid, [run])
        ]
        while self._levels and not self._levels[-1]:
            self._levels.pop()
        self._stale_filter_uids -= set(replacements)
        self._runs_version += 1
        self.stats.compactions += 1

    def _apply_step(self, step: CompactionStep) -> None:
        """Execute one planned step; caller holds the write lock."""
        if step.kind == "expire":
            self._apply_expire(step)
            return
        consumed: set[int] = set()
        outputs_by_unit: List[Tuple[MergeUnit, List[SSTable]]] = []
        written_entries = 0
        written_bytes = 0
        for unit in step.units:
            consumed.update(run.uid for run in unit.inputs)
            if step.kind == "rebuild":
                source = unit.inputs[0]
                entries = source.entries()
                rebuilt = SSTable(
                    entries,
                    self.universe,
                    self._factory if entries else None,
                    slice_bounds=source.slice_bounds,
                )
                outputs = [rebuilt]
            else:
                merged = merge_entries_iter(
                    unit.inputs,
                    drop_tombstones=step.drop_tombstones,
                    span=unit.span,
                    expire_before=self._ttl_now if self._ttl_now else None,
                )
                outputs = self._build_outputs(merged, unit)
            for out in outputs:
                written_entries += len(out)
                written_bytes += out.nbytes
            outputs_by_unit.append((unit, outputs))
        if step.kind == "rebuild":
            self._replace_in_place(outputs_by_unit)
        else:
            self._install_merge(step, consumed, outputs_by_unit)
        self._stale_filter_uids -= consumed
        if step.clears_request:
            self._compaction_requested = False
        self._runs_version += 1
        self.stats.compactions += 1
        self.stats.entries_compacted += written_entries
        self.stats.bytes_compacted += written_bytes

    def _build_outputs(self, merged, unit: MergeUnit) -> List[SSTable]:
        """Materialise a unit's merged stream into output run(s).

        With a ``slice_target`` the stream is chunked into slices of
        roughly that many entries whose owning bounds partition
        ``unit.span`` — the boundary between two consecutive slices cuts
        at the later slice's first key, the first/last slice inherit the
        span's edges, so the level's spans stay a gap-free tiling no
        matter how the data skews.
        """
        target = unit.slice_target
        if target is None:
            entries = list(merged)
            if not entries:
                return []
            return [SSTable(entries, self.universe, self._factory,
                            slice_bounds=unit.span)]
        chunks: List[List[Tuple[int, Any]]] = []
        current: List[Tuple[int, Any]] = []
        for entry in merged:
            current.append(entry)
            if len(current) >= target:
                chunks.append(current)
                current = []
        if current:
            chunks.append(current)
        if not chunks:
            # Everything in the span was tombstoned away. The span must
            # stay owned (slice spans tile the universe — the routing
            # invariant), so leave one empty, filterless slice holding
            # it; a later merge into the span consumes it for free.
            return [SSTable([], self.universe, None, slice_bounds=unit.span)]
        span_lo, span_hi = unit.span if unit.span is not None else (
            0, self.universe - 1
        )
        outputs: List[SSTable] = []
        for i, chunk in enumerate(chunks):
            lo = span_lo if i == 0 else chunk[0][0]
            hi = span_hi if i == len(chunks) - 1 else chunks[i + 1][0][0] - 1
            outputs.append(
                SSTable(chunk, self.universe, self._factory, slice_bounds=(lo, hi))
            )
        return outputs

    def _replace_in_place(self, outputs_by_unit) -> None:
        """Swap rebuilt runs into the positions their sources held."""
        for unit, outputs in outputs_by_unit:
            source = unit.inputs[0]
            replacement = outputs[0]
            for level in [self._level0] + self._levels:
                for i, run in enumerate(level):
                    if run.uid == source.uid:
                        level[i] = replacement
                        break

    def _install_merge(self, step, consumed: set, outputs_by_unit) -> None:
        """Remove a merge step's inputs and splice in its outputs."""
        self._level0 = [r for r in self._level0 if r.uid not in consumed]
        for li in range(len(self._levels)):
            if li < step.output_level - 1:
                # A sliced input consumed from a level *above* the output
                # (a budget push-down victim) leaves an empty placeholder
                # behind so the level's owning spans keep tiling the
                # universe — same pattern as TTL expiry.
                self._levels[li] = self._coalesce_empty_slices([
                    r if r.uid not in consumed else
                    SSTable([], self.universe, None,
                            slice_bounds=r.slice_bounds)
                    for r in self._levels[li]
                    if r.uid not in consumed or r.slice_bounds is not None
                ])
            else:
                self._levels[li] = [
                    r for r in self._levels[li] if r.uid not in consumed
                ]
        while len(self._levels) < step.output_level:
            self._levels.append([])
        target = self._levels[step.output_level - 1]
        sliced = any(
            out.slice_bounds is not None
            for _, outputs in outputs_by_unit
            for out in outputs
        )
        for _, outputs in outputs_by_unit:
            if sliced:
                target.extend(outputs)
            else:
                # Age-ordered level (tiered): the merged run is newer
                # than everything already below, so it goes in front.
                target[:0] = outputs
        if sliced:
            target.sort(key=lambda run: (
                run.slice_bounds[0] if run.slice_bounds else 0
            ))
        # Drop empty trailing levels so topology introspection stays tidy.
        while self._levels and not self._levels[-1]:
            self._levels.pop()

    def _coalesce_empty_slices(self, level: List[SSTable]) -> List[SSTable]:
        """Fuse runs of span-adjacent empty placeholder slices into one.

        Repeated budget push-downs evacuate a level slice by slice, each
        leaving an empty placeholder so the spans keep tiling. Without
        coalescing those placeholders accumulate without bound and every
        probe pays a per-run check for each; fusing contiguous empties
        keeps the level's run count proportional to its *live* data.
        ``level`` must be span-sorted (sliced levels always are).
        """
        out: List[SSTable] = []
        for run in level:
            prev = out[-1] if out else None
            if (
                prev is not None
                and len(run) == 0 and len(prev) == 0
                and run.slice_bounds is not None
                and prev.slice_bounds is not None
                and prev.slice_bounds[1] + 1 == run.slice_bounds[0]
            ):
                out[-1] = SSTable(
                    [], self.universe, None,
                    slice_bounds=(prev.slice_bounds[0], run.slice_bounds[1]),
                )
            else:
                out.append(run)
        return out

    def set_filter_factory(self, factory: Optional[FilterFactory]) -> None:
        """Swap the per-run filter builder for *future* runs.

        Existing runs keep the filters they were built with (they are
        immutable); the next flush or compaction uses ``factory``. This
        is the mechanism :mod:`repro.engine.autotune` uses to retarget a
        shard — typically paired with :meth:`request_filter_rebuild` so
        existing runs converge to the new backend step by step. Never
        changes any query result: filters only prune.

        Deliberately lock-free: a single attribute store is atomic under
        the GIL, and taking the write lock here would stall the caller
        (the auto-tuner, holding its own lock with query observers
        queued behind it) for the full duration of any in-flight
        compaction. A swap landing mid-compaction simply means that
        compaction finishes under the old factory — the paired rebuild
        request queues the work that converges it.
        """
        self._factory = factory

    @property
    def filter_factory(self) -> Optional[FilterFactory]:
        """The per-run filter builder currently in effect."""
        return self._factory

    def request_compaction(self) -> None:
        """Force :attr:`needs_compaction` on even below the fanout.

        The converge-everything escape hatch: the policy satisfies it
        with whatever "settle the store" means under its topology (a
        full merge for the default and tiered policies, an L0 push-down
        for leveled). A no-op once the compaction machinery drains the
        store. Lock-free like :meth:`set_filter_factory` (same stall
        concern); the unlocked emptiness peek can at worst set the flag
        for a store that just compacted to nothing, which the next
        :meth:`compact` clears for free.
        """
        if self._level0 or self._levels:
            self._compaction_requested = True

    def request_filter_rebuild(self) -> None:
        """Tag every current run's filter as stale.

        The compaction machinery then rewrites the tagged runs under the
        *current* filter factory — as one full merge under the default
        policy (the seed behaviour a backend switch used to trigger), or
        as bounded per-run/per-slice rebuild steps under tiered/leveled,
        so a backend switch on a big sliced shard costs one slice per
        step instead of a monolithic whole-shard merge. Runs rewritten
        by ordinary merges shed their stale tag for free. Lock-free for
        the same reason as :meth:`set_filter_factory`; a run installed
        by an in-flight compaction racing this call may miss its tag
        (and keep a previous backend's filter), which is self-healing —
        filters only prune, and the auto-tuner's next decision on a
        still-misbehaving shard tags the survivors again.
        """
        uids = {run.uid for run in self._runs()}
        if uids:
            self._stale_filter_uids |= uids

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def attach_cache(self, cache: Optional["BlockCache"]) -> None:
        """Route run reads through ``cache`` (``None`` detaches).

        With a cache attached, probes fetch block-granular pieces of each
        run through the shared LRU instead of whole-run ``scan`` calls;
        hit/miss counts fold into :attr:`stats`. Runs are immutable, so
        attaching or detaching never changes any query result.
        """
        self._cache = cache

    @property
    def cache(self) -> Optional["BlockCache"]:
        return self._cache

    def _run_scan(self, run: SSTable, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """``run.scan`` through the block cache when one is attached."""
        if self._cache is None:
            return run.scan(lo, hi)
        matches, hits, misses = self._cache.scan(run, lo, hi)
        self.stats.cache_hits += hits
        self.stats.cache_misses += misses
        return matches

    def _runs(self) -> List[SSTable]:
        """All runs, in recency order: level 0 newest first, then each
        deeper level (slices within a leveled level are key-disjoint, so
        their relative order carries no recency meaning)."""
        runs = list(self._level0)
        for level in self._levels:
            runs.extend(level)
        return runs

    def _prune(self, run: SSTable, lo: int, hi: int) -> bool:
        """Can ``run`` be skipped for ``[lo, hi]`` without reading it?

        Two exact-or-conservative gates: the run's key bounds (a fence
        check — decisive for leveled slices, whose spans tile the
        keyspace) and then its range filter. Both count as an avoided
        read when they prune.
        """
        if not run.overlaps(lo, hi):
            return True
        return not run.may_contain_range(lo, hi)

    def get(self, key: int) -> Optional[Any]:
        """Point lookup through memtable then runs (newest wins)."""
        self._check_key(key)
        found, value = self._memtable.get(key)
        if found:
            return unwrap(value) if self._is_live(value) else None
        for run in self._runs():
            if self._prune(run, key, key):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            if self._cache is None:
                found, value = run.get(key)
            else:
                matches = self._run_scan(run, key, key)
                found = bool(matches)
                value = matches[0][1] if matches else None
            if found:
                return unwrap(value) if self._is_live(value) else None
            self.stats.wasted_reads += 1
        return None

    def range_scan(self, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """All live ``(key, value)`` pairs in ``[lo, hi]``, in key order."""
        if lo > hi:
            raise InvalidQueryError(f"scan range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        merged: dict[int, Any] = {}
        for key, value in self._memtable.scan(lo, hi):
            merged.setdefault(key, value)
        for run in self._runs():  # recency order: setdefault keeps newest
            if self._prune(run, lo, hi):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            matches = self._run_scan(run, lo, hi)
            if not matches:
                self.stats.wasted_reads += 1
            for key, value in matches:
                merged.setdefault(key, value)
        return [
            (k, unwrap(v)) for k, v in sorted(merged.items())
            if self._is_live(v)
        ]

    def range_empty(self, lo: int, hi: int) -> bool:
        """Approximate-then-exact emptiness probe for ``[lo, hi]``.

        Unlike :meth:`range_scan` this never materialises the merged
        result: it walks sources newest first and returns ``False`` at
        the first key whose newest version is live. Only tombstoned keys
        (which shadow older versions) need remembering.
        """
        if lo > hi:
            raise InvalidQueryError(f"probe range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        shadowed: set[int] = set()
        for key, value in self._memtable.scan(lo, hi):
            if self._is_live(value):
                return False  # newest version of this key, and it is live
            shadowed.add(key)  # tombstoned or expired: shadows older versions
        for run in self._runs():  # recency order
            if self._prune(run, lo, hi):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            matches = self._run_scan(run, lo, hi)
            if not matches:
                self.stats.wasted_reads += 1
                continue
            if not shadowed:
                # Nothing can shadow these entries, so the probe only
                # needs "is anything live?" — a vectorised mask over the
                # matched blocks, no value ever decoded.
                if matches.any_live(self._ttl_now):
                    return False
                shadowed.update(matches.keys_ints())
                continue
            for key, live in matches.items_with_liveness(self._ttl_now):
                if key in shadowed:
                    continue
                if live:
                    return False
                shadowed.add(key)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return len(self._runs())

    @property
    def compaction_policy(self) -> CompactionPolicy:
        """The policy steering this store's compaction."""
        return self._policy

    @property
    def needs_compaction(self) -> bool:
        """True when the policy sees structural pressure, a rebuild
        was explicitly requested via :meth:`request_compaction` /
        :meth:`request_filter_rebuild`, or the TTL clock has left a
        fully-expired bottom run ready to age out."""
        return (
            self._compaction_requested
            or bool(self._stale_filter_uids)
            or self._policy.needs_work(self._level0, self._levels, self._fanout)
            or bool(self._expire_candidates())
        )

    @property
    def runs_version(self) -> int:
        """Monotone counter bumped whenever the run set changes.

        Flushes and compaction steps increment it; memtable writes do
        not. The process-mode serving layer compares it against the
        version recorded at the last checkpoint to decide whether a
        read-only snapshot worker still sees this store's exact level
        topology.
        """
        return self._runs_version

    @property
    def memtable_size(self) -> int:
        """Number of entries currently buffered in the memtable."""
        return len(self._memtable)

    @property
    def level0_runs(self) -> Tuple[SSTable, ...]:
        """The level-0 runs, newest first (read-only view for snapshots)."""
        return tuple(self._level0)

    @property
    def levels(self) -> Tuple[Tuple[SSTable, ...], ...]:
        """The deep levels (L1 first), as read-only views."""
        return tuple(tuple(level) for level in self._levels)

    @property
    def bottom_run(self) -> Optional[SSTable]:
        """The single bottom run, when the topology has one.

        Exact under the default full-merge policy (the seed's
        ``bottom``); ``None`` whenever the deep topology holds anything
        other than exactly one run — sliced or tiered stores have no
        single bottom to name.
        """
        if len(self._levels) == 1 and len(self._levels[0]) == 1:
            return self._levels[0][0]
        return None

    def level_stats(self) -> List[Dict[str, int]]:
        """Per-level topology snapshot: for L0 and each deep level, the
        run/slice count, total entries, and (when the policy budgets
        levels) the level's entry budget.

        Pure introspection — reads the level lists without touching any
        run's data, so it is cheap enough for a stats endpoint to call
        on every snapshot.
        """
        stats: List[Dict[str, int]] = [{
            "level": 0,
            "runs": len(self._level0),
            "entries": sum(len(r) for r in self._level0),
        }]
        budget_of = getattr(self._policy, "level_budget", None)
        for li, level in enumerate(self._levels, start=1):
            row = {
                "level": li,
                "runs": len(level),
                "entries": sum(len(r) for r in level),
                "slices": sum(
                    1 for r in level if r.slice_bounds is not None
                ),
            }
            budget = budget_of(li) if budget_of is not None else None
            if budget is not None:
                row["budget"] = int(budget)
            stats.append(row)
        return stats

    @property
    def stale_filter_uids(self) -> frozenset:
        """Uids of runs tagged for a filter rebuild (diagnostic view)."""
        return frozenset(self._stale_filter_uids)

    @property
    def filter_bits_total(self) -> int:
        """Memory spent on filters across all runs."""
        return sum(run.filter_bits for run in self._runs())

    def __len__(self) -> int:
        """Number of live keys (scans the whole store; for tests/demos)."""
        live: set[int] = set()
        dead: set[int] = set()
        for k, v in self._memtable.items_sorted():
            (live if self._is_live(v) else dead).add(k)
        for run in self._runs():
            for key, value in run.entries():
                if key in live or key in dead:
                    continue
                if self._is_live(value):
                    live.add(key)
                else:
                    dead.add(key)
        return len(live)
