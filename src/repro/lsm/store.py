"""A miniature LSM key-value store with pluggable range filters.

This is the application substrate the paper's introduction motivates:
key-value stores (RocksDB-style) keep many immutable sorted runs on disk
and consult an in-memory filter per run before reading it. The store
implements:

* a memtable flushed into level-0 runs at a size threshold;
* tiered level-0 with compaction into a single bottom run when level-0
  grows past ``compaction_fanout`` runs (tombstones dropped at the
  bottom);
* point gets, range scans and emptiness probes that consult each run's
  range filter first;
* an I/O ledger (:class:`IoStats`) separating necessary reads, reads
  saved by filters, and wasted reads caused by filter false positives —
  the quantity an adversary inflates when the filter is not robust
  (§1, §6.7).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError, InvalidQueryError
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import FilterFactory, SSTable, merge_runs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lsm.cache import BlockCache


@dataclass
class IoStats:
    """Ledger of simulated disk accesses.

    Under a concurrent service the counters are best-effort: readers on
    the same shard may race an increment and under-count. The ledger is
    diagnostic, never consulted for correctness.
    """

    reads_performed: int = 0
    reads_avoided: int = 0
    wasted_reads: int = 0  # filter said "maybe", run had nothing in range
    flushes: int = 0
    compactions: int = 0
    cache_hits: int = 0    # block reads served by the block cache
    cache_misses: int = 0  # block reads that went to the simulated disk

    @property
    def total_filter_decisions(self) -> int:
        return self.reads_performed + self.reads_avoided

    @property
    def waste_ratio(self) -> float:
        """Fraction of performed reads that were useless (filter FPs)."""
        return self.wasted_reads / self.reads_performed if self.reads_performed else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of block fetches the cache absorbed."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge(self, other: "IoStats") -> "IoStats":
        """Component-wise sum with ``other``; returns a new ledger."""
        return IoStats(
            reads_performed=self.reads_performed + other.reads_performed,
            reads_avoided=self.reads_avoided + other.reads_avoided,
            wasted_reads=self.wasted_reads + other.wasted_reads,
            flushes=self.flushes + other.flushes,
            compactions=self.compactions + other.compactions,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
        )

    @classmethod
    def aggregate(cls, ledgers: "Iterable[IoStats]") -> "IoStats":
        """Sum many ledgers (the per-shard view of a sharded engine)."""
        total = cls()
        for ledger in ledgers:
            total = total.merge(ledger)
        return total


class LSMStore:
    """LSM key-value store over integer keys.

    Parameters
    ----------
    universe:
        Exclusive key-universe bound.
    memtable_limit:
        Flush the memtable into a level-0 run at this many entries.
    compaction_fanout:
        Compact level 0 into the bottom run when it holds this many runs.
    filter_factory:
        Per-run range-filter builder ``(keys, universe) -> RangeFilter``;
        ``None`` disables filtering (every probe reads the run).
    auto_compact:
        When ``True`` (default) a flush that leaves level 0 at
        ``compaction_fanout`` runs compacts immediately. ``False`` defers:
        the store only records that compaction is due
        (:attr:`needs_compaction`) and an external scheduler — e.g.
        :class:`repro.engine.scheduler.CompactionScheduler` — calls
        :meth:`compact` at a convenient point (between query batches).
    """

    def __init__(
        self,
        universe: int = 2**64,
        *,
        memtable_limit: int = 1024,
        compaction_fanout: int = 4,
        filter_factory: Optional[FilterFactory] = None,
        auto_compact: bool = True,
    ) -> None:
        if universe <= 0:
            raise InvalidParameterError("universe must be positive")
        if memtable_limit < 1:
            raise InvalidParameterError("memtable_limit must be >= 1")
        if compaction_fanout < 2:
            raise InvalidParameterError("compaction_fanout must be >= 2")
        self.universe = int(universe)
        self._memtable_limit = int(memtable_limit)
        self._fanout = int(compaction_fanout)
        self._factory = filter_factory
        self._auto_compact = bool(auto_compact)
        self._memtable = MemTable()
        self._level0: List[SSTable] = []  # newest first
        self._bottom: Optional[SSTable] = None
        self._runs_version = 0
        self._compaction_requested = False
        self._cache: Optional["BlockCache"] = None
        #: Optional ``(q_lo, q_hi, empty) -> None`` hook the batch kernel
        #: calls after answering a sub-batch (see repro.engine.autotune).
        self.query_observer: Optional[Any] = None
        # Serialises mutations (put/delete/flush/compact) so a flush can
        # never tear the memtable swap out from under another writer.
        # Reader-vs-writer isolation is the *caller's* job — the service
        # layer wraps each shard in a reader/writer lock; the bare store
        # stays single-reader like the rest of the reproduction.
        self._write_lock = threading.RLock()
        self.stats = IoStats()

    @classmethod
    def from_runs(
        cls,
        universe: int,
        *,
        level0: Sequence[SSTable],
        bottom: Optional[SSTable],
        memtable_limit: int = 1024,
        compaction_fanout: int = 4,
        filter_factory: Optional[FilterFactory] = None,
        auto_compact: bool = True,
    ) -> "LSMStore":
        """Rebuild a store around already-constructed runs.

        This is the recovery path of :mod:`repro.engine.persist`: runs
        (and their filters) come back from disk exactly as snapshotted,
        so queries after a reopen behave identically to before it.
        """
        store = cls(
            universe,
            memtable_limit=memtable_limit,
            compaction_fanout=compaction_fanout,
            filter_factory=filter_factory,
            auto_compact=auto_compact,
        )
        store._level0 = list(level0)
        store._bottom = bottom
        return store

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.universe:
            raise InvalidQueryError(f"key {key} outside universe [0, {self.universe})")

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite a key."""
        self._check_key(key)
        if value is TOMBSTONE:
            raise InvalidParameterError("use delete() instead of writing the tombstone")
        with self._write_lock:
            self._memtable.put(key, value)
            self._maybe_flush()

    def delete(self, key: int) -> None:
        """Delete a key (tombstone until compaction)."""
        self._check_key(key)
        with self._write_lock:
            self._memtable.delete(key)
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self._memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Force the memtable into a new level-0 run.

        The whole transition — drain the memtable, install the run —
        happens under the write lock, so a concurrent writer can never
        slip an entry into the memtable between the snapshot and the
        clear (the lost-write window the unguarded version had).
        """
        with self._write_lock:
            entries = self._memtable.items_sorted()
            if not entries:
                return
            run = SSTable(entries, self.universe, self._factory)
            self._level0.insert(0, run)  # newest first
            self._memtable = MemTable()
            self._runs_version += 1
            self.stats.flushes += 1
            if self._auto_compact and self.needs_compaction:
                self.compact()

    def compact(self) -> None:
        """Merge all runs into a single bottom run, dropping tombstones.

        The merged run is (re)built with the *current* filter factory,
        so a factory swapped in by :meth:`set_filter_factory` takes over
        every key of the store here, not just future flushes.
        """
        with self._write_lock:
            self._compaction_requested = False
            runs = list(self._level0)
            if self._bottom is not None:
                runs.append(self._bottom)  # oldest last
            if not runs:
                return
            merged = merge_runs(runs, drop_tombstones=True)
            self._bottom = SSTable(merged, self.universe, self._factory)
            self._level0.clear()
            self._runs_version += 1
            self.stats.compactions += 1

    def set_filter_factory(self, factory: Optional[FilterFactory]) -> None:
        """Swap the per-run filter builder for *future* runs.

        Existing runs keep the filters they were built with (they are
        immutable); the next flush or compaction uses ``factory``. This
        is the mechanism :mod:`repro.engine.autotune` uses to retarget a
        shard — typically paired with :meth:`request_compaction` so the
        whole shard converges to the new backend at the next compaction.
        Never changes any query result: filters only prune.

        Deliberately lock-free: a single attribute store is atomic under
        the GIL, and taking the write lock here would stall the caller
        (the auto-tuner, holding its own lock with query observers
        queued behind it) for the full duration of any in-flight
        compaction. A swap landing mid-compaction simply means that
        compaction finishes under the old factory — the paired
        :meth:`request_compaction` queues the rebuild that converges it.
        """
        self._factory = factory

    @property
    def filter_factory(self) -> Optional[FilterFactory]:
        """The per-run filter builder currently in effect."""
        return self._factory

    def request_compaction(self) -> None:
        """Force :attr:`needs_compaction` on even below the fanout.

        Used after a filter-factory swap to have the (deferred or
        background) compaction machinery rebuild every run under the new
        backend. A no-op once :meth:`compact` runs. Lock-free like
        :meth:`set_filter_factory` (same stall concern); the unlocked
        emptiness peek can at worst set the flag for a store that just
        compacted to nothing, which the next :meth:`compact` clears for
        free.
        """
        if self._level0 or self._bottom is not None:
            self._compaction_requested = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def attach_cache(self, cache: Optional["BlockCache"]) -> None:
        """Route run reads through ``cache`` (``None`` detaches).

        With a cache attached, probes fetch block-granular pieces of each
        run through the shared LRU instead of whole-run ``scan`` calls;
        hit/miss counts fold into :attr:`stats`. Runs are immutable, so
        attaching or detaching never changes any query result.
        """
        self._cache = cache

    @property
    def cache(self) -> Optional["BlockCache"]:
        return self._cache

    def _run_scan(self, run: SSTable, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """``run.scan`` through the block cache when one is attached."""
        if self._cache is None:
            return run.scan(lo, hi)
        matches, hits, misses = self._cache.scan(run, lo, hi)
        self.stats.cache_hits += hits
        self.stats.cache_misses += misses
        return matches

    def _runs(self) -> List[SSTable]:
        """All runs, newest first."""
        runs = list(self._level0)
        if self._bottom is not None:
            runs.append(self._bottom)
        return runs

    def get(self, key: int) -> Optional[Any]:
        """Point lookup through memtable then runs (newest wins)."""
        self._check_key(key)
        found, value = self._memtable.get(key)
        if found:
            return None if value is TOMBSTONE else value
        for run in self._runs():
            if not run.may_contain_range(key, key):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            if self._cache is None:
                found, value = run.get(key)
            else:
                matches = self._run_scan(run, key, key)
                found = bool(matches)
                value = matches[0][1] if matches else None
            if found:
                return None if value is TOMBSTONE else value
            self.stats.wasted_reads += 1
        return None

    def range_scan(self, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """All live ``(key, value)`` pairs in ``[lo, hi]``, in key order."""
        if lo > hi:
            raise InvalidQueryError(f"scan range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        merged: dict[int, Any] = {}
        for key, value in self._memtable.scan(lo, hi):
            merged.setdefault(key, value)
        for run in self._runs():  # newest first: setdefault keeps newest
            if not run.may_contain_range(lo, hi):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            matches = self._run_scan(run, lo, hi)
            if not matches:
                self.stats.wasted_reads += 1
            for key, value in matches:
                merged.setdefault(key, value)
        return [
            (k, v) for k, v in sorted(merged.items()) if v is not TOMBSTONE
        ]

    def range_empty(self, lo: int, hi: int) -> bool:
        """Approximate-then-exact emptiness probe for ``[lo, hi]``.

        Unlike :meth:`range_scan` this never materialises the merged
        result: it walks sources newest first and returns ``False`` at
        the first key whose newest version is live. Only tombstoned keys
        (which shadow older versions) need remembering.
        """
        if lo > hi:
            raise InvalidQueryError(f"probe range has lo={lo} > hi={hi}")
        self._check_key(lo)
        self._check_key(hi)
        shadowed: set[int] = set()
        for key, value in self._memtable.scan(lo, hi):
            if value is not TOMBSTONE:
                return False  # newest version of this key, and it is live
            shadowed.add(key)
        for run in self._runs():  # newest first
            if not run.may_contain_range(lo, hi):
                self.stats.reads_avoided += 1
                continue
            self.stats.reads_performed += 1
            matches = self._run_scan(run, lo, hi)
            if not matches:
                self.stats.wasted_reads += 1
                continue
            for key, value in matches:
                if key in shadowed:
                    continue
                if value is not TOMBSTONE:
                    return False
                shadowed.add(key)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return len(self._runs())

    @property
    def needs_compaction(self) -> bool:
        """True when level 0 reached the fanout — or a rebuild was
        explicitly requested via :meth:`request_compaction`."""
        return len(self._level0) >= self._fanout or self._compaction_requested

    @property
    def runs_version(self) -> int:
        """Monotone counter bumped whenever the run set changes.

        Flushes and compactions increment it; memtable writes do not.
        The process-mode serving layer compares it against the version
        recorded at the last checkpoint to decide whether a read-only
        snapshot worker still sees this store's exact run set.
        """
        return self._runs_version

    @property
    def memtable_size(self) -> int:
        """Number of entries currently buffered in the memtable."""
        return len(self._memtable)

    @property
    def level0_runs(self) -> Tuple[SSTable, ...]:
        """The level-0 runs, newest first (read-only view for snapshots)."""
        return tuple(self._level0)

    @property
    def bottom_run(self) -> Optional[SSTable]:
        """The bottom run, or ``None`` before the first compaction."""
        return self._bottom

    @property
    def filter_bits_total(self) -> int:
        """Memory spent on filters across all runs."""
        return sum(run.filter_bits for run in self._runs())

    def __len__(self) -> int:
        """Number of live keys (scans the whole store; for tests/demos)."""
        live: set[int] = set()
        dead: set[int] = set()
        for k, v in self._memtable.items_sorted():
            (dead if v is TOMBSTONE else live).add(k)
        for run in self._runs():
            for key, value in run.entries():
                if key in live or key in dead:
                    continue
                if value is TOMBSTONE:
                    dead.add(key)
                else:
                    live.add(key)
        return len(live)
