"""A sharded LRU block cache in front of the simulated SSTable disk.

Real engines put a block cache between the read path and storage: a
probe that a filter could not prune still often finds its block already
in memory. This module reproduces that layer over the simulated disk of
:class:`~repro.lsm.sstable.SSTable`:

* the unit of caching is one run block
  (:data:`~repro.lsm.sstable.BLOCK_ENTRIES` entries), keyed by the run's
  immutable ``uid`` plus the block index — runs never mutate, so an
  entry can never go stale, and compaction simply strands the dead run's
  blocks until LRU evicts them;
* the cache is *sharded into stripes*, each with its own lock and LRU
  order, so concurrent readers on different stripes never contend — the
  standard trick (RocksDB's ``LRUCache`` shards by key hash) for making
  one shared cache scale across a thread pool;
* misses load the block outside any lock (two racing readers may load
  the same block twice — the usual benign thundering herd) and can
  charge a configurable ``miss_latency`` sleep, modelling the device
  the simulated I/O ledger only counts. The sleep releases the GIL, so
  a thread-pool service genuinely overlaps simulated disk fetches.

Hit/miss totals are exposed both here (cache-wide) and folded into each
store's :class:`~repro.lsm.store.IoStats` by the callers in
:mod:`repro.lsm.store`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Tuple

from repro.errors import InvalidParameterError
from repro.lsm.sstable import SSTable

#: Cache key: (run uid, block index).
_BlockKey = Tuple[int, int]


class _Stripe:
    """One independently locked LRU segment of the cache."""

    __slots__ = ("lock", "blocks", "hits", "misses")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.blocks: "OrderedDict[_BlockKey, List[Tuple[int, Any]]]" = OrderedDict()
        self.hits = 0
        self.misses = 0


class BlockCache:
    """Sharded LRU cache over immutable SSTable blocks.

    Parameters
    ----------
    capacity_blocks:
        Total blocks held across all stripes, honoured exactly: the
        capacity divides across stripes with the remainder spread one
        block at a time.
    num_stripes:
        Independently locked LRU segments (power of two not required).
    miss_latency:
        Seconds slept per miss, simulating the storage device. The
        default ``0.0`` keeps tests instant; benchmarks raise it to make
        the cost the filters and the cache save visible in wall-clock
        time.
    """

    def __init__(
        self,
        capacity_blocks: int = 1024,
        *,
        num_stripes: int = 8,
        miss_latency: float = 0.0,
    ) -> None:
        if capacity_blocks < 1:
            raise InvalidParameterError("capacity_blocks must be >= 1")
        if num_stripes < 1:
            raise InvalidParameterError("num_stripes must be >= 1")
        if miss_latency < 0:
            raise InvalidParameterError("miss_latency must be >= 0")
        self._num_stripes = min(int(num_stripes), int(capacity_blocks))
        # Distribute the capacity exactly: the first (capacity % stripes)
        # stripes hold one extra block, so the total never rounds down.
        base, extra = divmod(int(capacity_blocks), self._num_stripes)
        self._stripe_caps = [
            base + (1 if i < extra else 0) for i in range(self._num_stripes)
        ]
        self._stripes = [_Stripe() for _ in range(self._num_stripes)]
        self._miss_latency = float(miss_latency)

    # ------------------------------------------------------------------
    # Core block fetch
    # ------------------------------------------------------------------
    def get_block(
        self, run: SSTable, index: int
    ) -> Tuple[List[Tuple[int, Any]], bool]:
        """Return ``(entries, hit)`` for one block of ``run``."""
        key = (run.uid, index)
        stripe_id = hash(key) % self._num_stripes
        stripe = self._stripes[stripe_id]
        with stripe.lock:
            cached = stripe.blocks.get(key)
            if cached is not None:
                stripe.blocks.move_to_end(key)
                stripe.hits += 1
                return cached, True
        # Load outside the lock: a slow simulated fetch must not block
        # hits on other blocks of the same stripe.
        if self._miss_latency:
            time.sleep(self._miss_latency)
        entries = run.read_block(index)
        with stripe.lock:
            stripe.misses += 1
            stripe.blocks[key] = entries
            stripe.blocks.move_to_end(key)
            while len(stripe.blocks) > self._stripe_caps[stripe_id]:
                stripe.blocks.popitem(last=False)
        return entries, False

    def scan(
        self, run: SSTable, lo: int, hi: int
    ) -> Tuple[List[Tuple[int, Any]], int, int]:
        """Range read of ``[lo, hi]`` through the cache.

        Returns ``(matches, hits, misses)``; ``matches`` is exactly what
        ``run.scan(lo, hi)`` would return, but fetched block-by-block so
        repeated probes of a hot region stop touching the simulated disk.
        """
        span = run.block_span(lo, hi)
        if span is None:
            return [], 0, 0
        hits = misses = 0
        matches: List[Tuple[int, Any]] = []
        for index in range(span[0], span[1] + 1):
            entries, hit = self.get_block(run, index)
            if hit:
                hits += 1
            else:
                misses += 1
            for key, value in entries:
                if lo <= key <= hi:
                    matches.append((key, value))
                elif key > hi:
                    break
        return matches, hits, misses

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def capacity_blocks(self) -> int:
        return sum(self._stripe_caps)

    @property
    def num_stripes(self) -> int:
        return self._num_stripes

    @property
    def miss_latency(self) -> float:
        return self._miss_latency

    def __len__(self) -> int:
        """Blocks currently resident."""
        return sum(len(stripe.blocks) for stripe in self._stripes)

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripes)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache-wide counters."""
        return {"hits": self.hits, "misses": self.misses, "resident": len(self)}

    def clear(self) -> None:
        """Evict everything and zero the counters (benchmark hygiene)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.blocks.clear()
                stripe.hits = 0
                stripe.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockCache(capacity={self.capacity_blocks}, "
            f"stripes={self._num_stripes}, resident={len(self)}, "
            f"hit_ratio={self.hit_ratio:.2f})"
        )
