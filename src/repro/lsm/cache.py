"""Block caches in front of the simulated SSTable disk.

Real engines put a block cache between the read path and storage: a
probe that a filter could not prune still often finds its block already
in memory. This module reproduces that layer over the columnar blocks
of :class:`~repro.lsm.sstable.SSTable`, twice:

* :class:`BlockCache` — the in-process sharded LRU. The unit of caching
  is one run block (:data:`~repro.lsm.sstable.BLOCK_ENTRIES` entries),
  keyed by the run's immutable ``uid`` plus the block index — runs
  never mutate, so an entry can never go stale, and compaction simply
  strands the dead run's blocks until LRU evicts them. The cache is
  *sharded into stripes*, each with its own lock and LRU order, so
  concurrent readers on different stripes never contend — the standard
  trick (RocksDB's ``LRUCache`` shards by key hash). What a stripe
  stores is the zero-copy :class:`~repro.lsm.sstable.Block` *view*
  itself; hits hand the view straight back and
  :meth:`BlockCache.scan` returns a lazy
  :class:`~repro.lsm.sstable.Matches` — no per-hit tuple rebuilding.

* :class:`SharedBlockCache` — the same API re-homed in one
  ``multiprocessing.shared_memory`` slab so every process-mode worker
  (:class:`~repro.engine.workers.ShardWorkerPool`) attaches to a single
  cache instead of each filling a private copy: one admission warms all
  workers, and cache memory stops scaling with worker count. The slab
  is a set-associative array of fixed-size block slots; writers take a
  lock-striped ``multiprocessing.Lock``, readers validate per-slot
  seqlock versions and copy the slot payload before trusting it (the
  one copy shared-memory safety costs; still far cheaper than the
  simulated device the miss would pay). Cross-process identity comes
  from each persisted run's :attr:`~repro.lsm.sstable.SSTable.shared_id`
  — a stable 64-bit digest of its checkpoint file name — so two workers
  loading the same run file agree on its blocks' cache keys.

Misses load the block outside any lock (two racing readers may load
the same block twice — the usual benign thundering herd) and can charge
a configurable ``miss_latency`` sleep, modelling the device the
simulated I/O ledger only counts. The sleep releases the GIL, so a
thread-pool service genuinely overlaps simulated disk fetches.

Hit/miss totals are exposed both here (cache-wide; per attachment for
the shared slab) and folded into each store's
:class:`~repro.lsm.store.IoStats` by the callers in
:mod:`repro.lsm.store`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from multiprocessing import Lock as MPLock
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.lsm.sstable import Block, Matches, SSTable

#: Cache key: (run uid, block index).
_BlockKey = Tuple[int, int]


class _Stripe:
    """One independently locked LRU segment of the cache."""

    __slots__ = ("lock", "blocks", "hits", "misses")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.blocks: "OrderedDict[_BlockKey, Block]" = OrderedDict()
        self.hits = 0
        self.misses = 0


class BlockCache:
    """Sharded LRU cache over immutable SSTable block views.

    Parameters
    ----------
    capacity_blocks:
        Total blocks held across all stripes, honoured exactly: the
        capacity divides across stripes with the remainder spread one
        block at a time.
    num_stripes:
        Independently locked LRU segments (power of two not required).
    miss_latency:
        Seconds slept per miss, simulating the storage device. The
        default ``0.0`` keeps tests instant; benchmarks raise it to make
        the cost the filters and the cache save visible in wall-clock
        time.
    """

    def __init__(
        self,
        capacity_blocks: int = 1024,
        *,
        num_stripes: int = 8,
        miss_latency: float = 0.0,
    ) -> None:
        if capacity_blocks < 1:
            raise InvalidParameterError("capacity_blocks must be >= 1")
        if num_stripes < 1:
            raise InvalidParameterError("num_stripes must be >= 1")
        if miss_latency < 0:
            raise InvalidParameterError("miss_latency must be >= 0")
        self._num_stripes = min(int(num_stripes), int(capacity_blocks))
        # Distribute the capacity exactly: the first (capacity % stripes)
        # stripes hold one extra block, so the total never rounds down.
        base, extra = divmod(int(capacity_blocks), self._num_stripes)
        self._stripe_caps = [
            base + (1 if i < extra else 0) for i in range(self._num_stripes)
        ]
        self._stripes = [_Stripe() for _ in range(self._num_stripes)]
        self._miss_latency = float(miss_latency)

    # ------------------------------------------------------------------
    # Core block fetch
    # ------------------------------------------------------------------
    def get_block(self, run: SSTable, index: int) -> Tuple[Block, bool]:
        """Return ``(block_view, hit)`` for one block of ``run``.

        The returned :class:`~repro.lsm.sstable.Block` is the cached
        zero-copy view itself — callers must treat it as immutable
        (runs are), never mutate it, and decode entries lazily.
        """
        key = (run.uid, index)
        stripe_id = hash(key) % self._num_stripes
        stripe = self._stripes[stripe_id]
        with stripe.lock:
            cached = stripe.blocks.get(key)
            if cached is not None:
                stripe.blocks.move_to_end(key)
                stripe.hits += 1
                return cached, True
        # Load outside the lock: a slow simulated fetch must not block
        # hits on other blocks of the same stripe.
        if self._miss_latency:
            time.sleep(self._miss_latency)
        block = run.read_block(index)
        with stripe.lock:
            stripe.misses += 1
            stripe.blocks[key] = block
            stripe.blocks.move_to_end(key)
            while len(stripe.blocks) > self._stripe_caps[stripe_id]:
                stripe.blocks.popitem(last=False)
        return block, False

    def scan(self, run: SSTable, lo: int, hi: int) -> Tuple[Matches, int, int]:
        """Range read of ``[lo, hi]`` through the cache.

        Returns ``(matches, hits, misses)``; ``matches`` is a lazy
        :class:`~repro.lsm.sstable.Matches` view over the cached blocks
        — entry-equal to what ``run.scan(lo, hi)`` yields, but fetched
        block-by-block so repeated probes of a hot region stop touching
        the simulated disk, and decoded only if the caller actually
        materialises values.
        """
        span = run.block_span(lo, hi)
        if span is None:
            return Matches([]), 0, 0
        hits = misses = 0
        segments: List[Tuple[Block, int, int]] = []
        for index in range(span[0], span[1] + 1):
            block, hit = self.get_block(run, index)
            if hit:
                hits += 1
            else:
                misses += 1
            start, stop = block.range_indices(lo, hi)
            segments.append((block, start, stop))
        return Matches(segments), hits, misses

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def capacity_blocks(self) -> int:
        return sum(self._stripe_caps)

    @property
    def num_stripes(self) -> int:
        return self._num_stripes

    @property
    def miss_latency(self) -> float:
        return self._miss_latency

    def __len__(self) -> int:
        """Blocks currently resident."""
        return sum(len(stripe.blocks) for stripe in self._stripes)

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripes)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache-wide counters."""
        return {"hits": self.hits, "misses": self.misses, "resident": len(self)}

    def clear(self) -> None:
        """Evict everything and zero the counters (benchmark hygiene)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.blocks.clear()
                stripe.hits = 0
                stripe.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockCache(capacity={self.capacity_blocks}, "
            f"stripes={self._num_stripes}, resident={len(self)}, "
            f"hit_ratio={self.hit_ratio:.2f})"
        )


# ----------------------------------------------------------------------
# Shared-memory slab cache
# ----------------------------------------------------------------------
#: Slot-header u64 fields (one 64-byte row per slot).
_F_VERSION = 0   # seqlock: odd while a writer is mid-copy
_F_UID = 1       # 64-bit run identity (shared_id, or salted local uid)
_F_BLOCK = 2     # block index within the run
_F_N = 3         # entries in the packed payload
_F_HEAPBASE = 4  # absolute heap offset the payload's heap slice starts at
_F_LEN = 5       # payload bytes (0 == empty slot)
_F_TICK = 6      # LRU clock (advisory; racy updates are fine)
_SLOT_FIELDS = 8

#: Slab-header u64 fields.
_H_MAGIC = 0
_H_NSLOTS = 1
_H_SLOT_BYTES = 2
_H_NSETS = 3
_H_TICK = 4
_HDR_FIELDS = 8
_HDR_BYTES = _HDR_FIELDS * 8

_SLAB_MAGIC = 0x52_53_4C_41_42_34  # "RSLAB4"

_U64 = 0xFFFFFFFFFFFFFFFF


def _mix_key(uid64: int, block: int) -> int:
    """Deterministic (process-independent) 64-bit mix of a block key —
    python's salted ``hash()`` cannot place slots consistently across
    attached processes."""
    return (
        uid64 * 0x9E3779B97F4A7C15 + (block + 1) * 0xC2B2AE3D27D4EB4F
    ) & _U64


class SharedBlockCache:
    """A block cache whose storage lives in one shared-memory slab.

    Duck-types :class:`BlockCache` (``get_block`` / ``scan`` /
    counters), so :class:`~repro.lsm.store.LSMStore` and the serving
    layer use either interchangeably. The slab is divided into
    ``capacity_blocks`` fixed-size slots grouped into small
    set-associative sets (~``ways`` slots per set, LRU within the set by
    an advisory tick); admission takes one of ``num_stripes``
    cross-process locks, readers are lock-free behind per-slot seqlock
    versions. A block whose packed payload exceeds ``slot_bytes``
    bypasses the slab (served straight from the run, counted as a
    miss).

    Identity: runs restored from a checkpoint carry a stable
    ``shared_id`` digest of their run-file name, so every attached
    process keys the same file's blocks identically — one worker's
    admission is every worker's hit. Runs that were never persisted
    have no cross-process identity; their keys are salted with a
    per-attachment nonce so they can still use the slab's capacity
    without ever colliding across processes.

    Hit/miss counters are per attachment (each process sees the traffic
    it generated); aggregate accounting flows through the per-store
    :class:`~repro.lsm.store.IoStats` exactly as with the private cache.
    """

    WAYS = 4

    def __init__(
        self,
        capacity_blocks: int = 1024,
        *,
        num_stripes: int = 8,
        miss_latency: float = 0.0,
        slot_bytes: int = 16384,
    ) -> None:
        if capacity_blocks < 1:
            raise InvalidParameterError("capacity_blocks must be >= 1")
        if num_stripes < 1:
            raise InvalidParameterError("num_stripes must be >= 1")
        if miss_latency < 0:
            raise InvalidParameterError("miss_latency must be >= 0")
        if slot_bytes < 1024:
            raise InvalidParameterError("slot_bytes must be >= 1024")
        nslots = int(capacity_blocks)
        nsets = max(1, nslots // self.WAYS)
        size = _HDR_BYTES + nslots * _SLOT_FIELDS * 8 + nslots * int(slot_bytes)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._owner = True
        self._locks = [MPLock() for _ in range(min(int(num_stripes), nsets))]
        self._miss_latency = float(miss_latency)
        self._local_salt = int.from_bytes(os.urandom(8), "little") | 1
        self._hits = 0
        self._misses = 0
        self._closed = False
        self._bind_views()
        self._hdr[_H_MAGIC] = _SLAB_MAGIC
        self._hdr[_H_NSLOTS] = nslots
        self._hdr[_H_SLOT_BYTES] = int(slot_bytes)
        self._hdr[_H_NSETS] = nsets
        self._geometry()

    @classmethod
    def attach(
        cls,
        name: str,
        locks: List[Any],
        *,
        miss_latency: float = 0.0,
        unregister: bool = False,
    ) -> "SharedBlockCache":
        """Attach to an existing slab by segment ``name``.

        ``locks`` must be the creator's stripe locks (inherited through
        ``multiprocessing.Process`` args). With ``unregister=True`` the
        attachment is removed from this process's ``resource_tracker``
        so a *spawned* worker exiting does not destroy the segment it
        merely borrowed — the creating process owns cleanup.
        """
        cache = cls.__new__(cls)
        cache._shm = shared_memory.SharedMemory(name=name)
        if unregister:
            try:  # pragma: no cover - start-method dependent
                from multiprocessing import resource_tracker

                resource_tracker.unregister(cache._shm._name, "shared_memory")
            except Exception:
                pass
        cache._owner = False
        cache._locks = list(locks)
        cache._miss_latency = float(miss_latency)
        cache._local_salt = int.from_bytes(os.urandom(8), "little") | 1
        cache._hits = 0
        cache._misses = 0
        cache._closed = False
        cache._bind_views()
        if int(cache._hdr[_H_MAGIC]) != _SLAB_MAGIC:
            cache.close()
            raise InvalidParameterError(f"{name} is not a SharedBlockCache slab")
        cache._geometry()
        return cache

    def _bind_views(self) -> None:
        buf = self._shm.buf
        self._hdr = np.frombuffer(buf, dtype=np.uint64, count=_HDR_FIELDS)
        self._buf = buf

    def _geometry(self) -> None:
        self._nslots = int(self._hdr[_H_NSLOTS])
        self._slot_bytes = int(self._hdr[_H_SLOT_BYTES])
        self._nsets = int(self._hdr[_H_NSETS])
        self._slots = np.frombuffer(
            self._buf, dtype=np.uint64, offset=_HDR_BYTES,
            count=self._nslots * _SLOT_FIELDS,
        ).reshape(self._nslots, _SLOT_FIELDS)
        self._data_off = _HDR_BYTES + self._nslots * _SLOT_FIELDS * 8
        base, extra = divmod(self._nslots, self._nsets)
        bounds = [0]
        for i in range(self._nsets):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
        self._set_bounds = bounds

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _uid64(self, run: SSTable) -> int:
        shared = getattr(run, "shared_id", None)
        if shared is not None:
            return int(shared) & _U64
        return (self._local_salt + run.uid * 0x100000001B3) & _U64

    def _next_tick(self) -> int:
        # Racy read-modify-write across processes: lost increments only
        # blur the advisory LRU ordering, never correctness.
        tick = int(self._hdr[_H_TICK]) + 1
        self._hdr[_H_TICK] = tick
        return tick

    def _slot_payload(self, slot: int, length: int) -> memoryview:
        off = self._data_off + slot * self._slot_bytes
        return self._buf[off:off + length]

    # ------------------------------------------------------------------
    # Core block fetch
    # ------------------------------------------------------------------
    def get_block(self, run: SSTable, index: int) -> Tuple[Block, bool]:
        """Return ``(block_view, hit)``; the hit path serves a local
        seqlock-validated copy of the slot payload, never touching the
        run (no simulated I/O)."""
        if self._closed:
            raise InvalidParameterError("SharedBlockCache is closed")
        uid64 = self._uid64(run)
        block_id = _mix_key(uid64, index)
        set_id = block_id % self._nsets
        lo, hi = self._set_bounds[set_id], self._set_bounds[set_id + 1]
        slots = self._slots
        for slot in range(lo, hi):
            v1 = int(slots[slot, _F_VERSION])
            if v1 & 1:
                continue  # writer mid-copy
            if (
                int(slots[slot, _F_UID]) != uid64
                or int(slots[slot, _F_BLOCK]) != index
                or int(slots[slot, _F_LEN]) == 0
            ):
                continue
            n = int(slots[slot, _F_N])
            heap_base = int(slots[slot, _F_HEAPBASE])
            length = int(slots[slot, _F_LEN])
            payload = bytes(self._slot_payload(slot, length))
            if int(slots[slot, _F_VERSION]) != v1:
                continue  # overwritten mid-read; fall through to miss
            slots[slot, _F_TICK] = self._next_tick()
            self._hits += 1
            return Block.from_bytes(payload, n, heap_base), True
        # Miss: charge the simulated device, read from the run, admit.
        if self._miss_latency:
            time.sleep(self._miss_latency)
        block = run.read_block(index)
        self._misses += 1
        payload, n, heap_base = block.to_bytes()
        if len(payload) <= self._slot_bytes:
            self._admit(set_id, uid64, index, payload, n, heap_base)
        return block, False

    def _admit(
        self, set_id: int, uid64: int, index: int,
        payload: bytes, n: int, heap_base: int,
    ) -> None:
        lo, hi = self._set_bounds[set_id], self._set_bounds[set_id + 1]
        slots = self._slots
        lock = self._locks[set_id % len(self._locks)]
        with lock:
            victim = lo
            for slot in range(lo, hi):
                if (
                    int(slots[slot, _F_UID]) == uid64
                    and int(slots[slot, _F_BLOCK]) == index
                    and int(slots[slot, _F_LEN]) != 0
                ):
                    return  # raced: another process already admitted it
                if int(slots[slot, _F_LEN]) == 0:
                    victim = slot
                    break
                if int(slots[slot, _F_TICK]) < int(slots[victim, _F_TICK]):
                    victim = slot
            slots[victim, _F_VERSION] = int(slots[victim, _F_VERSION]) + 1
            slots[victim, _F_UID] = uid64
            slots[victim, _F_BLOCK] = index
            slots[victim, _F_N] = n
            slots[victim, _F_HEAPBASE] = heap_base
            slots[victim, _F_LEN] = len(payload)
            slots[victim, _F_TICK] = self._next_tick()
            self._slot_payload(victim, len(payload))[:] = payload
            slots[victim, _F_VERSION] = int(slots[victim, _F_VERSION]) + 1

    def scan(self, run: SSTable, lo: int, hi: int) -> Tuple[Matches, int, int]:
        """Range read of ``[lo, hi]`` through the slab; same contract as
        :meth:`BlockCache.scan`."""
        span = run.block_span(lo, hi)
        if span is None:
            return Matches([]), 0, 0
        hits = misses = 0
        segments: List[Tuple[Block, int, int]] = []
        for index in range(span[0], span[1] + 1):
            block, hit = self.get_block(run, index)
            if hit:
                hits += 1
            else:
                misses += 1
            start, stop = block.range_indices(lo, hi)
            segments.append((block, start, stop))
        return Matches(segments), hits, misses

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Segment name other processes attach by."""
        return self._shm.name

    @property
    def locks(self) -> List[Any]:
        """The stripe locks, for handing to worker processes."""
        return self._locks

    @property
    def capacity_blocks(self) -> int:
        return self._nslots

    @property
    def num_stripes(self) -> int:
        return len(self._locks)

    @property
    def slot_bytes(self) -> int:
        return self._slot_bytes

    @property
    def miss_latency(self) -> float:
        return self._miss_latency

    def __len__(self) -> int:
        """Blocks currently resident in the slab (all attachments)."""
        return int((self._slots[:, _F_LEN] != 0).sum())

    @property
    def hits(self) -> int:
        """Hits served to *this* attachment."""
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Snapshot of this attachment's counters + slab residency."""
        return {"hits": self._hits, "misses": self._misses, "resident": len(self)}

    def clear(self) -> None:
        """Empty every slot and zero this attachment's counters."""
        for stripe, lock in enumerate(self._locks):
            with lock:
                for set_id in range(stripe, self._nsets, len(self._locks)):
                    lo, hi = self._set_bounds[set_id], self._set_bounds[set_id + 1]
                    for slot in range(lo, hi):
                        self._slots[slot, _F_VERSION] = (
                            int(self._slots[slot, _F_VERSION]) + 2
                        )
                        self._slots[slot, _F_LEN] = 0
        self._hits = 0
        self._misses = 0

    def close(self) -> None:
        """Detach from the slab; the creating attachment also unlinks
        the segment so no ``shared_memory`` leaks past the owner."""
        if self._closed:
            return
        self._closed = True
        # Drop every exported view before closing the mapping, or the
        # mmap refuses to unmap ("cannot close exported pointers").
        self._hdr = None
        self._slots = None
        self._buf = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"resident={len(self)}"
        return (
            f"SharedBlockCache(capacity={self._nslots}, "
            f"slot_bytes={self._slot_bytes}, {state})"
        )
