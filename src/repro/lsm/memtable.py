"""In-memory write buffer of the LSM store.

A plain last-write-wins map plus an ordered view on demand. Real engines
use skip lists; at reproduction scale a dict with sorted snapshots
preserves the same semantics (point reads see the newest write, flushes
emit a sorted run).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class MemTable:
    """Sorted write buffer with last-write-wins semantics."""

    __slots__ = ("_data", "_sorted_keys", "_keys_arr", "_dirty")

    def __init__(self) -> None:
        self._data: dict[int, Any] = {}
        self._sorted_keys: List[int] = []
        self._keys_arr: Optional[np.ndarray] = None
        self._dirty = False

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        if key not in self._data:
            self._dirty = True
            self._keys_arr = None
        self._data[key] = value

    def delete(self, key: int) -> None:
        """Mark ``key`` deleted (tombstone survives until compaction)."""
        self.put(key, TOMBSTONE)

    def get(self, key: int) -> Tuple[bool, Any]:
        """Return ``(found_here, value)``; tombstones are found with TOMBSTONE."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def _refresh(self) -> None:
        if self._dirty:
            self._sorted_keys = sorted(self._data)
            self._dirty = False

    def scan(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Yield ``(key, value)`` pairs in ``[lo, hi]`` in key order."""
        self._refresh()
        start = bisect.bisect_left(self._sorted_keys, lo)
        for idx in range(start, len(self._sorted_keys)):
            key = self._sorted_keys[idx]
            if key > hi:
                break
            yield key, self._data[key]

    def items_sorted(self) -> List[Tuple[int, Any]]:
        """All entries in key order (for flushing)."""
        self._refresh()
        return [(k, self._data[k]) for k in self._sorted_keys]

    def keys_array(self) -> np.ndarray:
        """All keys (live and tombstoned) as a sorted ``uint64`` array.

        Cached between mutations: the columnar batch path probes the
        memtable with one ``searchsorted`` per query column instead of a
        per-query Python scan, so the array is rebuilt only when a new
        key arrives, not per batch.
        """
        if self._keys_arr is None:
            self._refresh()
            self._keys_arr = np.asarray(self._sorted_keys, dtype=np.uint64)
        return self._keys_arr

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys.clear()
        self._keys_arr = None
        self._dirty = False
