"""Mini LSM key-value store with pluggable range filters (§1's motivation)."""

from repro.lsm.cache import BlockCache
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import BLOCK_ENTRIES, SSTable, merge_runs
from repro.lsm.store import IoStats, LSMStore

__all__ = [
    "BLOCK_ENTRIES",
    "BlockCache",
    "IoStats",
    "LSMStore",
    "MemTable",
    "SSTable",
    "TOMBSTONE",
    "merge_runs",
]
