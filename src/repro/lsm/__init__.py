"""Mini LSM key-value store with pluggable range filters (§1's motivation)."""

from repro.lsm.cache import BlockCache
from repro.lsm.compaction import (
    CompactionPolicy,
    CompactionStep,
    FullMergePolicy,
    LeveledPolicy,
    MergeUnit,
    TieredPolicy,
    policy_names,
    resolve_policy,
)
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import (
    BLOCK_ENTRIES,
    SSTable,
    merge_entries_iter,
    merge_runs,
)
from repro.lsm.store import IoStats, LSMStore
from repro.lsm.ttl import ExpiringValue, expiry_of, is_live, unwrap

__all__ = [
    "ExpiringValue",
    "expiry_of",
    "is_live",
    "unwrap",
    "BLOCK_ENTRIES",
    "BlockCache",
    "CompactionPolicy",
    "CompactionStep",
    "FullMergePolicy",
    "IoStats",
    "LSMStore",
    "LeveledPolicy",
    "MemTable",
    "MergeUnit",
    "SSTable",
    "TOMBSTONE",
    "TieredPolicy",
    "merge_entries_iter",
    "merge_runs",
    "policy_names",
    "resolve_policy",
]
