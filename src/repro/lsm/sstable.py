"""Immutable sorted runs ("SSTables") with per-run range filters.

Each run stores its entries **columnar**: a sorted ``<u8`` key array
plus a typed value column — a one-byte tag, two fixed-width ``<u8``
operand words, an expiry word, and a var-width byte heap for strings,
bytes and pickled opaques. The columns are the single source of truth;
``(key, value)`` tuples are decoded lazily and never materialised on
the hot path. Runs loaded from a format-v4 snapshot keep their columns
as views over an ``np.memmap`` of the run file, so opening a checkpoint
moves no bytes until a block is actually read.

Block-granular access returns :class:`Block` / :class:`Matches` views
(zero-copy over the columns) rather than rebuilt tuple lists; the block
cache (:mod:`repro.lsm.cache`) stores and serves these views directly.
Every access that would touch storage still increments the simulated
I/O counter, and the attached range filter — any
:class:`repro.filters.base.RangeFilter` — is consulted *before*
touching the run, which is precisely the deployment the paper's
introduction motivates: filters in memory prevent unnecessary reads of
on-disk runs.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import struct
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CorruptionError
from repro.filters.base import RangeFilter
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.ttl import ExpiringValue

#: Builds a filter for a run: ``factory(keys, universe) -> RangeFilter``.
FilterFactory = Callable[[np.ndarray, int], RangeFilter]

#: Entries per simulated disk block — the granularity the block cache
#: fetches and pins. Fence pointers (the first key of every block) stay
#: in memory, like real SSTable index blocks.
BLOCK_ENTRIES = 256

#: Process-wide run ids. Runs are immutable, so a cache may key on the
#: id forever; ``itertools.count`` is atomic under the GIL, so ids stay
#: unique even when concurrent flushes create runs from pool threads.
_RUN_IDS = itertools.count()

# ----------------------------------------------------------------------
# Typed value column
# ----------------------------------------------------------------------
#: Value-type tags (low 7 bits of the tag byte). Tag 0 is *exactly* a
#: tombstone — the expiry flag is never set on one, so a zeroed column
#: decodes as all-tombstones rather than garbage.
TAG_TOMBSTONE = 0
TAG_NONE = 1
TAG_INT = 2        # signed 64-bit, two's complement in ``va``
TAG_FLOAT = 3      # IEEE-754 bits in ``va``
TAG_BYTES = 4      # heap[va : va+vb]
TAG_STR = 5        # utf-8 in heap[va : va+vb]
TAG_PICKLE = 6     # pickled opaque object in heap[va : va+vb]
TAG_BOOL = 7       # va in {0, 1}

#: Tag flag: the entry is an :class:`ExpiringValue` wrapper; the wrapped
#: type sits in the low bits and ``vexp`` holds ``expires_at``. Keeping
#: the deadline in its own fixed-width column is what makes liveness a
#: vectorised mask instead of a per-entry isinstance walk.
FLAG_EXPIRES = 0x80
_TYPE_MASK = 0x7F

_HEAP_TAGS = (TAG_BYTES, TAG_STR, TAG_PICKLE)
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1
_U64_MAX = (1 << 64) - 1


def _encode_one(value: Any, heap: bytearray) -> Tuple[int, int, int, int]:
    """Encode one python value into ``(tag, va, vb, vexp)``; heap-typed
    payloads are appended to ``heap`` in entry order, so each block's
    heap references stay contiguous (the property the shared-memory
    cache relies on to ship a block's heap slice in one piece)."""
    vexp = 0
    flag = 0
    if isinstance(value, ExpiringValue):
        inner, expires = value.value, value.expires_at
        if (
            not isinstance(inner, ExpiringValue)
            and isinstance(expires, int)
            and 0 <= expires <= _U64_MAX
        ):
            flag, vexp = FLAG_EXPIRES, expires
            value = inner
        # else: a pathological wrapper (nested, or a deadline outside
        # u64) round-trips whole through the pickle lane below.
    if value is TOMBSTONE:
        return TAG_TOMBSTONE, 0, 0, 0
    if value is None:
        return TAG_NONE | flag, 0, 0, vexp
    if isinstance(value, bool):
        return TAG_BOOL | flag, int(value), 0, vexp
    if isinstance(value, int) and _INT64_MIN <= value <= _INT64_MAX:
        return TAG_INT | flag, value & _U64_MAX, 0, vexp
    if isinstance(value, float):
        (bits,) = struct.unpack("<Q", struct.pack("<d", value))
        return TAG_FLOAT | flag, bits, 0, vexp
    if isinstance(value, (bytes, bytearray)):
        off = len(heap)
        heap += bytes(value)
        return TAG_BYTES | flag, off, len(value), vexp
    if isinstance(value, str):
        blob = value.encode("utf-8")
        off = len(heap)
        heap += blob
        return TAG_STR | flag, off, len(blob), vexp
    # Genuinely opaque objects (including oversized ints) take the
    # pickle lane — per value, never whole-run.
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    off = len(heap)
    heap += blob
    return TAG_PICKLE | flag, off, len(blob), vexp


def encode_values(
    values: Sequence[Any],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bytes]:
    """Encode a value sequence into the typed columns + heap."""
    n = len(values)
    tags = np.zeros(n, dtype=np.uint8)
    va = np.zeros(n, dtype=np.uint64)
    vb = np.zeros(n, dtype=np.uint64)
    vexp = np.zeros(n, dtype=np.uint64)
    heap = bytearray()
    for i, value in enumerate(values):
        t, a, b, e = _encode_one(value, heap)
        tags[i] = t
        va[i] = a
        vb[i] = b
        vexp[i] = e
    return tags, va, vb, vexp, bytes(heap)


def decode_value(
    tag: int, va: int, vb: int, vexp: int, heap, heap_base: int
) -> Any:
    """Decode one ``(tag, va, vb, vexp)`` entry back to a python value.

    ``heap`` may be any buffer holding at least the run's heap bytes
    this entry references; ``heap_base`` is the absolute offset the
    buffer starts at (non-zero when a cache slot holds only one block's
    heap slice). The tombstone decodes to the identity singleton.
    """
    kind = tag & _TYPE_MASK
    if kind == TAG_TOMBSTONE:
        return TOMBSTONE
    if kind == TAG_NONE:
        value: Any = None
    elif kind == TAG_BOOL:
        value = bool(va)
    elif kind == TAG_INT:
        value = va - (1 << 64) if va > _INT64_MAX else va
    elif kind == TAG_FLOAT:
        (value,) = struct.unpack("<d", struct.pack("<Q", va))
    else:
        lo = va - heap_base
        if lo < 0:
            raise CorruptionError("value heap reference out of bounds")
        blob = bytes(memoryview(heap)[lo:lo + vb])
        if len(blob) != vb:
            raise CorruptionError("value heap reference out of bounds")
        if kind == TAG_BYTES:
            value = blob
        elif kind == TAG_STR:
            value = blob.decode("utf-8")
        elif kind == TAG_PICKLE:
            value = pickle.loads(blob)
        else:
            raise CorruptionError(f"unknown value tag {kind}")
    if tag & FLAG_EXPIRES:
        return ExpiringValue(value, vexp)
    return value


def _max_expiry_from_columns(tags: np.ndarray, vexp: np.ndarray) -> Optional[int]:
    """Largest expiry stamp in a run, or ``None`` when it never expires.

    ``None`` means at least one non-tombstone entry has no TTL — the run
    holds data that lives forever, so it can never age out wholesale.
    Tombstones are ignored: a run of expired entries plus tombstones is
    still droppable at the bottom of the store (tombstones there shadow
    nothing).
    """
    live = tags != TAG_TOMBSTONE
    if not bool(live.any()):
        return 0
    live_tags = tags[live]
    if bool(((live_tags & FLAG_EXPIRES) == 0).any()):
        return None
    return int(vexp[live].max())


def _live_mask(tags: np.ndarray, vexp: np.ndarray, now: int) -> np.ndarray:
    """Vectorised liveness at logical time ``now``: not a tombstone, and
    either immortal or not yet expired (``now < expires_at``)."""
    mask = tags != TAG_TOMBSTONE
    expiring = (tags & FLAG_EXPIRES) != 0
    if bool(expiring.any()):
        mask &= ~expiring | (vexp > np.uint64(now))
    return mask


# ----------------------------------------------------------------------
# Zero-copy block + scan views
# ----------------------------------------------------------------------
class Block:
    """A zero-copy view of one :data:`BLOCK_ENTRIES`-sized run block.

    Holds column *slices* (possibly backed by an ``np.memmap`` of the
    run file, or by a shared-memory cache slot) and decodes values only
    on demand. Iterating yields ``(key, value)`` pairs like the old
    tuple lists did, so existing consumers keep working — but emptiness
    probes use :meth:`live_mask` and never decode a value at all.
    """

    __slots__ = ("keys", "tags", "va", "vb", "vexp", "heap", "heap_base")

    def __init__(self, keys, tags, va, vb, vexp, heap, heap_base=0):
        self.keys = keys
        self.tags = tags
        self.va = va
        self.vb = vb
        self.vexp = vexp
        self.heap = heap
        self.heap_base = heap_base

    def __len__(self) -> int:
        return int(self.keys.size)

    def value_at(self, i: int) -> Any:
        """Decode the value of entry ``i`` (block-local index)."""
        return decode_value(
            int(self.tags[i]), int(self.va[i]), int(self.vb[i]),
            int(self.vexp[i]), self.heap, self.heap_base,
        )

    def entry(self, i: int) -> Tuple[int, Any]:
        return int(self.keys[i]), self.value_at(i)

    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        for i in range(len(self)):
            yield self.entry(i)

    def range_indices(self, lo: int, hi: int) -> Tuple[int, int]:
        """Block-local ``[start, stop)`` of keys inside ``[lo, hi]``."""
        start = int(np.searchsorted(self.keys, lo, side="left"))
        stop = int(np.searchsorted(self.keys, hi, side="right"))
        return start, stop

    def live_mask(self, now: int) -> np.ndarray:
        return _live_mask(self.tags, self.vexp, now)

    def is_live(self, i: int, now: int) -> bool:
        tag = int(self.tags[i])
        if tag == TAG_TOMBSTONE:
            return False
        if tag & FLAG_EXPIRES:
            return now < int(self.vexp[i])
        return True

    # -- shared-memory packing ----------------------------------------
    def heap_slice(self) -> Tuple[int, bytes]:
        """The contiguous heap span this block references, as
        ``(heap_base, bytes)`` — empty when no entry is heap-typed."""
        uses_heap = np.isin(self.tags & _TYPE_MASK, _HEAP_TAGS)
        idx = np.flatnonzero(uses_heap)
        if idx.size == 0:
            return 0, b""
        first, last = int(idx[0]), int(idx[-1])
        base = int(self.va[first])
        end = int(self.va[last]) + int(self.vb[last])
        lo, hi = base - self.heap_base, end - self.heap_base
        return base, bytes(memoryview(self.heap)[lo:hi])

    def to_bytes(self) -> Tuple[bytes, int, int]:
        """Pack the block for a fixed-size cache slot.

        Returns ``(payload, n_entries, heap_base)``; the payload layout
        is ``keys | va | vb | vexp | tags | pad-to-8 | heap`` so the u64
        columns stay aligned when sliced back out of the slot.
        """
        n = len(self)
        base, heap = self.heap_slice()
        pad = (-n) % 8
        payload = b"".join([
            np.ascontiguousarray(self.keys).tobytes(),
            np.ascontiguousarray(self.va).tobytes(),
            np.ascontiguousarray(self.vb).tobytes(),
            np.ascontiguousarray(self.vexp).tobytes(),
            np.ascontiguousarray(self.tags).tobytes(),
            b"\x00" * pad,
            heap,
        ])
        return payload, n, base

    @classmethod
    def from_bytes(cls, buf, n: int, heap_base: int) -> "Block":
        """Rebuild a block over a packed :meth:`to_bytes` payload."""
        keys = np.frombuffer(buf, dtype=np.uint64, count=n, offset=0)
        va = np.frombuffer(buf, dtype=np.uint64, count=n, offset=8 * n)
        vb = np.frombuffer(buf, dtype=np.uint64, count=n, offset=16 * n)
        vexp = np.frombuffer(buf, dtype=np.uint64, count=n, offset=24 * n)
        tags = np.frombuffer(buf, dtype=np.uint8, count=n, offset=32 * n)
        heap_off = 32 * n + n + ((-n) % 8)
        heap = memoryview(buf)[heap_off:]
        return cls(keys, tags, va, vb, vexp, heap, heap_base)


class Matches:
    """Lazy result of a block-granular range read: a list of
    ``(Block, start, stop)`` segments presented as one sequence of
    ``(key, value)`` entries, decoded only on access.

    Compares equal to a materialised tuple list (tests and callers that
    still want lists get exactly the old semantics via ``list(m)``).
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: List[Tuple[Block, int, int]]):
        self._segments = [
            (block, start, stop) for block, start, stop in segments
            if stop > start
        ]

    def __len__(self) -> int:
        return sum(stop - start for _, start, stop in self._segments)

    def __bool__(self) -> bool:
        return bool(self._segments)

    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        for block, start, stop in self._segments:
            for i in range(start, stop):
                yield block.entry(i)

    def __getitem__(self, index: int) -> Tuple[int, Any]:
        if index < 0:
            index += len(self)
        for block, start, stop in self._segments:
            width = stop - start
            if index < width:
                return block.entry(start + index)
            index -= width
        raise IndexError("Matches index out of range")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, Matches)):
            return list(self) == list(other)
        return NotImplemented

    def keys_ints(self) -> List[int]:
        """All matched keys as python ints (no value decode)."""
        out: List[int] = []
        for block, start, stop in self._segments:
            out.extend(int(k) for k in block.keys[start:stop])
        return out

    def any_live(self, now: int) -> bool:
        """Vectorised: is any matched entry live at time ``now``? Never
        decodes a value — the emptiness-probe fast path."""
        for block, start, stop in self._segments:
            if bool(
                _live_mask(
                    block.tags[start:stop], block.vexp[start:stop], now
                ).any()
            ):
                return True
        return False

    def items_with_liveness(self, now: int) -> Iterator[Tuple[int, bool]]:
        """Stream ``(key, is_live)`` without decoding values — the
        shadowed-set walk of ``range_empty`` needs nothing more."""
        for block, start, stop in self._segments:
            for i in range(start, stop):
                yield int(block.keys[i]), block.is_live(i, now)


def _released() -> CorruptionError:
    return CorruptionError(
        "run storage was released (its epoch was retired); the view is "
        "no longer readable"
    )


class SSTable:
    """An immutable sorted run of ``(key, value)`` entries.

    A run may additionally be a leveled *slice*: ``slice_bounds`` then
    records the key span the slice owns inside its level. Owning spans
    of a level's slices partition the universe — they are the routing
    metadata leveled compaction uses to merge a level-0 run into only
    the slices it overlaps — and may be wider than the slice's actual
    :attr:`key_bounds` (a slice can own a span no key currently sits in).
    """

    __slots__ = (
        "_keys", "_tags", "_va", "_vb", "_vexp", "_heap", "_filter",
        "io_reads", "universe", "uid", "slice_bounds", "max_expiry",
        "_backing", "_is_released", "shared_id",
    )

    def __init__(
        self,
        entries: Sequence[Tuple[int, Any]],
        universe: int,
        filter_factory: Optional[FilterFactory] = None,
        *,
        slice_bounds: Optional[Tuple[int, int]] = None,
    ) -> None:
        keys = [k for k, _ in entries]
        self._keys = np.asarray(keys, dtype=np.uint64)
        if self._keys.size > 1 and bool((self._keys[1:] <= self._keys[:-1]).any()):
            raise ValueError("SSTable entries must be sorted by strictly increasing key")
        self._tags, self._va, self._vb, self._vexp, self._heap = encode_values(
            [v for _, v in entries]
        )
        self.universe = int(universe)
        self.io_reads = 0
        self.uid = next(_RUN_IDS)
        self.slice_bounds = slice_bounds
        self.max_expiry = _max_expiry_from_columns(self._tags, self._vexp)
        self._backing = None
        self._is_released = False
        self.shared_id = None
        self._filter = (
            filter_factory(self._keys, self.universe) if filter_factory else None
        )

    @classmethod
    def from_parts(
        cls,
        keys: np.ndarray,
        values: List[Any],
        universe: int,
        filt: Optional[RangeFilter] = None,
        *,
        slice_bounds: Optional[Tuple[int, int]] = None,
    ) -> "SSTable":
        """Rebuild a run around an existing filter instance.

        The recovery path (:mod:`repro.engine.persist`) deserialises the
        filter that guarded the run when it was snapshotted; rebuilding it
        from the keys would draw fresh hash constants and change which
        probes false-positive after a reopen.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if len(values) != keys.size:
            raise ValueError("keys and values must have the same length")
        tags, va, vb, vexp, heap = encode_values(values)
        return cls.from_columns(
            keys, tags, va, vb, vexp, heap, universe, filt,
            slice_bounds=slice_bounds,
        )

    @classmethod
    def from_columns(
        cls,
        keys: np.ndarray,
        tags: np.ndarray,
        va: np.ndarray,
        vb: np.ndarray,
        vexp: np.ndarray,
        heap,
        universe: int,
        filt: Optional[RangeFilter] = None,
        *,
        slice_bounds: Optional[Tuple[int, int]] = None,
        backing=None,
    ) -> "SSTable":
        """Adopt already-encoded columns zero-copy (the mmap load path).

        ``backing`` keeps the underlying buffer (an ``np.memmap``) alive
        for as long as the run — or any block view the cache pinned —
        references it; :meth:`release` drops it.
        """
        run = cls.__new__(cls)
        run._keys = np.asarray(keys, dtype=np.uint64)
        if run._keys.size > 1 and bool((run._keys[1:] <= run._keys[:-1]).any()):
            raise ValueError("SSTable entries must be sorted by strictly increasing key")
        n = run._keys.size
        run._tags = np.asarray(tags, dtype=np.uint8)
        run._va = np.asarray(va, dtype=np.uint64)
        run._vb = np.asarray(vb, dtype=np.uint64)
        run._vexp = np.asarray(vexp, dtype=np.uint64)
        if not (run._tags.size == run._va.size == run._vb.size
                == run._vexp.size == n):
            raise ValueError("value columns must match the key column length")
        run._heap = heap
        run.universe = int(universe)
        run.io_reads = 0
        run.uid = next(_RUN_IDS)
        run.slice_bounds = slice_bounds
        run.max_expiry = _max_expiry_from_columns(run._tags, run._vexp)
        run._backing = backing
        run._is_released = False
        run.shared_id = None
        run._filter = filt
        return run

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def filter(self) -> Optional[RangeFilter]:
        return self._filter

    @property
    def key_bounds(self) -> Optional[Tuple[int, int]]:
        if self._keys.size == 0:
            return None
        return int(self._keys[0]), int(self._keys[-1])

    @property
    def filter_bits(self) -> int:
        return self._filter.size_in_bits if self._filter else 0

    @property
    def nbytes(self) -> int:
        """Simulated on-disk size: 8 key bytes + 8 value-slot bytes per
        entry (the unit :attr:`IoStats.bytes_compacted` accounts in)."""
        return int(self._keys.size) * 16

    def keys_view(self) -> np.ndarray:
        """The sorted key column, zero-copy and free of simulated I/O.

        Compaction *planning* and the columnar batch router read this to
        route keys without charging a run read — only merges and probes
        that actually resolve data touch the simulated disk.
        """
        return self._keys

    def value_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Any]:
        """The typed value columns ``(tags, va, vb, vexp, heap)``,
        zero-copy — the persistence writer serialises these directly."""
        return self._tags, self._va, self._vb, self._vexp, self._heap

    @property
    def heap_nbytes(self) -> int:
        return len(self._heap)

    @property
    def released(self) -> bool:
        """True once :meth:`release` retired this run's storage."""
        return self._is_released

    def release(self) -> None:
        """Retire the run's storage: drop the column views and the
        mmap backing so the OS mapping can go away with the last block
        view. Reads after release raise
        :class:`~repro.errors.CorruptionError` cleanly — never a
        use-after-unmap surprise. Idempotent.
        """
        if self._is_released:
            return
        self._is_released = True
        empty_u64 = np.zeros(0, dtype=np.uint64)
        self._keys = empty_u64
        self._tags = np.zeros(0, dtype=np.uint8)
        self._va = self._vb = self._vexp = empty_u64
        self._heap = b""
        self._backing = None

    def _check_open(self) -> None:
        if self._is_released:
            raise _released()

    def fully_expired(self, now: int) -> bool:
        """Whether every entry of this run is dead at logical time ``now``.

        True only when the run is non-empty and every non-tombstone
        entry carries an expiry stamp at or before ``now``
        (:attr:`max_expiry` caches the largest stamp at construction, so
        this is O(1)). Such a run at the *bottom* of a store — nothing
        older beneath it to unshadow — can be aged out whole without
        rewriting a byte: the metadata-only ``"expire"`` compaction step
        (see :meth:`repro.lsm.store.LSMStore.compact_step`).
        """
        return (
            self._keys.size > 0
            and self.max_expiry is not None
            and self.max_expiry <= now
        )

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi]`` intersects this run's actual key bounds.

        A pure fence-pointer check (no filter, no simulated I/O): exact
        pruning for runs — notably leveled slices — whose key range lies
        entirely outside the probe.
        """
        if self._keys.size == 0:
            return False
        return int(self._keys[0]) <= hi and lo <= int(self._keys[-1])

    # ------------------------------------------------------------------
    # Filter consultation
    # ------------------------------------------------------------------
    def may_contain_range(self, lo: int, hi: int) -> bool:
        """Consult the in-memory filter; True means "must read the run"."""
        if self._filter is None:
            return True
        return self._filter.may_contain_range(lo, hi)

    # ------------------------------------------------------------------
    # "Disk" access (each call counts one simulated I/O)
    # ------------------------------------------------------------------
    def get(self, key: int) -> Tuple[bool, Any]:
        """Point lookup; counts one I/O."""
        self._check_open()
        self.io_reads += 1
        idx = int(np.searchsorted(self._keys, key))
        if idx < self._keys.size and int(self._keys[idx]) == key:
            return True, self._decode(idx)
        return False, None

    def _decode(self, i: int) -> Any:
        return decode_value(
            int(self._tags[i]), int(self._va[i]), int(self._vb[i]),
            int(self._vexp[i]), self._heap, 0,
        )

    def scan(self, lo: int, hi: int) -> Matches:
        """Range scan; counts one I/O (a run read), returns a lazy
        zero-copy :class:`Matches` view of the matching entries."""
        self._check_open()
        self.io_reads += 1
        start = int(np.searchsorted(self._keys, lo, side="left"))
        stop = int(np.searchsorted(self._keys, hi, side="right"))
        return Matches([(self._whole_view(), start, stop)])

    def _whole_view(self) -> Block:
        """One :class:`Block` view spanning the entire run (internal)."""
        return Block(
            self._keys, self._tags, self._va, self._vb, self._vexp,
            self._heap, 0,
        )

    def entries(self) -> List[Tuple[int, Any]]:
        """Full decoded dump (compaction input); counts one I/O."""
        self._check_open()
        self.io_reads += 1
        return [
            (int(self._keys[i]), self._decode(i))
            for i in range(self._keys.size)
        ]

    def iter_entries(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, Any]]:
        """Stream ``(key, value)`` pairs in key order; counts one I/O.

        ``lo``/``hi`` restrict the stream to ``[lo, hi]`` (both
        inclusive) — the span clipping leveled merges use so a level-0
        run contributes each key to exactly one merge unit. Nothing is
        materialised: the k-way merge of compaction pulls entries lazily
        and writes output slices as it goes.
        """
        self._check_open()
        self.io_reads += 1
        start = 0 if lo is None else int(np.searchsorted(self._keys, lo, side="left"))
        stop = (
            self._keys.size
            if hi is None
            else int(np.searchsorted(self._keys, hi, side="right"))
        )
        for i in range(start, stop):
            yield int(self._keys[i]), self._decode(i)

    # ------------------------------------------------------------------
    # Block-granular access (the unit the block cache works in)
    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        """Number of :data:`BLOCK_ENTRIES`-sized blocks in the run."""
        return -(-self._keys.size // BLOCK_ENTRIES)

    def block_span(self, lo: int, hi: int) -> Optional[Tuple[int, int]]:
        """Blocks a reader must fetch to resolve ``[lo, hi]``, from the
        in-memory fence pointers alone (no simulated I/O).

        Returns an inclusive ``(first, last)`` block-index pair, or
        ``None`` when the fences prove the range precedes all stored
        keys. Fences only record each block's *first* key, so a range
        beyond the last key still costs one block read — exactly the
        wasted read a real fence-pointer index would incur.
        """
        if self._keys.size == 0 or lo > hi:
            return None
        fences = self._keys[::BLOCK_ENTRIES]
        # Block whose first key <= bound, i.e. the candidate block.
        first = int(np.searchsorted(fences, lo, side="right")) - 1
        last = int(np.searchsorted(fences, hi, side="right")) - 1
        if last < 0:
            return None  # the whole range sits before the first key
        return max(first, 0), last

    def block_view(self, index: int) -> Block:
        """Zero-copy :class:`Block` over block ``index`` — no simulated
        I/O charge (the cache's admission path pairs this with its own
        miss accounting)."""
        self._check_open()
        if not 0 <= index < self.block_count:
            raise IndexError(f"block {index} outside [0, {self.block_count})")
        start = index * BLOCK_ENTRIES
        stop = min(start + BLOCK_ENTRIES, int(self._keys.size))
        return Block(
            self._keys[start:stop], self._tags[start:stop],
            self._va[start:stop], self._vb[start:stop],
            self._vexp[start:stop], self._heap, 0,
        )

    def read_block(self, index: int) -> Block:
        """Fetch one block from the simulated disk; counts one I/O.

        Returns a zero-copy :class:`Block` view (iterable as ``(key,
        value)`` pairs) instead of a rebuilt tuple list.
        """
        block = self.block_view(index)
        self.io_reads += 1
        return block


def merge_entries_iter(
    runs: Sequence[SSTable],
    *,
    drop_tombstones: bool,
    span: Optional[Tuple[int, int]] = None,
    expire_before: Optional[int] = None,
) -> Iterator[Tuple[int, Any]]:
    """Streaming heapq k-way merge, newest first, last-write-wins per key.

    ``runs`` must be ordered newest to oldest. Each run streams its
    already-sorted entries (no intermediate dict, no re-sort); the heap
    tie-breaks equal keys by run age, so the newest version is emitted
    and older ones are skipped. ``span`` restricts every input to
    ``[lo, hi]`` — the clipping leveled merge units rely on. Tombstones
    are dropped only when merging into the bottom level
    (``drop_tombstones=True``), as in real leveled compaction.

    ``expire_before`` is the store's logical TTL clock: a surviving
    newest version whose expiry stamp is at or before it is rewritten as
    a tombstone — it must keep shadowing older versions of its key until
    it reaches the bottom, where ``drop_tombstones`` discards it like
    any other delete. ``None`` disables expiry (TTL-free callers).
    """
    lo, hi = span if span is not None else (None, None)

    def tagged(run: SSTable, age: int) -> Iterator[Tuple[int, int, Any]]:
        for key, value in run.iter_entries(lo, hi):
            yield key, age, value

    streams = [tagged(run, age) for age, run in enumerate(runs)]  # age 0 = newest
    previous: Optional[int] = None
    for key, _, value in heapq.merge(*streams):
        if key == previous:
            continue  # an older version of an already-emitted key
        previous = key
        if (
            expire_before is not None
            and isinstance(value, ExpiringValue)
            and value.expires_at <= expire_before
        ):
            value = TOMBSTONE
        if drop_tombstones and value is TOMBSTONE:
            continue
        yield key, value


def merge_runs(
    runs: Sequence[SSTable],
    *,
    drop_tombstones: bool,
) -> List[Tuple[int, Any]]:
    """K-way merge of runs, newest first, last-write-wins per key.

    The materialising wrapper around :func:`merge_entries_iter` —
    compaction itself streams through the iterator and never builds
    this list.
    """
    return list(merge_entries_iter(runs, drop_tombstones=drop_tombstones))
