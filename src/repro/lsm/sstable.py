"""Immutable sorted runs ("SSTables") with per-run range filters.

Each run keeps its keys in a sorted numpy array and simulates the disk:
every access that would touch storage increments an I/O counter. The
attached range filter — any :class:`repro.filters.base.RangeFilter` — is
consulted *before* touching the run, which is precisely the deployment
the paper's introduction motivates: filters in memory prevent
unnecessary reads of on-disk runs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.filters.base import RangeFilter
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.ttl import ExpiringValue

#: Builds a filter for a run: ``factory(keys, universe) -> RangeFilter``.
FilterFactory = Callable[[np.ndarray, int], RangeFilter]

#: Entries per simulated disk block — the granularity the block cache
#: fetches and pins. Fence pointers (the first key of every block) stay
#: in memory, like real SSTable index blocks.
BLOCK_ENTRIES = 256

#: Process-wide run ids. Runs are immutable, so a cache may key on the
#: id forever; ``itertools.count`` is atomic under the GIL, so ids stay
#: unique even when concurrent flushes create runs from pool threads.
_RUN_IDS = itertools.count()


def _max_expiry(values: Sequence[Any]) -> Optional[int]:
    """Largest expiry stamp in a run, or ``None`` when it never expires.

    ``None`` means at least one non-tombstone entry has no TTL — the run
    holds data that lives forever, so it can never age out wholesale.
    Tombstones are ignored: a run of expired entries plus tombstones is
    still droppable at the bottom of the store (tombstones there shadow
    nothing). An early exit on the first forever-live value keeps the
    common TTL-free run at O(1).
    """
    max_expiry = 0
    for value in values:
        if value is TOMBSTONE:
            continue
        if isinstance(value, ExpiringValue):
            if value.expires_at > max_expiry:
                max_expiry = value.expires_at
        else:
            return None
    return max_expiry


class SSTable:
    """An immutable sorted run of ``(key, value)`` entries.

    A run may additionally be a leveled *slice*: ``slice_bounds`` then
    records the key span the slice owns inside its level. Owning spans
    of a level's slices partition the universe — they are the routing
    metadata leveled compaction uses to merge a level-0 run into only
    the slices it overlaps — and may be wider than the slice's actual
    :attr:`key_bounds` (a slice can own a span no key currently sits in).
    """

    __slots__ = (
        "_keys", "_values", "_filter", "io_reads", "universe", "uid",
        "slice_bounds", "max_expiry",
    )

    def __init__(
        self,
        entries: Sequence[Tuple[int, Any]],
        universe: int,
        filter_factory: Optional[FilterFactory] = None,
        *,
        slice_bounds: Optional[Tuple[int, int]] = None,
    ) -> None:
        keys = [k for k, _ in entries]
        self._keys = np.asarray(keys, dtype=np.uint64)
        if self._keys.size > 1 and bool((self._keys[1:] <= self._keys[:-1]).any()):
            raise ValueError("SSTable entries must be sorted by strictly increasing key")
        self._values: List[Any] = [v for _, v in entries]
        self.universe = int(universe)
        self.io_reads = 0
        self.uid = next(_RUN_IDS)
        self.slice_bounds = slice_bounds
        self.max_expiry = _max_expiry(self._values)
        self._filter = (
            filter_factory(self._keys, self.universe) if filter_factory else None
        )

    @classmethod
    def from_parts(
        cls,
        keys: np.ndarray,
        values: List[Any],
        universe: int,
        filt: Optional[RangeFilter] = None,
        *,
        slice_bounds: Optional[Tuple[int, int]] = None,
    ) -> "SSTable":
        """Rebuild a run around an existing filter instance.

        The recovery path (:mod:`repro.engine.persist`) deserialises the
        filter that guarded the run when it was snapshotted; rebuilding it
        from the keys would draw fresh hash constants and change which
        probes false-positive after a reopen.
        """
        run = cls.__new__(cls)
        run._keys = np.asarray(keys, dtype=np.uint64)
        if run._keys.size > 1 and bool((run._keys[1:] <= run._keys[:-1]).any()):
            raise ValueError("SSTable entries must be sorted by strictly increasing key")
        if len(values) != run._keys.size:
            raise ValueError("keys and values must have the same length")
        run._values = list(values)
        run.universe = int(universe)
        run.io_reads = 0
        run.uid = next(_RUN_IDS)
        run.slice_bounds = slice_bounds
        run.max_expiry = _max_expiry(run._values)
        run._filter = filt
        return run

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def filter(self) -> Optional[RangeFilter]:
        return self._filter

    @property
    def key_bounds(self) -> Optional[Tuple[int, int]]:
        if self._keys.size == 0:
            return None
        return int(self._keys[0]), int(self._keys[-1])

    @property
    def filter_bits(self) -> int:
        return self._filter.size_in_bits if self._filter else 0

    @property
    def nbytes(self) -> int:
        """Simulated on-disk size: 8 key bytes + 8 value-slot bytes per
        entry (the unit :attr:`IoStats.bytes_compacted` accounts in)."""
        return int(self._keys.size) * 16

    def keys_view(self) -> np.ndarray:
        """The sorted key column, zero-copy and free of simulated I/O.

        Compaction *planning* reads this to route keys to overlapping
        slices without charging a run read — only merges that actually
        rewrite data touch the simulated disk.
        """
        return self._keys

    def fully_expired(self, now: int) -> bool:
        """Whether every entry of this run is dead at logical time ``now``.

        True only when the run is non-empty and every non-tombstone
        entry carries an expiry stamp at or before ``now``
        (:attr:`max_expiry` caches the largest stamp at construction, so
        this is O(1)). Such a run at the *bottom* of a store — nothing
        older beneath it to unshadow — can be aged out whole without
        rewriting a byte: the metadata-only ``"expire"`` compaction step
        (see :meth:`repro.lsm.store.LSMStore.compact_step`).
        """
        return (
            self._keys.size > 0
            and self.max_expiry is not None
            and self.max_expiry <= now
        )

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi]`` intersects this run's actual key bounds.

        A pure fence-pointer check (no filter, no simulated I/O): exact
        pruning for runs — notably leveled slices — whose key range lies
        entirely outside the probe.
        """
        if self._keys.size == 0:
            return False
        return int(self._keys[0]) <= hi and lo <= int(self._keys[-1])

    # ------------------------------------------------------------------
    # Filter consultation
    # ------------------------------------------------------------------
    def may_contain_range(self, lo: int, hi: int) -> bool:
        """Consult the in-memory filter; True means "must read the run"."""
        if self._filter is None:
            return True
        return self._filter.may_contain_range(lo, hi)

    # ------------------------------------------------------------------
    # "Disk" access (each call counts one simulated I/O)
    # ------------------------------------------------------------------
    def get(self, key: int) -> Tuple[bool, Any]:
        """Point lookup; counts one I/O."""
        self.io_reads += 1
        idx = int(np.searchsorted(self._keys, key))
        if idx < self._keys.size and int(self._keys[idx]) == key:
            return True, self._values[idx]
        return False, None

    def scan(self, lo: int, hi: int) -> List[Tuple[int, Any]]:
        """Range scan; counts one I/O (a run read), returns matches."""
        self.io_reads += 1
        start = int(np.searchsorted(self._keys, lo, side="left"))
        out: List[Tuple[int, Any]] = []
        idx = start
        while idx < self._keys.size and int(self._keys[idx]) <= hi:
            out.append((int(self._keys[idx]), self._values[idx]))
            idx += 1
        return out

    def entries(self) -> List[Tuple[int, Any]]:
        """Full dump (compaction input); counts one I/O."""
        self.io_reads += 1
        return [(int(k), v) for k, v in zip(self._keys, self._values)]

    def iter_entries(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, Any]]:
        """Stream ``(key, value)`` pairs in key order; counts one I/O.

        ``lo``/``hi`` restrict the stream to ``[lo, hi]`` (both
        inclusive) — the span clipping leveled merges use so a level-0
        run contributes each key to exactly one merge unit. Unlike
        :meth:`entries` nothing is materialised: the k-way merge of
        compaction pulls entries lazily and writes output slices as it
        goes.
        """
        self.io_reads += 1
        start = 0 if lo is None else int(np.searchsorted(self._keys, lo, side="left"))
        stop = (
            self._keys.size
            if hi is None
            else int(np.searchsorted(self._keys, hi, side="right"))
        )
        for i in range(start, stop):
            yield int(self._keys[i]), self._values[i]

    # ------------------------------------------------------------------
    # Block-granular access (the unit the block cache works in)
    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        """Number of :data:`BLOCK_ENTRIES`-sized blocks in the run."""
        return -(-self._keys.size // BLOCK_ENTRIES)

    def block_span(self, lo: int, hi: int) -> Optional[Tuple[int, int]]:
        """Blocks a reader must fetch to resolve ``[lo, hi]``, from the
        in-memory fence pointers alone (no simulated I/O).

        Returns an inclusive ``(first, last)`` block-index pair, or
        ``None`` when the fences prove the range precedes all stored
        keys. Fences only record each block's *first* key, so a range
        beyond the last key still costs one block read — exactly the
        wasted read a real fence-pointer index would incur.
        """
        if self._keys.size == 0 or lo > hi:
            return None
        fences = self._keys[::BLOCK_ENTRIES]
        # Block whose first key <= bound, i.e. the candidate block.
        first = int(np.searchsorted(fences, lo, side="right")) - 1
        last = int(np.searchsorted(fences, hi, side="right")) - 1
        if last < 0:
            return None  # the whole range sits before the first key
        return max(first, 0), last

    def read_block(self, index: int) -> List[Tuple[int, Any]]:
        """Fetch one block from the simulated disk; counts one I/O."""
        if not 0 <= index < self.block_count:
            raise IndexError(f"block {index} outside [0, {self.block_count})")
        self.io_reads += 1
        start = index * BLOCK_ENTRIES
        stop = min(start + BLOCK_ENTRIES, self._keys.size)
        return [
            (int(self._keys[i]), self._values[i]) for i in range(start, stop)
        ]


def merge_entries_iter(
    runs: Sequence[SSTable],
    *,
    drop_tombstones: bool,
    span: Optional[Tuple[int, int]] = None,
    expire_before: Optional[int] = None,
) -> Iterator[Tuple[int, Any]]:
    """Streaming heapq k-way merge, newest first, last-write-wins per key.

    ``runs`` must be ordered newest to oldest. Each run streams its
    already-sorted entries (no intermediate dict, no re-sort); the heap
    tie-breaks equal keys by run age, so the newest version is emitted
    and older ones are skipped. ``span`` restricts every input to
    ``[lo, hi]`` — the clipping leveled merge units rely on. Tombstones
    are dropped only when merging into the bottom level
    (``drop_tombstones=True``), as in real leveled compaction.

    ``expire_before`` is the store's logical TTL clock: a surviving
    newest version whose expiry stamp is at or before it is rewritten as
    a tombstone — it must keep shadowing older versions of its key until
    it reaches the bottom, where ``drop_tombstones`` discards it like
    any other delete. ``None`` disables expiry (TTL-free callers).
    """
    lo, hi = span if span is not None else (None, None)

    def tagged(run: SSTable, age: int) -> Iterator[Tuple[int, int, Any]]:
        for key, value in run.iter_entries(lo, hi):
            yield key, age, value

    streams = [tagged(run, age) for age, run in enumerate(runs)]  # age 0 = newest
    previous: Optional[int] = None
    for key, _, value in heapq.merge(*streams):
        if key == previous:
            continue  # an older version of an already-emitted key
        previous = key
        if (
            expire_before is not None
            and isinstance(value, ExpiringValue)
            and value.expires_at <= expire_before
        ):
            value = TOMBSTONE
        if drop_tombstones and value is TOMBSTONE:
            continue
        yield key, value


def merge_runs(
    runs: Sequence[SSTable],
    *,
    drop_tombstones: bool,
) -> List[Tuple[int, Any]]:
    """K-way merge of runs, newest first, last-write-wins per key.

    The materialising wrapper around :func:`merge_entries_iter` —
    compaction itself streams through the iterator and never builds
    this list.
    """
    return list(merge_entries_iter(runs, drop_tombstones=drop_tombstones))
