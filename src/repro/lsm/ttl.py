"""Time-to-live (TTL) values for the LSM store.

Time-series deployments of range filters (the paper's §6 workloads
include timestamp keys) retire old data wholesale: an entry is written
with an expiry stamp and must stop answering queries the moment the
clock passes it, long before compaction physically removes it. This
module supplies the value wrapper and the liveness predicate; the store
(:mod:`repro.lsm.store`) supplies the clock and the aging machinery.

Design points:

* **Logical clock.** Expiry is judged against an explicit, monotone
  integer clock (:meth:`repro.lsm.store.LSMStore.set_ttl_now`), never
  wall time — the whole test matrix stays deterministic, and recovery
  restores the clock from the checkpoint manifest so a reopened store
  answers exactly as before the crash.
* **Expired == deleted, exactly.** A key whose newest version has
  expired is absent from every read path (`get`, `range_scan`,
  `range_empty`), and — like a tombstone — it *shadows* older live
  versions of the same key: expiry never resurrects an overwritten
  value. Filters may still flag the range (they index raw keys), but
  the exact verification path applies :func:`is_live`, so verdicts
  never change, only prune-efficiency does.
* **Physical removal is a compaction concern.** Merges rewrite expired
  newest versions as tombstones (dropped at the bottom), and a bottom
  run whose entries have *all* expired ages out in one metadata-only
  ``"expire"`` step — the whole-key-range retirement leveled slices
  make cheap (see :meth:`~repro.lsm.sstable.SSTable.fully_expired`).

The wrapper is deliberately a plain picklable class: it rides the WAL
record and snapshot run formats unchanged (both pickle values), so TTL
entries survive crash recovery and process-mode snapshot workers with
zero format changes.
"""

from __future__ import annotations

from typing import Any, Optional


class ExpiringValue:
    """A value paired with the logical time at which it expires.

    The entry is live while ``now < expires_at`` and dead (invisible,
    shadowing) from ``expires_at`` on. Equality compares both fields —
    what WAL replay and differential harnesses need to verify recovery
    round-trips — while :func:`unwrap` recovers the payload read paths
    return.
    """

    __slots__ = ("value", "expires_at")

    def __init__(self, value: Any, expires_at: int) -> None:
        self.value = value
        self.expires_at = int(expires_at)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExpiringValue)
            and self.value == other.value
            and self.expires_at == other.expires_at
        )

    def __hash__(self) -> int:
        return hash((ExpiringValue, self.expires_at)) ^ hash(self.value)

    def __getstate__(self):
        return (self.value, self.expires_at)

    def __setstate__(self, state) -> None:
        self.value, self.expires_at = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpiringValue({self.value!r}, expires_at={self.expires_at})"


def is_live(value: Any, now: int) -> bool:
    """Whether ``value`` is visible at logical time ``now``.

    Plain (non-expiring) values are always live; an
    :class:`ExpiringValue` is live strictly before its stamp. Tombstones
    are not this predicate's concern — read paths check them separately.
    """
    if isinstance(value, ExpiringValue):
        return now < value.expires_at
    return True


def unwrap(value: Any) -> Any:
    """The payload a read path should return for a live ``value``."""
    if isinstance(value, ExpiringValue):
        return value.value
    return value


def expiry_of(value: Any) -> Optional[int]:
    """``expires_at`` for an :class:`ExpiringValue`, else ``None``."""
    if isinstance(value, ExpiringValue):
        return value.expires_at
    return None
