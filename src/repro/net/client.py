"""Clients for the network front door.

Two clients over the same frames:

* :class:`SyncClient` — a plain-socket, one-request-at-a-time client
  for tests, the CLI, and anything that wants the simplest possible
  call-and-wait surface. Responses are matched by request id, so it
  tolerates a server that interleaves other work;
* :class:`AsyncClient` — an asyncio client built for *pipelining*: each
  request returns immediately with an awaitable resolved by a
  background reader task when its response frame lands. The open-loop
  load generator keeps hundreds of requests in flight per connection
  through this class — which is also what gives the server's
  per-connection batching window something to coalesce.

Both clients perform the hello/version negotiation on connect and raise
:class:`ShedError` when the server's admission control rejects a
request (the client-visible half of backpressure: back off and retry,
the server is healthy), :class:`RemoteError` when the server reports a
failure, and :class:`~repro.net.protocol.ProtocolError` on malformed
frames.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.net import protocol as proto


class ShedError(ReproError):
    """The server's admission control rejected the request (back off)."""


class RemoteError(ReproError):
    """The server answered with an error status."""


def _check_status(frame: proto.Frame) -> proto.Frame:
    if frame.status == proto.STATUS_SHED:
        raise ShedError("request shed by server admission control")
    if frame.status == proto.STATUS_ERROR:
        raise RemoteError(frame.body.decode("utf-8", "replace"))
    return frame


class SyncClient:
    """Blocking client: connect, negotiate, then call-and-wait.

    Usable as a context manager. One request is outstanding at a time;
    the request-id counter still increments per call so server logs and
    packet captures stay unambiguous.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = proto.FrameDecoder()
        self._next_rid = 1
        self._version: Optional[int] = None
        rid = self._rid()
        self._sock.sendall(proto.encode_hello(rid))
        frame = _check_status(self._recv(rid))
        self._version = proto.decode_hello_response(frame.body)

    def _rid(self) -> int:
        rid = self._next_rid
        self._next_rid = (self._next_rid + 1) & 0xFFFFFFFF or 1
        return rid

    def _recv(self, rid: int) -> proto.Frame:
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ProtocolErrorClosed()
            for frame in self._decoder.feed(data):
                if frame.request_id == rid:
                    return frame
                # A frame for a request we no longer wait on (cannot
                # happen with the one-at-a-time discipline) is dropped.

    def _roundtrip(self, encode, *args) -> proto.Frame:
        rid = self._rid()
        self._sock.sendall(encode(rid, *args))
        return _check_status(self._recv(rid))

    @property
    def version(self) -> int:
        """The negotiated protocol version."""
        assert self._version is not None
        return self._version

    def ping(self) -> None:
        """Round-trip an empty frame (liveness check)."""
        self._roundtrip(lambda rid: proto.encode_frame(proto.OP_PING, rid))

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; returns the stored bytes or ``None``."""
        frame = self._roundtrip(proto.encode_point, key)
        return proto.decode_point_response(frame.body)

    def range_empty(self, lo: int, hi: int) -> bool:
        """Single range-emptiness query (joins the server's window)."""
        frame = self._roundtrip(proto.encode_range, lo, hi)
        return proto.decode_range_response(frame.body)

    def batch_range_empty(self, los, his) -> np.ndarray:
        """Columnar batch query; returns the verdict bool array."""
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        frame = self._roundtrip(proto.encode_batch, los, his)
        return proto.decode_batch_response(frame.body)

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key`` (acknowledged when applied)."""
        self._roundtrip(proto.encode_insert, key, value)

    def delete(self, key: int) -> None:
        """Delete ``key`` (acknowledged when applied)."""
        self._roundtrip(proto.encode_delete, key)

    def stats(self) -> dict:
        """The service's structured stats snapshot + server counters."""
        frame = self._roundtrip(
            lambda rid: proto.encode_frame(proto.OP_STATS, rid)
        )
        return proto.decode_stats_response(frame.body)

    def send_raw(self, payload: bytes) -> None:
        """Ship arbitrary bytes (the fuzz tests' way in)."""
        self._sock.sendall(payload)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort close
            pass

    def __enter__(self) -> "SyncClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ProtocolErrorClosed(proto.ProtocolError):
    """The server closed the connection mid-conversation."""

    def __init__(self) -> None:
        super().__init__("connection closed by server")


class AsyncClient:
    """Pipelined asyncio client: many requests in flight per connection.

    Create with :meth:`connect` inside a running event loop. Every
    request coroutine resolves when its response frame arrives, in
    whatever order the server answers — the connection never blocks on
    an individual request, which is what open-loop load needs.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = proto.FrameDecoder()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_rid = 1
        self._version: Optional[int] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float = 30.0
    ) -> "AsyncClient":
        """Open a connection, start the reader task, negotiate versions."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        client = cls(reader, writer)
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop()
        )
        rid = client._rid_peek()
        frame = await client._request(rid, proto.encode_hello(rid))
        client._version = proto.decode_hello_response(frame.body)
        return client

    def _rid_peek(self) -> int:
        rid = self._next_rid
        self._next_rid = (self._next_rid + 1) & 0xFFFFFFFF or 1
        return rid

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for frame in self._decoder.feed(data):
                    future = self._pending.pop(frame.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except (ConnectionResetError, BrokenPipeError, proto.ProtocolError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ProtocolErrorClosed())
            self._pending.clear()

    async def _request(self, rid: int, payload: bytes) -> proto.Frame:
        if self._closed:
            raise ProtocolErrorClosed()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        self._writer.write(payload)
        await self._writer.drain()
        return _check_status(await future)

    @property
    def version(self) -> int:
        """The negotiated protocol version."""
        assert self._version is not None
        return self._version

    async def ping(self) -> None:
        """Round-trip an empty frame (liveness check)."""
        rid = self._rid_peek()
        await self._request(rid, proto.encode_frame(proto.OP_PING, rid))

    async def range_empty(self, lo: int, hi: int) -> bool:
        """Single range-emptiness query; pipelines freely."""
        rid = self._rid_peek()
        frame = await self._request(rid, proto.encode_range(rid, lo, hi))
        return proto.decode_range_response(frame.body)

    async def batch_range_empty(self, los, his) -> np.ndarray:
        """Columnar batch query; returns the verdict bool array."""
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        rid = self._rid_peek()
        frame = await self._request(rid, proto.encode_batch(rid, los, his))
        return proto.decode_batch_response(frame.body)

    async def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        rid = self._rid_peek()
        await self._request(rid, proto.encode_insert(rid, key, value))

    async def get(self, key: int) -> Optional[bytes]:
        """Point lookup; returns the stored bytes or ``None``."""
        rid = self._rid_peek()
        frame = await self._request(rid, proto.encode_point(rid, key))
        return proto.decode_point_response(frame.body)

    async def stats(self) -> dict:
        """The service's structured stats snapshot + server counters."""
        rid = self._rid_peek()
        frame = await self._request(
            rid, proto.encode_frame(proto.OP_STATS, rid)
        )
        return proto.decode_stats_response(frame.body)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
