"""Clients for the network front door.

Two clients over the same frames:

* :class:`SyncClient` — a plain-socket, one-request-at-a-time client
  for tests, the CLI, and anything that wants the simplest possible
  call-and-wait surface. Responses are matched by request id, so it
  tolerates a server that interleaves other work;
* :class:`AsyncClient` — an asyncio client built for *pipelining*: each
  request returns immediately with an awaitable resolved by a
  background reader task when its response frame lands. The open-loop
  load generator keeps hundreds of requests in flight per connection
  through this class — which is also what gives the server's
  per-connection batching window something to coalesce.

Both clients perform the hello/version negotiation on connect and raise
:class:`ShedError` when the server's admission control rejects a
request (the client-visible half of backpressure: back off and retry,
the server is healthy), :class:`RemoteError` when the server reports a
failure, and :class:`~repro.net.protocol.ProtocolError` on malformed
frames.

Failure handling
----------------
Every request runs under a *per-request deadline* (``request_timeout``):
a response that does not land in time raises
:class:`~repro.errors.DeadlineExceeded` — a
:class:`~repro.errors.ReproError` that is also a ``TimeoutError`` — so
a stalled server can never hang a caller forever. A late response for a
timed-out request id is recognised and dropped, never misdelivered to
a newer request.

With a :class:`RetryPolicy` attached, transient failures are retried
with bounded exponential backoff and jitter. Retryable: admission-
control sheds, connection resets/closures, and deadline expiries —
the request may simply have hit a momentarily overloaded or stalled
server, and every operation this protocol carries (probes, lookups,
idempotent puts/deletes) is safe to re-send. NOT retryable:
:class:`RemoteError` (the server *answered*; asking again gets the same
answer) and malformed-frame :class:`~repro.net.protocol.ProtocolError`
(a software bug, not weather). Connection-level failures re-dial and
re-negotiate before the next attempt; each attempt uses a fresh request
id. All of this is exercised under injected resets, stalls, and partial
frames by the chaos suite (``docs/robustness.md``).
"""

from __future__ import annotations

import asyncio
import errno
import random
import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import DeadlineExceeded, InvalidParameterError, ReproError
from repro.net import protocol as proto


class ShedError(ReproError):
    """The server's admission control rejected the request (back off)."""


class RemoteError(ReproError):
    """The server answered with an error status."""


class ProtocolErrorClosed(proto.ProtocolError):
    """The connection closed mid-conversation."""

    def __init__(self, detail: str = "connection closed by server") -> None:
        super().__init__(detail)


#: OS-level errno values that mean "the connection died", not "bad call".
_RESET_ERRNOS = frozenset({
    errno.ECONNRESET, errno.ECONNABORTED, errno.ECONNREFUSED,
    errno.EPIPE, errno.ESHUTDOWN, errno.ENOTCONN,
})


def _check_status(frame: proto.Frame) -> proto.Frame:
    if frame.status == proto.STATUS_SHED:
        raise ShedError("request shed by server admission control")
    if frame.status == proto.STATUS_ERROR:
        raise RemoteError(frame.body.decode("utf-8", "replace"))
    return frame


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient failures.

    ``max_attempts`` caps the total tries (1 = no retries). The delay
    before attempt ``k`` (0-based retry index) is
    ``min(base_delay * multiplier**k, max_delay)``, scaled by a random
    factor in ``[1 - jitter, 1 + jitter]`` so a fleet of clients that
    failed together does not retry together (the thundering-herd
    problem bounded backoff exists to solve). Passing ``seed`` makes
    the jitter deterministic — what the chaos differential uses so a
    failing run replays exactly.
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise InvalidParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        self._rng = random.Random(self.seed)

    def delay(self, retry_index: int) -> float:
        """Jittered backoff delay before the ``retry_index``-th retry."""
        raw = min(
            self.base_delay * (self.multiplier ** retry_index), self.max_delay
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, raw)

    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        """Whether an attempt that raised ``exc`` is safe to re-send.

        Sheds, deadline expiries, and anything that means "the
        connection died" are transient; a :class:`RemoteError` is a
        *delivered* answer and a malformed-frame
        :class:`~repro.net.protocol.ProtocolError` is a bug — retrying
        either would loop on a deterministic failure.
        """
        if isinstance(exc, (ShedError, DeadlineExceeded)):
            return True
        if isinstance(exc, ProtocolErrorClosed):
            return True
        if isinstance(exc, (RemoteError, proto.ProtocolError)):
            return False
        if isinstance(exc, (ConnectionError, BrokenPipeError)):
            return True
        if isinstance(exc, (asyncio.IncompleteReadError, EOFError)):
            return True
        if isinstance(exc, OSError):
            return exc.errno in _RESET_ERRNOS or exc.errno is None
        return False


class SyncClient:
    """Blocking client: connect, negotiate, then call-and-wait.

    Usable as a context manager. One request is outstanding at a time;
    the request-id counter still increments per call so server logs and
    packet captures stay unambiguous.

    ``timeout`` bounds the TCP connect; ``request_timeout`` (defaults
    to ``timeout``) is the per-request deadline, raising
    :class:`~repro.errors.DeadlineExceeded`. With ``retry`` set,
    transient failures re-dial (when the connection died) and re-send
    under the policy's backoff schedule.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        request_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._addr: Tuple[str, int] = (host, port)
        self._timeout = timeout
        self._request_timeout = (
            timeout if request_timeout is None else request_timeout
        )
        self._retry = retry
        self._sock: Optional[socket.socket] = None
        self._decoder = proto.FrameDecoder()
        self._next_rid = 1
        self._version: Optional[int] = None
        self._connect_retrying()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect_retrying(self) -> None:
        """First dial under the retry policy — a reset storm can kill
        the handshake too, not just an established connection."""
        attempts = self._retry.max_attempts if self._retry else 1
        for attempt in range(attempts):
            try:
                self._connect()
                return
            except (ReproError, ConnectionError, OSError) as exc:
                self._teardown()
                if (
                    self._retry is None
                    or attempt == attempts - 1
                    or not RetryPolicy.is_retryable(exc)
                ):
                    raise
            time.sleep(self._retry.delay(attempt))

    def _connect(self) -> None:
        """(Re-)dial and re-negotiate; the previous socket is dropped."""
        self._teardown()
        self._sock = socket.create_connection(self._addr, timeout=self._timeout)
        self._decoder = proto.FrameDecoder()
        rid = self._rid()
        deadline = time.monotonic() + self._request_timeout
        self._sock.sendall(proto.encode_hello(rid))
        frame = _check_status(self._recv(rid, deadline))
        self._version = proto.decode_hello_response(frame.body)

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
            self._sock = None

    def _rid(self) -> int:
        rid = self._next_rid
        self._next_rid = (self._next_rid + 1) & 0xFFFFFFFF or 1
        return rid

    def _recv(self, rid: int, deadline: float) -> proto.Frame:
        assert self._sock is not None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"no response for request {rid} within "
                    f"{self._request_timeout:.3f}s"
                )
            self._sock.settimeout(remaining)
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise DeadlineExceeded(
                    f"no response for request {rid} within "
                    f"{self._request_timeout:.3f}s"
                ) from exc
            if not data:
                raise ProtocolErrorClosed()
            for frame in self._decoder.feed(data):
                if frame.request_id == rid:
                    return frame
                # A frame for a request we no longer wait on — e.g. the
                # late answer to an attempt that already hit its
                # deadline — is dropped, never misdelivered.

    def _attempt(self, encode, args) -> proto.Frame:
        if self._sock is None:
            self._connect()
        assert self._sock is not None
        rid = self._rid()
        deadline = time.monotonic() + self._request_timeout
        try:
            self._sock.settimeout(self._request_timeout)
            self._sock.sendall(encode(rid, *args))
            return _check_status(self._recv(rid, deadline))
        except socket.timeout as exc:
            raise DeadlineExceeded(
                f"request {rid} could not be sent within "
                f"{self._request_timeout:.3f}s"
            ) from exc

    def _roundtrip(self, encode, *args) -> proto.Frame:
        attempts = self._retry.max_attempts if self._retry else 1
        for attempt in range(attempts):
            try:
                return self._attempt(encode, args)
            except ReproError as exc:
                if (
                    self._retry is None
                    or attempt == attempts - 1
                    or not RetryPolicy.is_retryable(exc)
                ):
                    raise
                # A shed leaves the connection healthy; anything else
                # that is retryable means it cannot be trusted — drop it
                # so the next attempt re-dials.
                if not isinstance(exc, ShedError):
                    self._teardown()
            except (ConnectionError, OSError) as exc:
                if (
                    self._retry is None
                    or attempt == attempts - 1
                    or not RetryPolicy.is_retryable(exc)
                ):
                    raise
                self._teardown()
            time.sleep(self._retry.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def version(self) -> int:
        """The negotiated protocol version."""
        assert self._version is not None
        return self._version

    def ping(self) -> None:
        """Round-trip an empty frame (liveness check)."""
        self._roundtrip(lambda rid: proto.encode_frame(proto.OP_PING, rid))

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; returns the stored bytes or ``None``."""
        frame = self._roundtrip(proto.encode_point, key)
        return proto.decode_point_response(frame.body)

    def range_empty(self, lo: int, hi: int) -> bool:
        """Single range-emptiness query (joins the server's window)."""
        frame = self._roundtrip(proto.encode_range, lo, hi)
        return proto.decode_range_response(frame.body)

    def batch_range_empty(self, los, his) -> np.ndarray:
        """Columnar batch query; returns the verdict bool array."""
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        frame = self._roundtrip(proto.encode_batch, los, his)
        return proto.decode_batch_response(frame.body)

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key`` (acknowledged when applied).

        Idempotent, so safe under the retry policy: re-sending a put
        whose ack was lost re-applies the same value.
        """
        self._roundtrip(proto.encode_insert, key, value)

    def delete(self, key: int) -> None:
        """Delete ``key`` (acknowledged when applied). Idempotent."""
        self._roundtrip(proto.encode_delete, key)

    def stats(self) -> dict:
        """The service's structured stats snapshot + server counters."""
        frame = self._roundtrip(
            lambda rid: proto.encode_frame(proto.OP_STATS, rid)
        )
        return proto.decode_stats_response(frame.body)

    def send_raw(self, payload: bytes) -> None:
        """Ship arbitrary bytes (the fuzz tests' way in)."""
        assert self._sock is not None
        self._sock.sendall(payload)

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "SyncClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncClient:
    """Pipelined asyncio client: many requests in flight per connection.

    Create with :meth:`connect` inside a running event loop. Every
    request coroutine resolves when its response frame arrives, in
    whatever order the server answers — the connection never blocks on
    an individual request, which is what open-loop load needs.

    ``request_timeout`` bounds each request (send to response) with
    :class:`~repro.errors.DeadlineExceeded` — the connect ``timeout``
    alone used to leave a request against a stalled server pending
    forever. With ``retry`` set, transient failures (shed, reset,
    deadline) re-send under the policy's backoff; if the connection
    died, the next attempt re-dials, restarts the reader task, and
    re-negotiates.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = proto.FrameDecoder()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_rid = 1
        self._version: Optional[int] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False
        self._user_closed = False
        self._addr: Optional[Tuple[str, int]] = None
        self._timeout = 30.0
        self._request_timeout: Optional[float] = None
        self._retry: Optional[RetryPolicy] = None
        self._reconnect_lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        request_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "AsyncClient":
        """Open a connection, start the reader task, negotiate versions.

        With ``retry`` set, the initial dial-and-hello is itself under
        the policy — a storm that resets the handshake should cost a
        backoff, not the whole connection attempt.
        """
        attempts = retry.max_attempts if retry else 1
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            client: Optional["AsyncClient"] = None
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout
                )
                client = cls(reader, writer)
                client._addr = (host, port)
                client._timeout = timeout
                client._request_timeout = (
                    timeout if request_timeout is None else request_timeout
                )
                client._retry = retry
                client._start_reader()
                await client._hello()
                return client
            except (ReproError, ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                if client is not None:
                    await client.close()
                last = exc
                if (
                    retry is None
                    or attempt == attempts - 1
                    or not RetryPolicy.is_retryable(exc)
                ):
                    raise
            await asyncio.sleep(retry.delay(attempt))
        assert last is not None  # pragma: no cover
        raise last  # pragma: no cover

    def _start_reader(self) -> None:
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _hello(self) -> None:
        rid = self._rid_peek()
        frame = await self._request(rid, proto.encode_hello(rid))
        self._version = proto.decode_hello_response(frame.body)

    async def _reconnect(self) -> None:
        """Re-dial after the connection died (retry path only).

        Serialised by a lock so concurrent pipelined requests that all
        saw the same dead connection trigger one re-dial, not a stampede
        of them; latecomers find ``_closed`` already cleared.
        """
        async with self._reconnect_lock:
            if not self._closed or self._user_closed:
                return
            assert self._addr is not None
            if self._reader_task is not None:
                self._reader_task.cancel()
                try:
                    await self._reader_task
                except asyncio.CancelledError:
                    pass
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*self._addr), self._timeout
            )
            self._reader = reader
            self._writer = writer
            self._decoder = proto.FrameDecoder()
            self._pending = {}
            self._closed = False
            self._start_reader()
            await self._hello()

    def _rid_peek(self) -> int:
        rid = self._next_rid
        self._next_rid = (self._next_rid + 1) & 0xFFFFFFFF or 1
        return rid

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for frame in self._decoder.feed(data):
                    future = self._pending.pop(frame.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                    # else: the late answer to a request that already
                    # hit its deadline — dropped, never misdelivered.
        except (ConnectionResetError, BrokenPipeError, OSError,
                proto.ProtocolError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ProtocolErrorClosed())
            self._pending.clear()

    async def _request(self, rid: int, payload: bytes) -> proto.Frame:
        if self._closed:
            raise ProtocolErrorClosed()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(payload)
            await self._writer.drain()
            if self._request_timeout is None:
                return _check_status(await future)
            try:
                return _check_status(
                    await asyncio.wait_for(future, self._request_timeout)
                )
            except asyncio.TimeoutError as exc:
                raise DeadlineExceeded(
                    f"no response for request {rid} within "
                    f"{self._request_timeout:.3f}s"
                ) from exc
        finally:
            self._pending.pop(rid, None)

    async def _roundtrip(
        self, encode: Callable[[int], bytes]
    ) -> proto.Frame:
        """One logical request under the retry policy.

        Each attempt gets a *fresh* request id, so a late response to a
        timed-out attempt can never satisfy its own retry.
        """
        attempts = self._retry.max_attempts if self._retry else 1
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            if self._closed and not self._user_closed and self._retry:
                try:
                    await self._reconnect()
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        ReproError) as exc:
                    last = exc
                    if attempt == attempts - 1:
                        raise
                    await asyncio.sleep(self._retry.delay(attempt))
                    continue
            rid = self._rid_peek()
            try:
                return await self._request(rid, encode(rid))
            except (ReproError, ConnectionError, OSError) as exc:
                last = exc
                if (
                    self._retry is None
                    or attempt == attempts - 1
                    or not RetryPolicy.is_retryable(exc)
                ):
                    raise
            await asyncio.sleep(self._retry.delay(attempt))
        assert last is not None  # pragma: no cover
        raise last  # pragma: no cover

    @property
    def version(self) -> int:
        """The negotiated protocol version."""
        assert self._version is not None
        return self._version

    async def ping(self) -> None:
        """Round-trip an empty frame (liveness check)."""
        await self._roundtrip(
            lambda rid: proto.encode_frame(proto.OP_PING, rid)
        )

    async def range_empty(self, lo: int, hi: int) -> bool:
        """Single range-emptiness query; pipelines freely."""
        frame = await self._roundtrip(
            lambda rid: proto.encode_range(rid, lo, hi)
        )
        return proto.decode_range_response(frame.body)

    async def batch_range_empty(self, los, his) -> np.ndarray:
        """Columnar batch query; returns the verdict bool array."""
        los = np.asarray(los, dtype=np.uint64)
        his = np.asarray(his, dtype=np.uint64)
        frame = await self._roundtrip(
            lambda rid: proto.encode_batch(rid, los, his)
        )
        return proto.decode_batch_response(frame.body)

    async def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key`` (idempotent; safe to retry)."""
        await self._roundtrip(
            lambda rid: proto.encode_insert(rid, key, value)
        )

    async def get(self, key: int) -> Optional[bytes]:
        """Point lookup; returns the stored bytes or ``None``."""
        frame = await self._roundtrip(
            lambda rid: proto.encode_point(rid, key)
        )
        return proto.decode_point_response(frame.body)

    async def stats(self) -> dict:
        """The service's structured stats snapshot + server counters."""
        frame = await self._roundtrip(
            lambda rid: proto.encode_frame(proto.OP_STATS, rid)
        )
        return proto.decode_stats_response(frame.body)

    async def close(self) -> None:
        self._user_closed = True
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
