"""Open-loop load generator for the network front door.

Simulates the "millions of users" regime at laptop scale: ``clients``
independent request streams with Zipfian key popularity
(:func:`~repro.workloads.queries.zipfian_queries`) and Poisson or
bursty arrivals, multiplexed over a small pool of pipelined
:class:`~repro.net.client.AsyncClient` connections — exactly how a
real fleet fronts a store through connection pools, and exactly what
gives the server's per-connection batching windows queries to coalesce.

**Open loop means the arrival clock never waits for responses.** Every
request has a scheduled send time drawn before the run starts; its
recorded latency is ``completion - scheduled_arrival``, so queueing
delay inside a saturated server (or a loadgen that fell behind the
schedule) shows up as latency instead of silently throttling the
offered rate — the classic closed-loop coordinated-omission trap this
module exists to avoid.

Shed responses (admission control) are counted separately, not folded
into the latency distribution: a shed is the server *choosing* to fail
fast, and the benchmark gates assert it happens under deliberate
overload instead of unbounded queue growth.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DeadlineExceeded, InvalidParameterError
from repro.net import protocol as proto
from repro.net.client import (
    AsyncClient,
    ProtocolErrorClosed,
    RemoteError,
    RetryPolicy,
    ShedError,
)
from repro.workloads.queries import uncorrelated_queries, zipfian_queries


def classify_error(exc: BaseException) -> str:
    """Ledger class of a failed request: reset / timeout / remote /
    protocol / other.

    The classes mirror the retry policy's taxonomy, so a chaos run's
    ``[loadgen]`` summary says directly *what* the storm did — how many
    requests died to connection resets versus deadlines versus the
    server answering with an error — instead of one opaque ``errors``
    count.
    """
    if isinstance(exc, DeadlineExceeded):
        return "timeout"
    if isinstance(exc, RemoteError):
        return "remote"
    if isinstance(exc, ProtocolErrorClosed):
        return "reset"
    if isinstance(exc, proto.ProtocolError):
        return "protocol"
    if isinstance(exc, (ConnectionError, BrokenPipeError, EOFError)):
        return "reset"
    if isinstance(exc, (asyncio.TimeoutError, TimeoutError)):
        return "timeout"
    if isinstance(exc, OSError):
        return "reset"
    return "other"


@dataclass
class LoadConfig:
    """Knobs of one open-loop run.

    ``rate`` is the total offered load in queries/second across all
    simulated clients; ``n_requests`` bounds the run. ``arrivals`` is
    ``"poisson"`` (memoryless) or ``"bursty"`` (on/off modulated:
    periods of ``burst_period`` seconds alternate between
    ``rate * burst_factor`` and a trickle, keeping the same mean rate).
    ``distribution`` is ``"zipf"`` (needs ``keys``) or ``"uniform"``.
    """

    clients: int = 256
    connections: int = 8
    rate: float = 2000.0
    n_requests: int = 5000
    range_size: int = 32
    distribution: str = "zipf"
    skew: float = 1.1
    n_hot: int = 1024
    arrivals: str = "poisson"
    burst_factor: float = 8.0
    burst_period: float = 0.25
    seed: int = 42
    timeout: float = 60.0
    request_timeout: Optional[float] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise InvalidParameterError("request_timeout must be positive")
        if self.clients < 1 or self.connections < 1:
            raise InvalidParameterError("clients and connections must be >= 1")
        if self.rate <= 0:
            raise InvalidParameterError("rate must be positive")
        if self.n_requests < 1:
            raise InvalidParameterError("n_requests must be >= 1")
        if self.distribution not in ("zipf", "uniform"):
            raise InvalidParameterError(
                f"unknown distribution {self.distribution!r}"
            )
        if self.arrivals not in ("poisson", "bursty"):
            raise InvalidParameterError(f"unknown arrivals {self.arrivals!r}")
        if self.burst_factor < 1:
            raise InvalidParameterError("burst_factor must be >= 1")


@dataclass
class LoadReport:
    """What one open-loop run measured.

    ``sent`` counts requests actually fired on the wire — equal to
    ``cfg.n_requests`` on a run that completes, smaller when the run's
    timeout truncates the schedule. Fired-but-unanswered stragglers are
    cancelled at teardown and tallied under ``errors``, so
    ``completed + shed + errors == sent`` always holds.

    ``error_classes`` breaks ``errors`` down by failure class
    (:func:`classify_error`: reset / timeout / remote / protocol /
    other, plus ``cancelled`` for teardown stragglers); the values sum
    to ``errors``. A chaos run reads its damage report straight from
    here.
    """

    sent: int
    completed: int
    shed: int
    errors: int
    elapsed: float
    offered_qps: float
    latencies: np.ndarray = field(repr=False)
    empties: int = 0
    error_classes: Dict[str, int] = field(default_factory=dict)

    @property
    def achieved_qps(self) -> float:
        """Successfully answered queries per wall-clock second."""
        return self.completed / self.elapsed if self.elapsed else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of sent requests the server rejected."""
        return self.shed / self.sent if self.sent else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (NaN when nothing completed)."""
        if self.latencies.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        """Median latency, seconds."""
        return self.percentile(50)

    @property
    def p99(self) -> float:
        """99th-percentile latency, seconds."""
        return self.percentile(99)

    def to_dict(self) -> dict:
        """JSON-ready summary (drops the raw latency array)."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "elapsed_s": self.elapsed,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "shed_rate": self.shed_rate,
            "empties": self.empties,
            "error_classes": dict(self.error_classes),
            "p50_s": self.p50,
            "p90_s": self.percentile(90),
            "p99_s": self.p99,
            "max_s": (
                float(self.latencies.max()) if self.latencies.size else
                float("nan")
            ),
        }


def generate_arrivals(cfg: LoadConfig) -> np.ndarray:
    """Scheduled send offsets (seconds, sorted) for the whole run.

    Poisson: one aggregate memoryless process at ``cfg.rate`` (the
    superposition of the per-client processes — statistically identical
    and much cheaper to draw). Bursty: the same process modulated by an
    on/off square wave, ``burst_factor`` times the rate when on and the
    matching trickle when off, mean preserved.
    """
    rng = np.random.default_rng(cfg.seed)
    gaps = rng.exponential(1.0 / cfg.rate, cfg.n_requests)
    if cfg.arrivals == "bursty":
        # Thin the mean gap while "on", stretch it while "off"; the
        # pair (f, 2 - 1/f scaled) keeps the long-run mean at cfg.rate
        # for a 50% duty cycle.
        times = np.cumsum(gaps)
        phase = (times // cfg.burst_period).astype(np.int64) % 2
        on = phase == 0
        factor = np.where(on, 1.0 / cfg.burst_factor,
                          2.0 - 1.0 / cfg.burst_factor)
        gaps = gaps * factor
    return np.cumsum(gaps)


def generate_queries(
    cfg: LoadConfig, universe: int, keys: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """The run's query columns, drawn per ``cfg.distribution``."""
    if cfg.distribution == "zipf":
        if keys is None:
            raise InvalidParameterError(
                "zipf distribution needs the dataset keys (hot-key popularity "
                "is defined over them); use distribution='uniform' otherwise"
            )
        return zipfian_queries(
            keys, cfg.n_requests, cfg.range_size, universe,
            skew=cfg.skew, n_hot=cfg.n_hot, seed=cfg.seed + 1,
        )
    queries = uncorrelated_queries(
        cfg.n_requests, cfg.range_size, universe, keys=None, seed=cfg.seed + 1
    )
    los = np.asarray([lo for lo, _ in queries], dtype=np.uint64)
    his = np.asarray([hi for _, hi in queries], dtype=np.uint64)
    return los, his


async def run_async(
    host: str,
    port: int,
    cfg: LoadConfig,
    *,
    universe: int,
    keys: Optional[np.ndarray] = None,
) -> LoadReport:
    """Drive one open-loop run against a live server (asyncio side)."""
    los, his = generate_queries(cfg, universe, keys)
    offsets = generate_arrivals(cfg)
    # Simulated client -> connection assignment: deterministic striping.
    rng = np.random.default_rng(cfg.seed + 2)
    client_of = rng.integers(0, cfg.clients, cfg.n_requests)
    conn_of = client_of % cfg.connections
    conns = [
        await AsyncClient.connect(
            host, port, timeout=cfg.timeout,
            request_timeout=cfg.request_timeout, retry=cfg.retry,
        )
        for _ in range(cfg.connections)
    ]
    latencies: List[float] = []
    counts: Dict[str, int] = {"shed": 0, "errors": 0, "empties": 0}
    error_classes: Dict[str, int] = {}
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(conn: AsyncClient, idx: int) -> None:
        scheduled = start + float(offsets[idx])
        try:
            empty = await conn.range_empty(int(los[idx]), int(his[idx]))
            latencies.append(loop.time() - scheduled)
            counts["empties"] += int(empty)
        except ShedError:
            counts["shed"] += 1
        except Exception as exc:  # noqa: BLE001 - tally by class, keep firing
            counts["errors"] += 1
            kind = classify_error(exc)
            error_classes[kind] = error_classes.get(kind, 0) + 1

    # Fired requests live at run scope, not inside drive(): the outer
    # timeout cancels only the drive() coroutines, so any fire() task
    # still pending at teardown must be cancelled here — otherwise a
    # truncated run leaks "Task was destroyed but it is pending"
    # warnings and stragglers append latencies after the report exists.
    tasks: List[asyncio.Task] = []

    async def drive(cid: int) -> None:
        conn = conns[cid]
        for idx in np.flatnonzero(conn_of == cid):
            delay = start + float(offsets[idx]) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(loop.create_task(fire(conn, int(idx))))

    cancelled = 0
    try:
        await asyncio.wait_for(
            asyncio.gather(*(drive(c) for c in range(cfg.connections))),
            timeout=cfg.timeout * 2,
        )
        if tasks:
            await asyncio.wait(tasks, timeout=cfg.timeout)
    finally:
        pending = [task for task in tasks if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        cancelled = len(pending)
        if cancelled:
            error_classes["cancelled"] = (
                error_classes.get("cancelled", 0) + cancelled
            )
        elapsed = loop.time() - start
        for conn in conns:
            await conn.close()
    return LoadReport(
        # sent counts requests actually fired; on a truncated run the
        # never-scheduled remainder must not dilute shed_rate.
        sent=len(tasks),
        completed=len(latencies),
        shed=counts["shed"],
        errors=counts["errors"] + cancelled,
        elapsed=elapsed,
        offered_qps=cfg.rate,
        latencies=np.asarray(latencies, dtype=np.float64),
        empties=counts["empties"],
        error_classes=error_classes,
    )


def run(
    host: str,
    port: int,
    cfg: LoadConfig,
    *,
    universe: int,
    keys: Optional[np.ndarray] = None,
) -> LoadReport:
    """Synchronous wrapper: run the open-loop generator to completion."""
    return asyncio.run(
        run_async(host, port, cfg, universe=universe, keys=keys)
    )
