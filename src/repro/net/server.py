"""The asyncio front door over :class:`~repro.engine.service.RangeQueryService`.

:class:`NetServer` turns the in-process serving layer into a network
service speaking the framed protocol of :mod:`repro.net.protocol`:

* **connection multiplexing** — every request carries a client-chosen
  id and responses return as they complete, so one connection carries
  many pipelined requests out of order (the load generator multiplexes
  hundreds of simulated clients over a handful of sockets this way);
* **batching windows** — single-range queries that arrive on a
  connection within ``batch_window`` seconds of each other coalesce
  into one columnar batch for the service's vectorised pipeline. For
  small skewed queries this is the difference between one engine
  round-trip per query and one per few hundred queries; the columnar
  router makes the coalesced call barely more expensive than a single
  one. ``batch_window=0`` disables coalescing (each frame runs alone —
  the baseline the network bench gates against);
* **admission control / backpressure** — a bounded server-wide
  in-flight budget (``max_inflight``): a query that would exceed it is
  answered immediately with :data:`~repro.net.protocol.STATUS_SHED`
  instead of queueing without bound. The same shed response fires when
  the engine's health signals — compaction backlog and windowed
  block-cache miss rate, both read from the service's structured
  :meth:`~repro.engine.service.RangeQueryService.stats_snapshot` —
  cross their configured ceilings, so an overloaded store rejects
  early rather than melting;
* **graceful shutdown** — :meth:`NetServer.stop` stops accepting,
  flushes every open batching window, waits for in-flight work to
  drain, and only then closes connections; the CLI's signal handlers
  ride on it (drain → checkpoint → close, no traceback).

Blocking service calls run on a private thread-pool executor so the
event loop never waits on a shard lock. Call the server from one
thread only (asyncio's rule); :func:`serve_in_thread` wraps a server
in a daemon thread + event loop for synchronous callers (tests, the
benchmarks).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.service import RangeQueryService
from repro.errors import InvalidParameterError
from repro.net import protocol as proto


@dataclass
class ServerConfig:
    """Tunables of the front door (all times in seconds).

    ``max_compaction_backlog`` / ``max_cache_miss_rate`` default to
    ``None`` — the corresponding overload signal is ignored. The
    in-flight budget is always enforced.

    ``idle_timeout`` (``None`` = disabled) closes a connection that has
    sent no bytes for that long: a stalled or half-dead peer must not
    hold a connection slot forever (counted in ``idle_closed``).
    ``max_frame`` caps the accepted frame size *per connection* below
    the protocol's absolute :data:`~repro.net.protocol.MAX_FRAME`, so a
    hostile length prefix cannot make the server buffer gigabytes.
    """

    batch_window: float = 300e-6
    max_batch: int = 512
    max_inflight: int = 4096
    max_compaction_backlog: Optional[int] = None
    max_cache_miss_rate: Optional[float] = None
    stats_poll: float = 0.05
    drain_timeout: float = 10.0
    idle_timeout: Optional[float] = None
    max_frame: int = proto.MAX_FRAME

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise InvalidParameterError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise InvalidParameterError("max_batch must be >= 1")
        if self.max_inflight < 1:
            raise InvalidParameterError("max_inflight must be >= 1")
        if self.stats_poll <= 0:
            raise InvalidParameterError("stats_poll must be positive")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise InvalidParameterError("idle_timeout must be positive")
        if not 0 < self.max_frame <= proto.MAX_FRAME:
            raise InvalidParameterError(
                f"max_frame must be in (0, {proto.MAX_FRAME}]"
            )


@dataclass(eq=False)
class _Connection:
    """Per-connection state: the decoder, the open batching window."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    decoder: proto.FrameDecoder = field(default_factory=proto.FrameDecoder)
    version: Optional[int] = None
    pending_rids: List[int] = field(default_factory=list)
    pending_los: List[int] = field(default_factory=list)
    pending_his: List[int] = field(default_factory=list)
    window_handle: Optional[asyncio.TimerHandle] = None
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False


class NetServer:
    """Asyncio protocol server over a :class:`RangeQueryService`.

    Construct, then ``await start()`` inside a running loop;
    ``await stop()`` shuts down gracefully. The service is *not* closed
    by the server — the caller owns its lifecycle (the CLI closes it
    after the post-drain checkpoint).
    """

    def __init__(
        self,
        service: RangeQueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self._service = service
        self._requested_host = host
        self._requested_port = port
        self._cfg = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, service.num_threads),
            thread_name_prefix="repro-net",
        )
        self._conns: Set[_Connection] = set()
        self._stopping = False
        self._inflight = 0
        self._miss_rate = 0.0
        self._sampler: Optional[asyncio.Task] = None
        self._counters: Dict[str, int] = {
            "connections_total": 0,
            "queries_admitted": 0,
            "queries_answered": 0,
            "batches_executed": 0,
            "shed_inflight": 0,
            "shed_overload": 0,
            "shed_shutdown": 0,
            "protocol_errors": 0,
            "idle_closed": 0,
            "peak_inflight": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )
        self._sampler = self._loop.create_task(self._sample_overload())

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0``)."""
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush windows, drain, close."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flush every open batching window so admitted queries are
        # answered, then wait for the executor round-trips to land.
        for conn in list(self._conns):
            self._flush_window(conn)
        deadline = time.monotonic() + self._cfg.drain_timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
        for conn in list(self._conns):
            conn.closed = True
            conn.writer.close()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Overload signals
    # ------------------------------------------------------------------
    async def _sample_overload(self) -> None:
        """Maintain the windowed cache miss rate from stats deltas."""
        prev_hits = prev_misses = 0
        while True:
            await asyncio.sleep(self._cfg.stats_poll)
            stats = self._service.stats
            d_hits = stats.cache_hits - prev_hits
            d_misses = stats.cache_misses - prev_misses
            prev_hits, prev_misses = stats.cache_hits, stats.cache_misses
            total = d_hits + d_misses
            self._miss_rate = d_misses / total if total else 0.0

    def _shed_reason(self, extra: int) -> Optional[str]:
        """Why a request asking for ``extra`` query slots must be shed."""
        if self._stopping:
            return "shutdown"
        if self._inflight + extra > self._cfg.max_inflight:
            return "inflight"
        cfg = self._cfg
        if (
            cfg.max_compaction_backlog is not None
            and len(self._service.engine.scheduler) > cfg.max_compaction_backlog
        ):
            return "overload"
        if (
            cfg.max_cache_miss_rate is not None
            and self._miss_rate > cfg.max_cache_miss_rate
        ):
            return "overload"
        return None

    def _admit(self, n: int) -> Optional[str]:
        """Admit ``n`` queries into the in-flight budget, or say why not."""
        reason = self._shed_reason(n)
        if reason is not None:
            self._counters[f"shed_{reason}"] += n
            return reason
        self._inflight += n
        self._counters["queries_admitted"] += n
        if self._inflight > self._counters["peak_inflight"]:
            self._counters["peak_inflight"] = self._inflight
        return None

    def _release(self, n: int) -> None:
        self._inflight -= n
        self._counters["queries_answered"] += n

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(
            reader,
            writer,
            decoder=proto.FrameDecoder(max_frame=self._cfg.max_frame),
        )
        self._conns.add(conn)
        self._counters["connections_total"] += 1
        try:
            while not conn.closed:
                if self._cfg.idle_timeout is None:
                    data = await reader.read(65536)
                else:
                    try:
                        data = await asyncio.wait_for(
                            reader.read(65536), self._cfg.idle_timeout
                        )
                    except asyncio.TimeoutError:
                        # The peer went quiet past the idle deadline:
                        # reclaim the connection slot. In-flight work it
                        # already admitted still completes (and its
                        # writes fail harmlessly on the closed socket).
                        self._counters["idle_closed"] += 1
                        break
                if not data:
                    break
                try:
                    frames = conn.decoder.feed(data)
                except proto.ProtocolError:
                    # The byte stream cannot be resynchronised: drop the
                    # connection, keep the server (and every other
                    # client) running.
                    self._counters["protocol_errors"] += 1
                    break
                for frame in frames:
                    await self._dispatch(conn, frame)
                    if conn.closed:
                        break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Queries already admitted to this connection's window still
            # complete (their tasks hold references); new ones cannot
            # arrive. Flush so admitted-but-unflushed work is not stuck.
            self._flush_window(conn)
            self._conns.discard(conn)
            conn.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, conn: _Connection, *frames: bytes) -> None:
        if conn.closed:
            return
        async with conn.write_lock:
            try:
                for frame in frames:
                    conn.writer.write(frame)
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                conn.closed = True

    async def _dispatch(self, conn: _Connection, frame: proto.Frame) -> None:
        op, rid = frame.op, frame.request_id
        if conn.version is None:
            # Version negotiation gates everything else on the stream.
            if op != proto.OP_HELLO:
                await self._send(
                    conn, proto.encode_error(rid, op & ~proto.OP_RESP,
                                             "hello required first")
                )
                conn.closed = True
                return
            try:
                lo, hi = proto.decode_hello(frame.body)
            except proto.ProtocolError as exc:
                self._counters["protocol_errors"] += 1
                await self._send(conn, proto.encode_error(rid, proto.OP_HELLO,
                                                          str(exc)))
                conn.closed = True
                return
            version = proto.negotiate_version(lo, hi)
            if version is None:
                await self._send(
                    conn,
                    proto.encode_error(
                        rid, proto.OP_HELLO,
                        f"no common version: server speaks "
                        f"[{proto.MIN_VERSION}, {proto.PROTOCOL_VERSION}]",
                    ),
                )
                conn.closed = True
                return
            conn.version = version
            await self._send(conn, proto.encode_hello_response(rid, version))
            return
        try:
            await self._dispatch_versioned(conn, frame)
        except proto.ProtocolError as exc:
            # A well-framed request with a malformed body: answer with
            # an error, keep the connection.
            self._counters["protocol_errors"] += 1
            await self._send(
                conn, proto.encode_error(rid, op & ~proto.OP_RESP, str(exc))
            )

    async def _dispatch_versioned(
        self, conn: _Connection, frame: proto.Frame
    ) -> None:
        op, rid = frame.op, frame.request_id
        if op == proto.OP_PING:
            await self._send(conn, proto.encode_ack(rid, proto.OP_PING))
        elif op == proto.OP_RANGE:
            lo, hi = proto.decode_range(frame.body)
            self._enqueue_range(conn, rid, lo, hi)
        elif op == proto.OP_BATCH:
            los, his = proto.decode_batch(frame.body)
            reason = self._admit(los.size)
            if reason is not None:
                await self._send(conn, proto.encode_shed(rid, proto.OP_BATCH))
                return
            assert self._loop is not None
            self._loop.create_task(self._run_batch_frame(conn, rid, los, his))
        elif op == proto.OP_POINT:
            key = proto.decode_point(frame.body)
            value = await self._call(self._service.get, key)
            await self._send(
                conn, proto.encode_point_response(rid, _wire_value(value))
            )
        elif op == proto.OP_INSERT:
            key, value = proto.decode_insert(frame.body)
            await self._call(self._service.put, key, value)
            await self._send(conn, proto.encode_ack(rid, proto.OP_INSERT))
        elif op == proto.OP_DELETE:
            key = proto.decode_delete(frame.body)
            await self._call(self._service.delete, key)
            await self._send(conn, proto.encode_ack(rid, proto.OP_DELETE))
        elif op == proto.OP_STATS:
            snapshot = self._service.stats_snapshot()
            snapshot["server"] = self.stats()
            await self._send(conn, proto.encode_stats_response(rid, snapshot))
        elif op == proto.OP_HELLO:
            await self._send(
                conn, proto.encode_hello_response(rid, conn.version)
            )
        else:
            raise proto.ProtocolError(f"unknown opcode 0x{op:02x}")

    def _call(self, fn, *args):
        """Run a blocking service call on the executor."""
        assert self._loop is not None
        return self._loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------
    # Batching windows
    # ------------------------------------------------------------------
    def _enqueue_range(
        self, conn: _Connection, rid: int, lo: int, hi: int
    ) -> None:
        reason = self._admit(1)
        if reason is not None:
            assert self._loop is not None
            self._loop.create_task(
                self._send(conn, proto.encode_shed(rid, proto.OP_RANGE))
            )
            return
        conn.pending_rids.append(rid)
        conn.pending_los.append(lo)
        conn.pending_his.append(hi)
        if (
            self._cfg.batch_window == 0
            or len(conn.pending_rids) >= self._cfg.max_batch
        ):
            self._flush_window(conn)
        elif conn.window_handle is None:
            assert self._loop is not None
            conn.window_handle = self._loop.call_later(
                self._cfg.batch_window, self._flush_window, conn
            )

    def _flush_window(self, conn: _Connection) -> None:
        """Close the connection's batching window and run the batch."""
        if conn.window_handle is not None:
            conn.window_handle.cancel()
            conn.window_handle = None
        if not conn.pending_rids:
            return
        rids = conn.pending_rids
        los = np.asarray(conn.pending_los, dtype=np.uint64)
        his = np.asarray(conn.pending_his, dtype=np.uint64)
        conn.pending_rids = []
        conn.pending_los = []
        conn.pending_his = []
        assert self._loop is not None
        self._loop.create_task(self._run_window(conn, rids, los, his))

    async def _run_window(
        self, conn: _Connection, rids: List[int],
        los: np.ndarray, his: np.ndarray,
    ) -> None:
        try:
            empty = await self._call(
                self._service.batch_range_empty, los, his
            )
            self._counters["batches_executed"] += 1
            await self._send(
                conn,
                *(proto.encode_range_response(rid, bool(empty[i]))
                  for i, rid in enumerate(rids)),
            )
        except Exception as exc:  # noqa: BLE001 - every failure must answer
            await self._send(
                conn,
                *(proto.encode_error(rid, proto.OP_RANGE, str(exc))
                  for rid in rids),
            )
        finally:
            self._release(len(rids))

    async def _run_batch_frame(
        self, conn: _Connection, rid: int, los: np.ndarray, his: np.ndarray
    ) -> None:
        try:
            empty = await self._call(
                self._service.batch_range_empty, los, his
            )
            self._counters["batches_executed"] += 1
            await self._send(conn, proto.encode_batch_response(rid, empty))
        except Exception as exc:  # noqa: BLE001
            await self._send(conn, proto.encode_error(rid, proto.OP_BATCH,
                                                      str(exc)))
        finally:
            self._release(int(los.size))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Server-side counters (admission, sheds, batching, errors)."""
        out = dict(self._counters)
        out["inflight"] = self._inflight
        out["open_connections"] = len(self._conns)
        out["cache_miss_rate_window"] = self._miss_rate
        out["batch_window_us"] = self._cfg.batch_window * 1e6
        out["max_inflight"] = self._cfg.max_inflight
        return out

    @property
    def service(self) -> RangeQueryService:
        return self._service

    @property
    def config(self) -> ServerConfig:
        return self._cfg


def _wire_value(value) -> Optional[bytes]:
    """Best-effort bytes form of a stored value for the point response."""
    if value is None or isinstance(value, bytes):
        return value
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    return repr(value).encode("utf-8")


class ServerHandle:
    """A running :class:`NetServer` on a daemon thread, for sync callers.

    Produced by :func:`serve_in_thread`; exposes the bound address and a
    blocking :meth:`stop` that performs the server's graceful shutdown
    and joins the thread.
    """

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        server: NetServer,
        stop_event: asyncio.Event,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self._server = server
        self._stop_event = stop_event
        self.host, self.port = server.address

    @property
    def server(self) -> NetServer:
        return self._server

    def stats(self) -> dict:
        """The server's counters (safe to read from any thread)."""
        return self._server.stats()

    def stop(self, timeout: float = 30.0) -> None:
        """Trigger graceful shutdown and wait for the loop thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_in_thread(
    service: RangeQueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
) -> ServerHandle:
    """Start a :class:`NetServer` in a daemon thread; return its handle.

    The caller still owns the service (close it after :meth:`ServerHandle.stop`).
    """
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        async def main() -> None:
            server = NetServer(service, host=host, port=port, config=config)
            await server.start()
            box["loop"] = asyncio.get_running_loop()
            box["server"] = server
            box["stop_event"] = asyncio.Event()
            started.set()
            await box["stop_event"].wait()
            await server.stop()

        try:
            asyncio.run(main())
        except Exception as exc:  # pragma: no cover - surfaced via handle
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, name="repro-net-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0) or "error" in box:
        raise InvalidParameterError(
            f"network server failed to start: {box.get('error')}"
        )
    return ServerHandle(thread, box["loop"], box["server"], box["stop_event"])
