"""The wire format of the network front door: length-prefixed binary frames.

One frame is::

    u32 length            # bytes that follow (header + body), little-endian
    u8  op                # operation (request) or OP_RESP | op (response)
    u8  status            # STATUS_OK / STATUS_SHED / STATUS_ERROR (responses)
    u32 request_id        # chosen by the client; echoed verbatim in the
                          # response, so pipelined responses may return
                          # out of order
    ...body               # op-specific payload

Query columns travel as packed numpy arrays — a batch body is the two
``u64`` columns ``los`` / ``his`` laid out back to back — so the server
decodes them with ``np.frombuffer`` straight off the frame bytes (zero
copy) and feeds them to the columnar batch pipeline unchanged. Batch
verdicts come back as a ``np.packbits`` bitmap, eight verdicts per byte.

Version negotiation: the first frame on a connection must be
:data:`OP_HELLO` carrying the client's supported ``[min, max]`` version
range; the server answers with the highest version both sides speak, or
a :data:`STATUS_ERROR` response and a closed connection when the ranges
do not overlap. Everything after the hello is versioned traffic.

Robustness contract (held by the frame-fuzz tests): malformed input —
truncated frames, oversized lengths, bodies that do not match their op —
raises :class:`ProtocolError` out of the decode functions and **never**
anything else. A server turns a :class:`ProtocolError` into an error
response (when a request id is parseable) or a closed connection; it
must not crash.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError


class ProtocolError(ReproError):
    """A frame or body violated the wire format."""


#: Highest (and currently only) protocol version this build speaks.
PROTOCOL_VERSION = 1
#: Lowest version this build still accepts in a hello.
MIN_VERSION = 1

#: Hard per-frame size cap; a length above this is a protocol error
#: (protects both sides from a corrupt length prefix allocating memory).
MAX_FRAME = 1 << 24

_LEN = struct.Struct("<I")
_HEADER = struct.Struct("<BBI")  # op, status, request_id
_HELLO = struct.Struct("<BB")  # min_version, max_version
_HELLO_RESP = struct.Struct("<B")  # chosen version
_U64 = struct.Struct("<Q")
_RANGE = struct.Struct("<QQ")
_INSERT = struct.Struct("<QI")  # key, value length
_COUNT = struct.Struct("<I")

# Request opcodes.
OP_HELLO = 0x01
OP_PING = 0x02
OP_POINT = 0x03  # point lookup (get)
OP_RANGE = 0x04  # single range-emptiness query
OP_BATCH = 0x05  # columnar batch of range-emptiness queries
OP_INSERT = 0x06
OP_DELETE = 0x07
OP_STATS = 0x08
#: Response bit: a response to op ``X`` carries opcode ``OP_RESP | X``.
OP_RESP = 0x80

REQUEST_OPS = frozenset(
    (OP_HELLO, OP_PING, OP_POINT, OP_RANGE, OP_BATCH, OP_INSERT, OP_DELETE,
     OP_STATS)
)

# Response status codes.
STATUS_OK = 0
#: Admission control rejected the request (the 429 of this protocol);
#: the client should back off — the server is intact and still serving.
STATUS_SHED = 1
STATUS_ERROR = 2


@dataclass(frozen=True)
class Frame:
    """One decoded frame: header fields plus the raw body bytes."""

    op: int
    status: int
    request_id: int
    body: bytes

    @property
    def is_response(self) -> bool:
        return bool(self.op & OP_RESP)

    @property
    def base_op(self) -> int:
        """The request opcode this frame carries or answers."""
        return self.op & ~OP_RESP


def encode_frame(
    op: int, request_id: int, body: bytes = b"", *, status: int = STATUS_OK
) -> bytes:
    """Assemble one length-prefixed frame."""
    if len(body) + _HEADER.size > MAX_FRAME:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME"
        )
    return (
        _LEN.pack(_HEADER.size + len(body))
        + _HEADER.pack(op, status, request_id & 0xFFFFFFFF)
        + body
    )


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte-chunk stream.

    Feed it whatever the socket produced; it returns every complete
    frame and buffers the tail. A structurally invalid prefix (length
    shorter than a header, or above :data:`MAX_FRAME`) raises
    :class:`ProtocolError` — the stream cannot be resynchronised after
    that, so the caller should drop the connection.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self._buf = bytearray()
        self._max_frame = int(max_frame)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return the frames it completed."""
        self._buf += data
        frames: List[Frame] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf, 0)
            if length < _HEADER.size:
                raise ProtocolError(f"frame length {length} below header size")
            if length > self._max_frame:
                raise ProtocolError(f"frame length {length} exceeds cap")
            if len(self._buf) < _LEN.size + length:
                return frames
            payload = bytes(self._buf[_LEN.size:_LEN.size + length])
            del self._buf[:_LEN.size + length]
            op, request_status, request_id = _HEADER.unpack_from(payload, 0)
            frames.append(
                Frame(op, request_status, request_id, payload[_HEADER.size:])
            )

    @property
    def buffered(self) -> int:
        """Bytes of incomplete trailing frame currently buffered."""
        return len(self._buf)


def _body_exactly(frame_body: bytes, size: int, what: str) -> None:
    if len(frame_body) != size:
        raise ProtocolError(
            f"{what}: body of {len(frame_body)} bytes, expected {size}"
        )


# ----------------------------------------------------------------------
# Hello / version negotiation
# ----------------------------------------------------------------------
def encode_hello(request_id: int, *, min_version: int = MIN_VERSION,
                 max_version: int = PROTOCOL_VERSION) -> bytes:
    """Client hello advertising the supported version range."""
    return encode_frame(
        OP_HELLO, request_id, _HELLO.pack(min_version, max_version)
    )


def decode_hello(body: bytes) -> Tuple[int, int]:
    """Return the client's ``(min_version, max_version)``."""
    _body_exactly(body, _HELLO.size, "hello")
    lo, hi = _HELLO.unpack(body)
    if lo > hi:
        raise ProtocolError(f"hello with empty version range [{lo}, {hi}]")
    return lo, hi


def negotiate_version(client_min: int, client_max: int) -> Optional[int]:
    """The highest mutually supported version, or ``None``."""
    best = min(client_max, PROTOCOL_VERSION)
    if best < max(client_min, MIN_VERSION):
        return None
    return best


def encode_hello_response(request_id: int, version: int) -> bytes:
    return encode_frame(
        OP_RESP | OP_HELLO, request_id, _HELLO_RESP.pack(version)
    )


def decode_hello_response(body: bytes) -> int:
    _body_exactly(body, _HELLO_RESP.size, "hello response")
    return _HELLO_RESP.unpack(body)[0]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def encode_point(request_id: int, key: int) -> bytes:
    return encode_frame(OP_POINT, request_id, _U64.pack(key))


def decode_point(body: bytes) -> int:
    _body_exactly(body, _U64.size, "point query")
    return _U64.unpack(body)[0]


def encode_point_response(request_id: int, value: Optional[bytes]) -> bytes:
    body = b"\x00" if value is None else b"\x01" + value
    return encode_frame(OP_RESP | OP_POINT, request_id, body)


def decode_point_response(body: bytes) -> Optional[bytes]:
    if not body:
        raise ProtocolError("point response: empty body")
    if body[0] == 0:
        return None
    return body[1:]


def encode_range(request_id: int, lo: int, hi: int) -> bytes:
    return encode_frame(OP_RANGE, request_id, _RANGE.pack(lo, hi))


def decode_range(body: bytes) -> Tuple[int, int]:
    _body_exactly(body, _RANGE.size, "range query")
    lo, hi = _RANGE.unpack(body)
    if lo > hi:
        raise ProtocolError(f"range query with lo {lo} > hi {hi}")
    return lo, hi


def encode_range_response(request_id: int, empty: bool) -> bytes:
    return encode_frame(
        OP_RESP | OP_RANGE, request_id, b"\x01" if empty else b"\x00"
    )


def decode_range_response(body: bytes) -> bool:
    _body_exactly(body, 1, "range response")
    return body[0] != 0


def encode_batch(request_id: int, los: np.ndarray, his: np.ndarray) -> bytes:
    """Pack the two query columns back to back after a ``u32`` count."""
    los = np.ascontiguousarray(los, dtype="<u8")
    his = np.ascontiguousarray(his, dtype="<u8")
    if los.shape != his.shape or los.ndim != 1:
        raise ProtocolError("batch columns must be equal-length 1-d arrays")
    return encode_frame(
        OP_BATCH, request_id,
        _COUNT.pack(los.size) + los.tobytes() + his.tobytes(),
    )


def decode_batch(body: bytes) -> Tuple[np.ndarray, np.ndarray]:
    """Decode the query columns zero-copy off the frame body.

    The returned arrays are read-only views over the frame's bytes —
    exactly what the columnar router consumes.
    """
    if len(body) < _COUNT.size:
        raise ProtocolError("batch query: missing count")
    (n,) = _COUNT.unpack_from(body, 0)
    expected = _COUNT.size + 16 * n
    if len(body) != expected:
        raise ProtocolError(
            f"batch query: {len(body)} body bytes for {n} queries "
            f"(expected {expected})"
        )
    los = np.frombuffer(body, dtype="<u8", count=n, offset=_COUNT.size)
    his = np.frombuffer(body, dtype="<u8", count=n, offset=_COUNT.size + 8 * n)
    if n and bool((los > his).any()):
        raise ProtocolError("batch query with lo > hi")
    return los, his


def encode_batch_response(request_id: int, empty: np.ndarray) -> bytes:
    """Verdict bitmap: ``u32`` count + ``np.packbits`` of the bools."""
    empty = np.ascontiguousarray(empty, dtype=bool)
    return encode_frame(
        OP_RESP | OP_BATCH, request_id,
        _COUNT.pack(empty.size) + np.packbits(empty).tobytes(),
    )


def decode_batch_response(body: bytes) -> np.ndarray:
    if len(body) < _COUNT.size:
        raise ProtocolError("batch response: missing count")
    (n,) = _COUNT.unpack_from(body, 0)
    expected = _COUNT.size + (n + 7) // 8
    if len(body) != expected:
        raise ProtocolError(
            f"batch response: {len(body)} body bytes for {n} verdicts"
        )
    bits = np.frombuffer(body, dtype=np.uint8, offset=_COUNT.size)
    return np.unpackbits(bits, count=n).astype(bool)


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------
def encode_insert(request_id: int, key: int, value: bytes) -> bytes:
    if not isinstance(value, (bytes, bytearray, memoryview)):
        raise ProtocolError("insert value must be bytes on the wire")
    value = bytes(value)
    return encode_frame(
        OP_INSERT, request_id, _INSERT.pack(key, len(value)) + value
    )


def decode_insert(body: bytes) -> Tuple[int, bytes]:
    if len(body) < _INSERT.size:
        raise ProtocolError("insert: truncated header")
    key, vlen = _INSERT.unpack_from(body, 0)
    value = body[_INSERT.size:]
    if len(value) != vlen:
        raise ProtocolError(
            f"insert: value of {len(value)} bytes, header said {vlen}"
        )
    return key, value


def encode_delete(request_id: int, key: int) -> bytes:
    return encode_frame(OP_DELETE, request_id, _U64.pack(key))


def decode_delete(body: bytes) -> int:
    _body_exactly(body, _U64.size, "delete")
    return _U64.unpack(body)[0]


def encode_ack(request_id: int, op: int) -> bytes:
    """Empty-body OK response for mutations and ping."""
    return encode_frame(OP_RESP | op, request_id)


# ----------------------------------------------------------------------
# Stats / control
# ----------------------------------------------------------------------
def encode_stats_response(request_id: int, snapshot: dict) -> bytes:
    return encode_frame(
        OP_RESP | OP_STATS, request_id,
        json.dumps(snapshot, sort_keys=True).encode("utf-8"),
    )


def decode_stats_response(body: bytes) -> dict:
    try:
        payload: Any = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"stats response: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("stats response: payload is not an object")
    return payload


#: Cap on an error response's message body. An exception whose text
#: embeds user data (a repr of a huge batch, say) must not balloon past
#: MAX_FRAME — encode_frame would then *itself* raise while answering,
#: turning a reportable failure into a dropped connection.
MAX_ERROR_MESSAGE = 4096


def encode_error(request_id: int, op: int, message: str) -> bytes:
    body = message.encode("utf-8")
    if len(body) > MAX_ERROR_MESSAGE:
        body = body[:MAX_ERROR_MESSAGE - 15] + b"... (truncated)"
    return encode_frame(
        OP_RESP | op, request_id, body, status=STATUS_ERROR,
    )


def encode_shed(request_id: int, op: int) -> bytes:
    """Admission-control rejection for the given request."""
    return encode_frame(OP_RESP | op, request_id, status=STATUS_SHED)
