"""repro.net — the asyncio network front door over the serving layer.

This package puts a real wire on :class:`~repro.engine.service.RangeQueryService`
— the "millions of users" scenario of the roadmap made concrete:

* :mod:`~repro.net.protocol` — length-prefixed binary frames with
  numpy-packed query columns (decoded zero-copy into the columnar batch
  pipeline), request-id multiplexing, and hello-based version
  negotiation;
* :mod:`~repro.net.server` — :class:`NetServer`, the asyncio front
  door: pipelined out-of-order responses, per-connection **batching
  windows** that coalesce small queries into one columnar batch, and
  **admission control** that sheds (429-style) on a bounded in-flight
  budget or when the engine's compaction backlog / cache miss rate
  crosses its ceiling; :func:`serve_in_thread` wraps it for
  synchronous callers;
* :mod:`~repro.net.client` — :class:`SyncClient` (tests/CLI) and the
  pipelined :class:`AsyncClient`;
* :mod:`~repro.net.loadgen` — an **open-loop** load generator
  (simulated clients with Zipfian popularity, Poisson/bursty arrivals,
  coordinated-omission-safe latency recording) behind
  :func:`~repro.net.loadgen.run`.

``repro serve --listen HOST:PORT`` and ``repro loadgen`` expose the two
halves on the command line; ``benchmarks/bench_network.py`` holds the
p50/p99 SLO and shed-rate gates.
"""

from repro.net.client import (
    AsyncClient,
    ProtocolErrorClosed,
    RemoteError,
    RetryPolicy,
    ShedError,
    SyncClient,
)
from repro.net.loadgen import (
    LoadConfig,
    LoadReport,
    classify_error,
    generate_arrivals,
    generate_queries,
    run_async,
)
from repro.net.loadgen import run as run_loadgen
from repro.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.net.server import NetServer, ServerConfig, ServerHandle, serve_in_thread

__all__ = [
    "AsyncClient",
    "Frame",
    "FrameDecoder",
    "LoadConfig",
    "LoadReport",
    "MAX_FRAME",
    "NetServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ProtocolErrorClosed",
    "RemoteError",
    "RetryPolicy",
    "ServerConfig",
    "ServerHandle",
    "ShedError",
    "SyncClient",
    "classify_error",
    "encode_frame",
    "generate_arrivals",
    "generate_queries",
    "run_async",
    "run_loadgen",
    "serve_in_thread",
]
