#!/usr/bin/env python
"""Documentation lint: intra-repo links + public-symbol docstrings.

Two checks, both cheap enough for every CI run:

1. **Links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file that exists (anchors and external
   ``http(s)``/``mailto`` links are skipped). A docs "site" whose map
   rots is worse than none.
2. **Docstrings** — every public symbol exported by ``repro.engine``
   and ``repro.filters`` (their ``__all__``), and every module in those
   packages, must carry a docstring. New subsystems land with their
   documentation or not at all.

Exit code 0 when clean; 1 with a problem list otherwise. Run from the
repo root: ``python tools/check_docs.py`` (``src/`` is put on the path
automatically).
"""

from __future__ import annotations

import importlib
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown files whose relative links must resolve.
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

#: Packages whose public surface must be documented.
DOC_PACKAGES = (
    "repro.engine",
    "repro.filters",
    "repro.lsm",
    "repro.net",
    "repro.workloads",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links() -> list[str]:
    problems = []
    for md in DOC_FILES:
        if not md.exists():
            problems.append(f"{md.relative_to(REPO_ROOT)}: file missing")
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO_ROOT)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return problems


def check_docstrings() -> list[str]:
    problems = []
    for package_name in DOC_PACKAGES:
        package = importlib.import_module(package_name)
        # Every module in the package carries a module docstring.
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package_name}.{info.name}")
            if not (module.__doc__ or "").strip():
                problems.append(f"{module.__name__}: missing module docstring")
        # Every exported symbol is documented.
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name, None)
            if obj is None:
                problems.append(f"{package_name}.{name}: in __all__ but missing")
                continue
            if isinstance(obj, (int, str, float, dict, list, tuple)):
                continue  # constants document themselves at the definition
            if not (getattr(obj, "__doc__", None) or "").strip():
                problems.append(f"{package_name}.{name}: missing docstring")
    return problems


def main() -> int:
    problems = check_links() + check_docstrings()
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in DOC_FILES)
    print(f"check_docs: OK ({checked}; {', '.join(DOC_PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
