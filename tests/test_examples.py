"""Smoke tests: every shipped example runs end to end and prints output.

The examples are part of the public deliverable; these tests execute each
one in-process (fast paths only — the examples are already sized for
interactive runs) and assert on the key facts their narratives rely on.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


def test_examples_present():
    # The deliverable requires a quickstart plus domain scenarios.
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_quickstart_facts():
    output = run_example("quickstart.py")
    assert "is_exact=True" in output
    assert "bits/key" in output


def test_lsm_store_grafite_saves_io():
    output = run_example("lsm_store.py")
    grafite_line = next(l for l in output.splitlines() if l.strip().startswith("Grafite"))
    no_filter_line = next(
        l for l in output.splitlines() if l.strip().startswith("no filter")
    )

    def reads(line):
        return int(line.split("disk reads=")[1].split()[0].replace(",", ""))

    assert reads(grafite_line) < reads(no_filter_line) / 10


def test_adversarial_attack_contrast():
    output = run_example("adversarial_attack.py")
    grafite_line = next(
        l for l in output.splitlines() if l.strip().startswith("Grafite |")
    )
    rates = [float(x) for x in grafite_line.split("|")[1].split()]
    assert max(rates) < 0.05, "Grafite must resist the adaptive adversary"


def test_string_keys_negative_case():
    output = run_example("string_keys.py")
    assert "= False" in output, "the absent-key demo should answer False"
