"""Tests for the sharded, persistent, batch-query engine.

Covers the contracts the subsystem introduces: shard routing and
cross-shard queries, WAL replay (including a torn tail after a simulated
crash), snapshot round trips that preserve filter behaviour bit for bit,
the deferred compaction scheduler, and parity of the vectorised batch
paths with their scalar counterparts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketing import Bucketing
from repro.core.grafite import Grafite
from repro.engine import (
    OP_DELETE,
    OP_PUT,
    CompactionScheduler,
    ShardedEngine,
    ShardRouter,
    WriteAheadLog,
    run_from_bytes,
    run_to_bytes,
)
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTable
from repro.lsm.store import IoStats, LSMStore

UNIVERSE = 2**32


def grafite_factory(keys, universe):
    return Grafite(keys, universe, bits_per_key=14, max_range_size=64, seed=7)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardRouter(0, 4)
        with pytest.raises(InvalidParameterError):
            ShardRouter(100, 0)
        with pytest.raises(InvalidParameterError):
            ShardRouter(2, 3)
        with pytest.raises(InvalidQueryError):
            ShardRouter(100, 4).shard_of(100)

    def test_ranges_partition_the_universe(self):
        router = ShardRouter(1000, 7)
        covered = 0
        for sid in range(router.num_shards):
            lo, hi = router.shard_range(sid)
            assert lo == covered
            covered = hi + 1
            for key in (lo, hi):
                assert router.shard_of(key) == sid
        assert covered == 1000

    def test_split_covers_range_exactly(self):
        router = ShardRouter(1000, 4)  # width 250
        segments = router.split(100, 900)
        assert [sid for sid, _, _ in segments] == [0, 1, 2, 3]
        assert segments[0] == (0, 100, 249)
        assert segments[-1] == (3, 750, 900)
        # Segments chain with no gaps or overlaps.
        for (_, _, prev_hi), (_, next_lo, _) in zip(segments, segments[1:]):
            assert next_lo == prev_hi + 1

    def test_single_shard_split(self):
        router = ShardRouter(1000, 4)
        assert router.split(10, 20) == [(0, 10, 20)]


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_and_recover(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.log_put(5, "five")
            wal.log_put(9, {"nested": [1, 2]})
            wal.log_delete(5)
        recovered = WriteAheadLog(path).recovered
        assert recovered == [
            (OP_PUT, 5, "five"),
            (OP_PUT, 9, {"nested": [1, 2]}),
            (OP_DELETE, 5, None),
        ]

    def test_truncated_tail_drops_only_torn_record(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.log_put(1, "a")
            wal.log_put(2, "b" * 100)
        with open(path, "r+b") as fh:
            fh.seek(0, 2)
            fh.truncate(fh.tell() - 7)  # tear the middle of the last record
        wal = WriteAheadLog(path)
        assert wal.recovered == [(OP_PUT, 1, "a")]
        # Recovery truncated the torn bytes; new appends are readable.
        wal.log_put(3, "c")
        wal.close()
        assert WriteAheadLog(path).recovered == [(OP_PUT, 1, "a"), (OP_PUT, 3, "c")]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.log_put(1, "a")
            wal.log_put(2, "b")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        assert WriteAheadLog(path).recovered == [(OP_PUT, 1, "a")]

    def test_reset_clears_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.log_put(1, "a")
        wal.reset()
        wal.log_put(2, "b")
        wal.close()
        assert WriteAheadLog(tmp_path / "wal.log").recovered == [(OP_PUT, 2, "b")]

    def test_rejects_non_wal_file(self, tmp_path):
        path = tmp_path / "not.log"
        path.write_bytes(b"GARBAGE!")
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(path)


# ----------------------------------------------------------------------
# Run persistence
# ----------------------------------------------------------------------
class TestRunPersistence:
    def test_round_trip_with_tombstones(self):
        entries = [(1, "a"), (5, TOMBSTONE), (9, {"x": 1}), (12, TOMBSTONE)]
        run = SSTable(entries, UNIVERSE, grafite_factory)
        restored = run_from_bytes(run_to_bytes(run))
        assert restored.entries()[0] == (1, "a")
        assert restored.entries()[1][1] is TOMBSTONE
        assert restored.entries()[2] == (9, {"x": 1})
        assert restored.universe == UNIVERSE

    def test_filter_restored_byte_for_byte(self):
        keys = list(range(0, 20_000, 7))
        run = SSTable([(k, "v") for k in keys], UNIVERSE, grafite_factory)
        restored = run_from_bytes(run_to_bytes(run))
        # Same hash constants => identical answers on every probe,
        # including which empty ranges false-positive.
        rng = np.random.default_rng(3)
        for _ in range(500):
            lo = int(rng.integers(0, UNIVERSE - 64))
            hi = lo + 63
            assert restored.may_contain_range(lo, hi) == run.may_contain_range(lo, hi)
        assert restored.filter_bits == run.filter_bits

    def test_unfiltered_run_stays_unfiltered(self):
        run = SSTable([(1, "a")], UNIVERSE, None)
        restored = run_from_bytes(run_to_bytes(run), filter_factory=grafite_factory)
        assert restored.filter is None


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestCompactionScheduler:
    def test_deferred_store_does_not_compact_inline(self):
        store = LSMStore(UNIVERSE, memtable_limit=2, compaction_fanout=2,
                         auto_compact=False)
        for k in range(8):
            store.put(k, "v")
        assert store.stats.compactions == 0
        assert store.needs_compaction

    def test_drain_runs_pending_compactions(self):
        scheduler = CompactionScheduler()
        stores = []
        for sid in range(3):
            store = LSMStore(UNIVERSE, memtable_limit=2, compaction_fanout=2,
                             auto_compact=False)
            for k in range(8):
                store.put(k, "v")
            scheduler.notify(sid, store)
            stores.append(store)
        assert scheduler.pending_shards == (0, 1, 2)
        assert scheduler.drain() == 3
        assert len(scheduler) == 0
        for store in stores:
            assert store.stats.compactions == 1
            assert not store.needs_compaction

    def test_drain_budget_and_stale_entries(self):
        scheduler = CompactionScheduler()
        store = LSMStore(UNIVERSE, memtable_limit=2, compaction_fanout=2,
                         auto_compact=False)
        for k in range(8):
            store.put(k, "v")
        scheduler.notify(0, store)
        store.compact()  # someone compacted behind the scheduler's back
        assert scheduler.drain(max_steps=5) == 0  # stale entry skipped
        assert scheduler.compactions_run == 0


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_routing_and_point_ops(self):
        engine = ShardedEngine(UNIVERSE, num_shards=4, memtable_limit=8)
        width = engine.router.shard_width
        for sid in range(4):
            engine.put(sid * width, f"shard{sid}")
        for sid in range(4):
            assert engine.get(sid * width) == f"shard{sid}"
            assert len(engine.shards[sid]) == 1
        engine.delete(0)
        assert engine.get(0) is None
        assert len(engine) == 3

    def test_scan_spanning_three_shards(self):
        engine = ShardedEngine(1200, num_shards=3, memtable_limit=4)  # width 400
        expected = []
        for key in (10, 399, 400, 401, 799, 800, 1100):
            engine.put(key, f"v{key}")
            expected.append((key, f"v{key}"))
        # One scan crossing both shard boundaries, in key order.
        assert engine.range_scan(5, 1150) == expected
        assert engine.range_scan(399, 401) == expected[1:4]
        assert not engine.range_empty(399, 401)
        assert not engine.range_empty(402, 799)  # crosses into shard 1's 799
        assert engine.range_empty(402, 798)
        assert engine.range_empty(801, 1099)

    def test_universe_cap(self):
        with pytest.raises(InvalidParameterError):
            ShardedEngine(2**64 + 1)

    def test_batch_matches_scalar(self):
        engine = ShardedEngine(
            UNIVERSE, num_shards=4, memtable_limit=256,
            filter_factory=grafite_factory,
        )
        rng = np.random.default_rng(0)
        for k in np.unique(rng.integers(0, UNIVERSE, 3000, dtype=np.uint64)):
            engine.put(int(k), "v")
        engine.flush_all()
        los = rng.integers(0, UNIVERSE - 2000, 2000, dtype=np.uint64)
        his = los + rng.integers(0, 1500, 2000, dtype=np.uint64)
        batch = engine.batch_range_empty(los, his)
        scalar = np.asarray(
            [engine.range_empty(int(lo), int(hi)) for lo, hi in zip(los, his)]
        )
        assert bool((batch == scalar).all())
        assert batch.sum() > 0  # uncorrelated probes: mostly empty
        # Pruned probes were credited to the I/O ledger as avoided reads.
        assert engine.stats.reads_avoided > 0

    def test_batch_ledger_matches_scalar_with_keyless_runs(self):
        """Regression: ``shard_batch_empty`` only credited *bounded*
        runs as avoided reads, while the scalar path credits every
        pruned run — including keyless slices (a leveled span whose
        keys were all tombstoned away keeps an empty, filterless run
        owning the span). The two ledgers must agree."""
        universe = 2**24
        run = SSTable(
            [(i * 100, b"v") for i in range(100)], universe, grafite_factory
        )
        keyless = SSTable(
            [], universe, None, slice_bounds=(2**23, universe - 1)
        )
        def build():
            return LSMStore.from_runs(
                universe, level0=[run], levels=[[keyless]],
                filter_factory=grafite_factory, auto_compact=False,
            )

        # Clean probes between the stored keys: both runs prune.
        los = np.arange(40, dtype=np.uint64) * 100 + 10
        his = los + 5

        scalar_store = build()
        for lo, hi in zip(los, his):
            assert scalar_store.range_empty(int(lo), int(hi))
        batch_store = build()
        from repro.engine.batch import shard_batch_empty
        assert shard_batch_empty(batch_store, los, his).all()
        assert (
            batch_store.stats.reads_avoided
            == scalar_store.stats.reads_avoided
            == 2 * los.size  # both runs credited per query, keyless too
        )
        assert batch_store.stats.reads_performed == 0

    def test_batch_sees_memtable_and_tombstones(self):
        engine = ShardedEngine(1000, num_shards=2, memtable_limit=100)
        engine.put(700, "unflushed")
        result = engine.batch_range_empty([690, 100], [710, 120])
        assert list(result) == [False, True]
        engine.delete(700)
        assert list(engine.batch_range_empty([690], [710])) == [True]

    def test_deferred_compaction_drained_between_batches(self):
        engine = ShardedEngine(
            1000, num_shards=2, memtable_limit=2, compaction_fanout=2,
            defer_compaction=True,
        )
        for k in range(0, 16):
            engine.put(k, "v")
        assert engine.stats.compactions == 0
        assert len(engine.scheduler) > 0
        engine.batch_range_empty([500], [600])  # batch entry drains the queue
        assert engine.stats.compactions > 0
        assert len(engine.scheduler) == 0

    def test_aggregated_stats_sum_shards(self):
        engine = ShardedEngine(1000, num_shards=2, memtable_limit=2)
        for k in (10, 20, 600, 700):
            engine.put(k, "v")
        engine.flush_all()
        engine.range_scan(0, 999)
        total = engine.stats
        by_hand = IoStats.aggregate(engine.per_shard_stats)
        assert total == by_hand
        assert total.reads_performed == sum(
            s.reads_performed for s in engine.per_shard_stats
        )


# ----------------------------------------------------------------------
# Durability: WAL replay, crash recovery, snapshot round trips
# ----------------------------------------------------------------------
class TestDurability:
    def _fill(self, engine, seed=0, ops=400):
        rng = np.random.default_rng(seed)
        model = {}
        for i in range(ops):
            key = int(rng.integers(0, engine.universe))
            if i % 7 == 6 and model:
                victim = next(iter(model))
                engine.delete(victim)
                del model[victim]
            else:
                engine.put(key, f"v{i}")
                model[key] = f"v{i}"
        return model

    def test_snapshot_round_trip_identical_results(self, tmp_path):
        engine = ShardedEngine(
            UNIVERSE, num_shards=3, memtable_limit=64,
            filter_factory=grafite_factory, directory=tmp_path / "db",
        )
        model = self._fill(engine)
        rng = np.random.default_rng(42)
        los = rng.integers(0, UNIVERSE - 200, 1000, dtype=np.uint64)
        his = los + 99
        before = engine.batch_range_empty(los, his)
        before_stats_decisions = engine.stats.total_filter_decisions
        engine.close()  # checkpoint + WAL reset

        reopened = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
        assert reopened.range_scan(0, UNIVERSE - 1) == sorted(model.items())
        after = reopened.batch_range_empty(los, his)
        # Identical answers, including which probes false-positive: the
        # snapshot restored the filters' hash constants, not rebuilt them.
        assert bool((before == after).all())
        assert before_stats_decisions > 0

    def test_crash_without_checkpoint_replays_wal(self, tmp_path):
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=32, directory=tmp_path / "db"
        )
        model = self._fill(engine, seed=1)
        engine._wal.close()  # simulated crash: no checkpoint, no flush

        recovered = ShardedEngine.open(tmp_path / "db")
        assert recovered.range_scan(0, UNIVERSE - 1) == sorted(model.items())
        assert len(recovered) == len(model)

    def test_kill_mid_batch_truncated_record(self, tmp_path):
        """The issue's scenario: die mid-write, tear the last WAL record."""
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=1024, directory=tmp_path / "db"
        )
        model = self._fill(engine, seed=2, ops=100)
        engine.put(123_456, "committed")
        model[123_456] = "committed"
        engine.put(654_321, "torn-away")  # this record will be torn
        wal_path = engine._wal.path
        engine._wal.close()
        with open(wal_path, "r+b") as fh:
            fh.seek(0, 2)
            fh.truncate(fh.tell() - 5)

        recovered = ShardedEngine.open(tmp_path / "db")
        assert recovered.get(123_456) == "committed"
        assert recovered.get(654_321) is None
        assert recovered.range_scan(0, UNIVERSE - 1) == sorted(model.items())

    def test_crash_after_checkpoint_replays_only_tail(self, tmp_path):
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=16,
            filter_factory=grafite_factory, directory=tmp_path / "db",
        )
        model = self._fill(engine, seed=3, ops=200)
        engine.checkpoint()
        # Post-checkpoint tail, lost memtable, then crash.
        for key in (11, 22, 33):
            engine.put(key, f"tail{key}")
            model[key] = f"tail{key}"
        engine._wal.close()

        recovered = ShardedEngine.open(tmp_path / "db", filter_factory=grafite_factory)
        assert recovered.range_scan(0, UNIVERSE - 1) == sorted(model.items())

    def test_open_refuses_missing_and_init_refuses_existing(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ShardedEngine.open(tmp_path / "nothing-here")
        engine = ShardedEngine(1000, num_shards=2, directory=tmp_path / "db")
        engine.close()
        with pytest.raises(InvalidParameterError):
            ShardedEngine(1000, num_shards=2, directory=tmp_path / "db")

    def test_checkpoint_is_crash_atomic(self, tmp_path):
        """A crash at any point inside save_snapshot must leave the
        previous checkpoint recoverable: new run files are written under
        fresh generation-stamped names and the manifest rename is the
        only commit point."""
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=8, directory=tmp_path / "db"
        )
        model = self._fill(engine, seed=4, ops=60)
        engine.checkpoint()
        import repro.engine.persist as persist_mod

        manifest_before = (tmp_path / "db" / "MANIFEST.json").read_bytes()
        # Simulate dying mid-checkpoint: run files written, no manifest
        # rename, no garbage collection.
        real_replace = persist_mod.Path.replace
        try:
            def crash(self, target):
                raise OSError("simulated crash before manifest commit")
            persist_mod.Path.replace = crash
            engine.put(777, "lost-with-the-wal?")
            with pytest.raises(OSError):
                engine.checkpoint()
        finally:
            persist_mod.Path.replace = real_replace
        assert (tmp_path / "db" / "MANIFEST.json").read_bytes() == manifest_before
        engine._wal.close()
        recovered = ShardedEngine.open(tmp_path / "db")
        # Old snapshot intact, post-checkpoint write replayed from the WAL.
        assert recovered.range_scan(0, UNIVERSE - 1) == sorted(
            {**model, 777: "lost-with-the-wal?"}.items()
        )

    def test_checkpoint_garbage_collects_old_generations(self, tmp_path):
        from repro.engine import persist

        engine = ShardedEngine(
            UNIVERSE, num_shards=1, memtable_limit=4, directory=tmp_path / "db"
        )
        for seed in (5, 6, 7):
            self._fill(engine, seed=seed, ops=40)
            engine.checkpoint()
        names = {p.name for p in (tmp_path / "db" / "shard-0000").glob("*.sst")}
        reopened = ShardedEngine.open(tmp_path / "db")  # must still load
        assert reopened.run_count >= 1
        # The current epoch and the retained previous one (rollback
        # fodder) survive on disk; every older generation is collected.
        current = persist.load_manifest(tmp_path / "db")
        previous = persist.load_manifest(
            tmp_path / "db", name=persist.PREV_MANIFEST_NAME
        )
        kept = {f"{current['generation']:06d}", f"{previous['generation']:06d}"}
        generations = {n.split("-")[1] for n in names}
        assert generations <= kept
        assert f"{current['generation']:06d}" in generations

    def test_reopened_shards_rejoin_compaction_scheduler(self, tmp_path):
        engine = ShardedEngine(
            UNIVERSE, num_shards=2, memtable_limit=2, compaction_fanout=3,
            directory=tmp_path / "db", defer_compaction=True,
        )
        for k in range(24):
            engine.put(k, "v")  # plenty of level-0 runs, never drained
        engine.flush_all()
        assert any(s.needs_compaction for s in engine.shards)
        persist_stats = engine.stats.compactions
        engine.checkpoint()  # snapshots the un-compacted level 0
        engine._wal.close()

        recovered = ShardedEngine.open(tmp_path / "db", defer_compaction=True)
        assert any(s.needs_compaction for s in recovered.shards)
        # Read-only workload: the batch entry point must still drain.
        recovered.batch_range_empty([500], [600])
        assert not any(s.needs_compaction for s in recovered.shards)
        assert recovered.stats.compactions > persist_stats

    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path):
        with ShardedEngine(1000, num_shards=2, directory=tmp_path / "db") as engine:
            engine.put(7, "seven")
        reopened = ShardedEngine.open(tmp_path / "db")
        assert reopened.get(7) == "seven"
        # Clean shutdown checkpointed: the data lives in runs, not the WAL.
        assert reopened.run_count >= 1


# ----------------------------------------------------------------------
# Model-based: the sharded engine behaves like a dict
# ----------------------------------------------------------------------
class TestModelBased:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_dict_reference(self, data):
        engine = ShardedEngine(
            10_000,
            num_shards=data.draw(st.integers(min_value=1, max_value=5)),
            memtable_limit=data.draw(st.integers(min_value=1, max_value=8)),
            compaction_fanout=2,
            filter_factory=grafite_factory if data.draw(st.booleans()) else None,
            defer_compaction=data.draw(st.booleans()),
        )
        model: dict[int, str] = {}
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["put", "delete", "get", "scan", "empty", "drain"]),
                    st.integers(min_value=0, max_value=9_999),
                    st.integers(min_value=0, max_value=400),
                ),
                max_size=50,
            )
        )
        for op, key, extra in ops:
            if op == "put":
                engine.put(key, f"v{extra}")
                model[key] = f"v{extra}"
            elif op == "delete":
                engine.delete(key)
                model.pop(key, None)
            elif op == "get":
                assert engine.get(key) == model.get(key)
            elif op == "drain":
                engine.drain_compactions()
            elif op == "scan":
                hi = min(9_999, key + extra)
                expected = sorted((k, v) for k, v in model.items() if key <= k <= hi)
                assert engine.range_scan(key, hi) == expected
            else:  # empty
                hi = min(9_999, key + extra)
                expected_empty = not any(key <= k <= hi for k in model)
                assert engine.range_empty(key, hi) == expected_empty
                assert bool(engine.batch_range_empty([key], [hi])[0]) == expected_empty
        assert engine.range_scan(0, 9_999) == sorted(model.items())


# ----------------------------------------------------------------------
# Batch filter API parity (the layer the engine builds on)
# ----------------------------------------------------------------------
class TestBatchFilterApi:
    @pytest.mark.parametrize("build", [
        lambda keys: Grafite(keys, UNIVERSE, bits_per_key=12, max_range_size=64, seed=5),
        lambda keys: Grafite(keys, UNIVERSE, eps=0.4, max_range_size=4, seed=5),
        lambda keys: Bucketing(keys, UNIVERSE, bits_per_key=10),
    ])
    def test_batch_equals_scalar(self, build):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.integers(0, UNIVERSE, 5000, dtype=np.uint64))
        filt = build(keys)
        los = rng.integers(0, UNIVERSE - 5000, 3000, dtype=np.uint64)
        his = los + rng.integers(0, 4000, 3000, dtype=np.uint64)
        batch = filt.may_contain_range_batch(los, his)
        scalar = np.asarray(
            [filt.may_contain_range(int(lo), int(hi)) for lo, hi in zip(los, his)]
        )
        assert bool((batch == scalar).all())

    def test_exact_mode_batch(self):
        filt = Grafite(list(range(0, 1000, 13)), 1000, bits_per_key=30,
                       max_range_size=64, seed=5)
        assert filt.is_exact
        los = np.arange(0, 990, dtype=np.uint64)
        his = los + 5
        batch = filt.may_contain_range_batch(los, his)
        scalar = np.asarray(
            [filt.may_contain_range(int(lo), int(hi)) for lo, hi in zip(los, his)]
        )
        assert bool((batch == scalar).all())

    def test_empty_filter_and_empty_batch(self):
        filt = Grafite([], UNIVERSE, eps=0.1)
        assert list(filt.may_contain_range_batch([1, 2], [5, 6])) == [False, False]
        assert filt.may_contain_range_batch([], []).size == 0

    def test_batch_validation(self):
        filt = Grafite([5], UNIVERSE, eps=0.1)
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range_batch([10], [5])
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range_batch([0], [UNIVERSE])
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range_batch([0, 1], [2])

    def test_generic_fallback_used_by_other_filters(self):
        from repro.filters.surf import SuRF

        filt = SuRF([10, 20, 30], UNIVERSE, seed=2)
        assert "may_contain_range_batch" not in type(filt).__dict__  # inherits loop
        out = filt.may_contain_range_batch([10, 500_000], [10, 500_031])
        scalar = [filt.may_contain_range(10, 10),
                  filt.may_contain_range(500_000, 500_031)]
        assert list(out) == scalar
        assert bool(out[0])  # no false negatives

    def test_big_integer_universe_falls_back_to_scalar(self):
        keys = [2**70, 2**80, 2**100]
        filt = Grafite(keys, 2**128, eps=0.01, max_range_size=16, seed=3)
        los = [2**70, 2**90]
        his = [2**70 + 3, 2**90 + 3]
        batch = filt.may_contain_range_batch(los, his)
        scalar = [filt.may_contain_range(lo, hi) for lo, hi in zip(los, his)]
        assert list(batch) == scalar
        assert bool(batch[0])  # the stored key must be found

    def test_empty_bucketing_batch_still_validates(self):
        filt = Bucketing([], UNIVERSE, bucket_size=16)
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range_batch([10], [5])
        with pytest.raises(InvalidQueryError):
            filt.may_contain_range_batch([0], [UNIVERSE])
        assert list(filt.may_contain_range_batch([1], [2])) == [False]

    def test_no_false_negatives_in_batch(self):
        rng = np.random.default_rng(9)
        keys = np.unique(rng.integers(0, UNIVERSE, 2000, dtype=np.uint64))
        filt = Grafite(keys, UNIVERSE, bits_per_key=10, max_range_size=32, seed=1)
        los = keys[:500]
        his = np.minimum(los + 10, UNIVERSE - 1)
        assert bool(filt.may_contain_range_batch(los, his).all())
