"""Tests for the shared-memory block cache slab.

What matters about :class:`~repro.lsm.cache.SharedBlockCache` and is
pinned here:

* **cross-process sharing** — blocks admitted by one process are hits
  for every other attached process, because persisted runs carry a
  stable ``shared_id`` that keys the slab identically everywhere;
* **bounded residency + LRU** — the slab never holds more blocks than
  its capacity, and with a single set the eviction order is exact LRU
  (verified against a hand-run model);
* **no leaked segments** — closing the owner unlinks the shared-memory
  segment; closing a mere attachment does not destroy the slab the
  other processes are still using.
"""

import multiprocessing

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.engine import RangeQueryService, ShardedEngine, persist
from repro.errors import InvalidParameterError
from repro.lsm.cache import SharedBlockCache
from repro.lsm.sstable import BLOCK_ENTRIES, SSTable

UNIVERSE = 2**32


def make_run(n_blocks: int) -> SSTable:
    n = n_blocks * BLOCK_ENTRIES
    keys = np.arange(1, n + 1, dtype=np.uint64) * np.uint64(17)
    return SSTable([(int(k), b"v") for k in keys], UNIVERSE, None)


def persisted_run(tmp_path, n_blocks: int) -> SSTable:
    """A run with a cross-process identity, round-tripped through disk
    exactly the way a checkpointed run would be."""
    run = make_run(n_blocks)
    path = tmp_path / "run-shared.sst"
    path.write_bytes(persist.run_to_bytes(run))
    loaded = persist.run_from_bytes(path.read_bytes())
    loaded.shared_id = persist.stable_run_id(0, path.name)
    return loaded


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _warm_slab_from_child(slab_name, locks, run_path, run_name, done):
    """Child-process body: attach to the slab, admit every block of the
    run, report this attachment's counters."""
    run = persist.run_from_bytes(run_path.read_bytes())
    run.shared_id = persist.stable_run_id(0, run_name)
    cache = SharedBlockCache.attach(slab_name, locks, unregister=True)
    try:
        for index in range(run.block_count):
            cache.get_block(run, index)
        done.put((cache.hits, cache.misses))
    finally:
        cache.close()


def test_child_process_warms_slab_for_parent(tmp_path):
    run = persisted_run(tmp_path, 4)
    cache = SharedBlockCache(capacity_blocks=32)
    try:
        ctx = _mp_context()
        done = ctx.Queue()
        child = ctx.Process(
            target=_warm_slab_from_child,
            args=(
                cache.name, cache.locks,
                tmp_path / "run-shared.sst", "run-shared.sst", done,
            ),
        )
        child.start()
        child_hits, child_misses = done.get(timeout=30)
        child.join(timeout=30)
        assert child.exitcode == 0
        # The child took every cold miss; its admissions are resident.
        assert child_misses == run.block_count
        assert child_hits == 0
        assert len(cache) == run.block_count
        # The parent never touched the slab, yet every block is a hit —
        # stable_run_id keys the same file identically across processes.
        for index in range(run.block_count):
            _, hit = cache.get_block(run, index)
            assert hit
        assert cache.hits == run.block_count
        assert cache.misses == 0
    finally:
        cache.close()


def test_unpersisted_runs_never_collide_across_attachments(tmp_path):
    """Runs without a ``shared_id`` are salted per attachment: another
    attachment's admissions for the same uid must not be served."""
    run = make_run(2)
    assert run.shared_id is None
    owner = SharedBlockCache(capacity_blocks=32)
    try:
        other = SharedBlockCache.attach(owner.name, owner.locks)
        try:
            for index in range(run.block_count):
                owner.get_block(run, index)
            for index in range(run.block_count):
                _, hit = other.get_block(run, index)
                assert not hit
        finally:
            other.close()
    finally:
        owner.close()


def test_single_set_eviction_is_exact_lru(tmp_path):
    """capacity=4 collapses the slab to one 4-way set, making eviction
    pure LRU by tick — run the reference model by hand."""
    run = persisted_run(tmp_path, 6)
    cache = SharedBlockCache(capacity_blocks=4)
    try:
        def touch(index):
            _, hit = cache.get_block(run, index)
            return hit

        assert [touch(i) for i in (0, 1, 2, 3)] == [False] * 4
        assert len(cache) == 4
        assert touch(0)          # refresh 0; LRU is now 1
        assert not touch(4)      # admit 4 -> evicts 1
        assert len(cache) == 4   # residency never exceeds capacity
        assert [touch(i) for i in (0, 2, 3, 4)] == [True] * 4
        assert not touch(1)      # 1 was evicted; readmission evicts 0
        assert not touch(0)
        assert cache.hits == 5
        assert cache.misses == 7
    finally:
        cache.close()


def test_slab_residency_stays_bounded_under_cycling(tmp_path):
    run = persisted_run(tmp_path, 12)
    cache = SharedBlockCache(capacity_blocks=8)
    try:
        for _ in range(3):
            for index in range(run.block_count):
                cache.get_block(run, index)
                assert len(cache) <= cache.capacity_blocks
        assert cache.misses > cache.capacity_blocks  # cycling churns
    finally:
        cache.close()


def test_oversized_blocks_bypass_the_slab(tmp_path):
    run = persisted_run(tmp_path, 2)
    cache = SharedBlockCache(capacity_blocks=8, slot_bytes=1024)
    try:
        for _ in range(2):
            block, hit = cache.get_block(run, 0)
            assert not hit  # too big for a slot: served from the run
        assert len(cache) == 0
        assert cache.misses == 2
    finally:
        cache.close()


def test_owner_close_unlinks_segment(tmp_path):
    cache = SharedBlockCache(capacity_blocks=8)
    name = cache.name
    cache.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    cache.close()  # idempotent


def test_attachment_close_leaves_slab_alive(tmp_path):
    run = persisted_run(tmp_path, 2)
    owner = SharedBlockCache(capacity_blocks=8)
    name = owner.name
    try:
        attachment = SharedBlockCache.attach(name, owner.locks)
        attachment.get_block(run, 0)
        attachment.close()
        # The owner keeps working — and sees the attachment's admission.
        _, hit = owner.get_block(run, 0)
        assert hit
    finally:
        owner.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_attach_rejects_foreign_segment():
    shm = shared_memory.SharedMemory(create=True, size=4096)
    try:
        with pytest.raises(InvalidParameterError):
            SharedBlockCache.attach(shm.name, [])
    finally:
        shm.close()
        shm.unlink()


def test_constructor_validation():
    with pytest.raises(InvalidParameterError):
        SharedBlockCache(capacity_blocks=0)
    with pytest.raises(InvalidParameterError):
        SharedBlockCache(capacity_blocks=8, num_stripes=0)
    with pytest.raises(InvalidParameterError):
        SharedBlockCache(capacity_blocks=8, miss_latency=-1.0)
    with pytest.raises(InvalidParameterError):
        SharedBlockCache(capacity_blocks=8, slot_bytes=16)
    cache = SharedBlockCache(capacity_blocks=8)
    cache.close()
    with pytest.raises(InvalidParameterError):
        cache.get_block(make_run(1), 0)


def test_rejected_process_service_releases_its_slab():
    """A constructor that fails validation must not leak the slab it
    already built, nor leave it attached to the engine."""
    engine = ShardedEngine(
        UNIVERSE, num_shards=2, memtable_limit=256,
        compaction_fanout=4, filter_factory=None,
    )  # in-memory: process mode is invalid
    with pytest.raises(InvalidParameterError):
        RangeQueryService(engine, mode="process", cache_blocks=64)
    assert engine.block_cache is None


def build_service_engine(path):
    rng = np.random.default_rng(21)
    keys = np.unique(rng.integers(0, UNIVERSE, 3_000, dtype=np.uint64))
    engine = ShardedEngine(
        UNIVERSE,
        num_shards=2,
        memtable_limit=256,
        compaction_fanout=4,
        filter_factory=None,
        directory=path,
    )
    for key in keys:
        engine.put(int(key), b"v")
    engine.flush_all()
    engine.drain_compactions()
    engine.checkpoint()
    return engine


def test_process_service_shares_one_slab_end_to_end(tmp_path):
    engine = build_service_engine(tmp_path / "db")
    rng = np.random.default_rng(22)
    los = rng.integers(0, UNIVERSE - 64, 400, dtype=np.uint64)
    his = los + np.uint64(63)
    reference = engine.batch_range_empty(los, his)
    with RangeQueryService(
        engine,
        num_threads=2,
        cache_blocks=256,
        miss_latency=0.0,
        mode="process",
        num_workers=2,
        shared_cache=True,
    ) as service:
        slab = service.cache
        assert isinstance(slab, SharedBlockCache)
        slab_name = slab.name
        assert bool((service.batch_range_empty(los, his) == reference).all())
        warm = engine.stats
        assert bool((service.batch_range_empty(los, his) == reference).all())
        after = engine.stats
        # The warm pass populated the shared slab; the second pass hits
        # it from the workers, and those hits flow into the engine's
        # I/O ledger like any other cache traffic.
        assert after.cache_hits > warm.cache_hits
        snapshot = service.stats_snapshot()
        assert snapshot["cache"]["capacity_blocks"] == 256
    engine.attach_block_cache(None)
    # Service close unlinked the slab: nothing leaked past the owner.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=slab_name)
