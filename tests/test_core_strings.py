"""Tests for the string-key extension of Grafite (paper §7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strings import StringGrafite, encode_string
from repro.errors import InvalidKeyError, InvalidQueryError


class TestEncoding:
    def test_lexicographic_order_preserved(self):
        words = ["", "a", "ab", "abc", "abd", "b", "zz"]
        encoded = [encode_string(w, 4) for w in words]
        assert encoded == sorted(encoded)

    def test_too_long_rejected(self):
        with pytest.raises(InvalidKeyError):
            encode_string("abcde", 4)

    def test_bytes_accepted(self):
        assert encode_string(b"ab", 2) == encode_string("ab", 2)


class TestStringGrafite:
    def test_point_queries_on_keys(self):
        keys = ["apple", "banana", "cherry"]
        f = StringGrafite(keys, eps=0.01, seed=0)
        for k in keys:
            assert f.may_contain(k)

    def test_range_hits_key_between_endpoints(self):
        f = StringGrafite(["melon"], eps=0.01, seed=1)
        assert f.may_contain_range("mel", "melz")
        assert f.may_contain_range("a", "z")

    def test_prefix_queries(self):
        f = StringGrafite(["prefix/alpha", "prefix/beta"], eps=0.001, seed=2)
        assert f.may_contain_prefix("prefix/")
        assert f.may_contain_prefix("prefix/al")

    def test_inverted_range_rejected(self):
        f = StringGrafite(["m"], eps=0.1, seed=0)
        with pytest.raises(InvalidQueryError):
            f.may_contain_range("z", "a")

    def test_width_defaults_to_longest_key(self):
        f = StringGrafite(["abc", "a"], eps=0.1, seed=0)
        assert f.key_width_bytes == 3

    def test_uses_power_of_two_universe(self):
        f = StringGrafite(["aa", "bb", "cc"], eps=0.05, seed=0)
        r = f.inner.reduced_universe
        if not f.inner.is_exact:
            assert r & (r - 1) == 0

    def test_overlong_query_endpoints_truncate_conservatively(self):
        f = StringGrafite(["apple"], max_key_bytes=5, eps=0.01, seed=3)
        # Querying with longer endpoints must still cover the stored key.
        assert f.may_contain_range("apple-pie-long", "apple-pie-longer")
        assert f.may_contain_range("appl", "apple-extended")

    @given(
        st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            min_size=1,
            max_size=30,
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_property(self, keys, data):
        f = StringGrafite(keys, eps=0.2, seed=data.draw(st.integers(0, 100)))
        for key in keys[:8]:
            assert f.may_contain(key)
            # a range [key, key + "zz"] always contains key
            assert f.may_contain_range(key, key + "zz" if len(key) < 5 else key)

    def test_bits_per_key_reported(self):
        f = StringGrafite(["k%d" % i for i in range(100)], eps=0.01, seed=0)
        assert f.bits_per_key > 0
        assert f.key_count == 100
